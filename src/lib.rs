//! # hydro
//!
//! Facade crate for the reproduction of *"New Directions in Cloud
//! Programming"* (CIDR 2021) — the Hydro/PACT stack.
//!
//! The stack decomposes cloud programs into four facets (**P**rogram
//! semantics, **A**vailability, **C**onsistency, **T**argets of
//! optimization) expressed over a declarative IR (HydroLogic), compiled by
//! Hydrolysis onto the Hydroflow single-node dataflow runtime, and deployed
//! over a simulated cluster. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduced experiment suite.
//!
//! ## Layer map
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`lattice`] | `hydro-lattice` | §1.2, §2.3, §8 |
//! | [`flow`] | `hydro-flow` | §2.3, §8 |
//! | [`logic`] | `hydro-core` | §3, §5–§7, §9 |
//! | [`lang`] | `hydro-lang` | §3 (the Fig. 3 textual syntax) |
//! | [`analysis`] | `hydro-analysis` | §7, §8.2 |
//! | [`compiler`] | `hydrolysis` | §2.2, §5.1, §9.1 |
//! | [`net`] | `hydro-net` | §6 substrate |
//! | [`deploy`] | `hydro-deploy` | §6, §7 |
//! | [`lift`] | `hydro-lift` | §4, Appendix A |
//! | [`kvs`] | `hydro-kvs` | §1.2 (Anna) |
//! | [`collab`] | `hydro-collab` | §1.2, §7.1 (collaborative editing) |
//!
//! ## Quickstart
//!
//! ```
//! use hydro::logic::examples::covid_program;
//! use hydro::logic::interp::Transducer;
//! use hydro::logic::value::Value;
//!
//! let mut app = Transducer::new(covid_program()).unwrap();
//! app.enqueue("add_person", vec![Value::from(1i64)]);
//! app.enqueue("add_person", vec![Value::from(2i64)]);
//! app.tick().unwrap();
//! app.enqueue("add_contact", vec![Value::from(1i64), Value::from(2i64)]);
//! app.tick().unwrap();
//! app.enqueue("diagnosed", vec![Value::from(1i64)]);
//! let out = app.tick().unwrap();
//! // Person 2 is transitively in contact with person 1, so an alert is sent.
//! assert!(out.sends.iter().any(|s| s.mailbox == "alert"));
//! ```

pub use hydro_analysis as analysis;
pub use hydro_core as logic;
pub use hydro_deploy as deploy;
pub use hydro_lang as lang;
pub use hydro_flow as flow;
pub use hydro_collab as collab;
pub use hydro_kvs as kvs;
pub use hydro_lattice as lattice;
pub use hydro_net as net;
pub use hydrolysis as compiler;

pub use hydro_lift as lift;
