#!/usr/bin/env bash
# One-command tier-1 verification: release build, full workspace test
# suite, lint wall, and the perf smoke with its regression diff against
# the committed BENCH_interp.json.
#
# Usage: scripts/ci.sh [--no-bench]
#   --no-bench   skip the perf smoke (e.g. on noisy shared machines)

set -euo pipefail

cd "$(dirname "$0")/.."

run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) run_bench=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release =="
cargo build --release --workspace

echo
echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo
echo "== seeded fault-injection campaigns =="
# The randomized failover campaigns are part of the workspace suite
# above; run them by name too so a campaign failure is unmissable in CI
# output rather than buried in the workspace wall.
cargo test -q -p hydro-deploy --test fault_campaigns
cargo test -q -p hydro-deploy campaign

echo
echo "== deletion-maintenance differential suites =="
# The counting/DRed engine's pinning tests, by name, so a maintenance
# divergence is unmissable in CI output: three-way (counting vs
# unit-recompute vs fresh) proptests over graph churn, aggregate-group
# churn, and rollback interleavings; the DRed alternative-derivation
# scenario; SIP gating on the static reorder proof; and the N∈{1,2,4}
# sharded churn runs.
cargo test -q -p hydro-core --test seminaive_differential -- \
  counting_dred_agree_with_recompute_and_fresh \
  counting_agg_groups_agree_with_recompute_and_fresh \
  bank_counting_agrees_with_recompute_and_fresh \
  dred_keeps_rows_with_alternative_derivations
cargo test -q -p hydro-core --lib sip_and_check_queries_are_gated_on_reorder_safety
cargo test -q -p hydro-analysis --test sharded_differential sharded_churn_matches_single

echo
echo "== serving-layer differential suites =="
# The open-loop serving loop's pinning tests, by name, so a batching
# divergence is unmissable in CI output: the loop-vs-replay differential
# over the serial and parallel drivers at N∈{1,2,4}, the batch-split
# invariance proptest for the serialized single-entry shape, and the
# router-side bounded-ingress backpressure contract.
cargo test -q -p hydro-analysis --test serve_batching -- \
  serving_loop_matches_batch_replay \
  batch_splits_invisible_to_serialized_program \
  backpressure_rejects_at_queue_cap_with_distinct_counter
cargo test -q -p hydro-deploy --test ingress_backpressure

echo
echo "== parallel-driver determinism tripwire =="
# Run the sharded differential suite (single vs serial vs worker-thread
# driver) and the serving-layer suite (whose runs are fully determined
# by ServiceModel::Fixed) twice each, and diff the normalized outputs.
# The vendored proptest harness seeds each test's RNG from its name, so
# both runs generate IDENTICAL op sequences: any divergence between the
# two runs — one failing, or failing differently — is a
# thread-scheduling leak in the parallel driver (a race reaching an
# observable output), not a test-input difference. Wall-clock lines are
# stripped before the diff.
det_a="$(mktemp)"
det_b="$(mktemp)"
trap 'rm -f "$det_a" "$det_b"' EXIT
det_failed=0
for out in "$det_a" "$det_b"; do
  {
    cargo test -q -p hydro-analysis --test sharded_differential 2>&1 || det_failed=1
    cargo test -q -p hydro-analysis --test serve_batching 2>&1 || det_failed=1
  } | sed -E 's/finished in [0-9.]+s//; /^\s*(Compiling|Finished|Running)/d' \
    >"$out"
done
if ! diff -u "$det_a" "$det_b"; then
  echo "identically-seeded parallel differential runs diverged:" >&2
  echo "the worker-thread driver leaked scheduling nondeterminism" >&2
  exit 1
fi
if [[ "$det_failed" == 1 ]]; then
  cat "$det_a"
  echo "sharded differential suite failed under the determinism tripwire" >&2
  exit 1
fi
rm -f "$det_a" "$det_b"

echo
echo "== examples (catch example rot) =="
# Run the examples that exercise the public API end-to-end; each must
# exit 0. Output is captured and only shown on failure.
for ex in quickstart kvs_demo deployment_planner; do
  echo "-- example: $ex"
  if ! out="$(cargo run --release -p hydro --example "$ex" 2>&1)"; then
    echo "$out"
    echo "example $ex failed" >&2
    exit 1
  fi
done

echo
echo "== preflight lint over examples/*.hydro =="
# Lint every textual HydroLogic program; any error-severity diagnostic
# fails CI (warnings/infos are allowed). Run TWICE and diff the reports:
# analysis output is sorted canonically (diag::sort_diagnostics), so any
# divergence is nondeterminism in an analysis pass. Capture stdout only —
# cargo's stderr compile-progress lines differ between runs.
pre_a="$(mktemp)"
pre_b="$(mktemp)"
trap 'rm -f "$pre_a" "$pre_b"' EXIT
for out in "$pre_a" "$pre_b"; do
  if ! cargo run --release -p hydro --example preflight -- examples/*.hydro >"$out"; then
    cat "$out"
    echo "preflight found error-severity diagnostics (or failed to parse an example)" >&2
    exit 1
  fi
done
if ! diff -u "$pre_a" "$pre_b"; then
  echo "preflight reports diverged between identical runs:" >&2
  echo "an analysis pass leaked nondeterministic ordering" >&2
  exit 1
fi
rm -f "$pre_a" "$pre_b"
# JSON mode must stay parseable for machine consumers (spot-check shape).
if ! cargo run --release -p hydro --example preflight -- --json examples/*.hydro \
    | grep -q '^\[{"file":'; then
  echo "preflight --json did not produce the expected JSON array" >&2
  exit 1
fi

echo
echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$run_bench" == 1 ]]; then
  echo
  echo "== perf smoke (diff vs committed BENCH_interp.json) =="
  # Bench into a scratch file so CI never dirties the committed baseline;
  # the smoke script prints per-workload speedup/REGRESSION lines.
  tmp="$(mktemp)"
  trap 'rm -f "$tmp"' EXIT
  cp BENCH_interp.json "$tmp"
  scripts/bench_smoke.sh "$tmp" | tee /tmp/bench_smoke_ci.txt
  if grep -q "REGRESSION" /tmp/bench_smoke_ci.txt; then
    echo
    echo "perf smoke found REGRESSION lines (see above)" >&2
    exit 1
  fi
fi

echo
echo "ci.sh: all green"
