#!/usr/bin/env bash
# Perf smoke: run the E1/E8 interpreter sweeps and record the trajectory.
#
# Builds the release report binary, prints the E1 (COVID tracker) and E8
# (transitive closure) tables, and writes BENCH_interp.json at the repo
# root: [{workload, n, wall_ms, items_processed}, ...] covering the
# semi-naive interpreter, the retained naive reference, and the compiled
# Hydroflow path. Future PRs compare against the committed numbers to
# catch perf regressions in the interpreter hot path.
#
# Usage: scripts/bench_smoke.sh [output-path]   (default: BENCH_interp.json)

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_interp.json}"

cargo build --release -p hydro-bench --bin report
./target/release/report e01 e08 --bench-json="$out"

echo
echo "== $out =="
cat "$out"
