#!/usr/bin/env bash
# Perf smoke: run the E1/E8/E15/E16/E17/E18/E19/E20 interpreter sweeps,
# record trajectory.
#
# Builds the release report binary, prints the E1 (COVID tracker), E8
# (transitive closure), E15 (cross-tick steady state), E16 (sharded
# scale-out), E17 (failover campaign), E18 (parallel worker-thread
# scale-up + delta exchange), E19 (insert/delete churn) and E20
# (open-loop serving with adaptive micro-batching) tables, and
# writes BENCH_interp.json at the repo root:
# [{workload, n, wall_ms, items_processed}, ...] covering the incremental
# interpreter, the fresh-per-tick semi-naive path, the retained naive
# reference, the compiled Hydroflow path, and per-tick steady-state wall
# times. The fresh run is then diffed against the committed numbers and a
# per-workload speedup/regression line is printed for each record, so a
# perf regression in the interpreter hot path is visible directly in CI
# output.
#
# Usage: scripts/bench_smoke.sh [output-path]   (default: BENCH_interp.json)

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_interp.json}"

# Keep the committed numbers around for the regression diff below.
prev=""
if [[ -f "$out" ]]; then
  prev="$(mktemp)"
  cp "$out" "$prev"
  trap 'rm -f "$prev"' EXIT
fi

cargo build --release -p hydro-bench --bin report
./target/release/report e01 e08 e15 e16 e17 e18 e19 e20 --bench-json="$out"

echo
echo "== $out =="
cat "$out"

# E19 acceptance ratios (churn maintenance, per resident size n): the
# counting/DRed deletion tick must be >= 5x faster than the
# unit-recompute fallback on the same workload at every n, and within
# ~2x of the matching insert-only tick at the LARGEST n (measured
# medians run 2.3-2.6x; the gate is 3.5x because the two variants are
# timed at different moments and a load burst on this shared host can
# inflate the cross-run ratio by ~30% even with best-of-three runs).
# The insert-ratio is a steady-state claim — deletion cost must not
# grow with resident size — so it is
# gated where resident state dominates; at small n the tick is mostly
# fixed DRed overhead plus the tiny relation's frequent compaction
# cycles, and the ratio is reported but not gated. Computed from the
# freshly written records, not the baseline.
awk '
  /"workload":/ { gsub(/[",]/, ""); w = $2 }
  /"n":/        { gsub(/[",]/, ""); n = $2 }
  /"wall_ms":/  { gsub(/[",]/, ""); ms[w ":" n] = $2; if (w ~ /^e19_/) sizes[n] = 1 }
  END {
    bad = 0
    maxn = 0
    for (n in sizes) if (n + 0 > maxn) maxn = n + 0
    for (n in sizes) {
      c = ms["e19_churn_counting:" n]
      r = ms["e19_churn_recompute:" n]
      i = ms["e19_churn_insert_only:" n]
      if (c <= 0 || r <= 0 || i <= 0) { print "E19 FAIL: missing records for n=" n; bad = 1; continue }
      gated = (n + 0 == maxn) ? "" : "  (not gated at small n)"
      printf "e19 n=%-6s counting %.3f ms  recompute/counting %.1fx  counting/insert-only %.2fx%s\n", n, c, r / c, c / i, gated
      if (r / c < 5.0) { print "E19 FAIL: counting tick not >=5x faster than recompute at n=" n; bad = 1 }
      if (n + 0 == maxn && c / i > 3.5) { print "E19 FAIL: deletion tick more than 3.5x the insert-only tick at n=" n; bad = 1 }
    }
    if (bad) exit 1
  }
' "$out"

# E20 acceptance gates (open-loop serving, per worker count n):
#
# (a) saturation: adaptive micro-batching must sustain >= 2x the
#     msgs/sec of batch=1 on the identical burst at SOME worker count
#     (the headline amortization claim; measured ratios run 2-5x), and
#     >= 1.3x at EVERY worker count (the two arms are timed minutes
#     apart on a shared 1-core host, so per-count ratios can compress
#     by ~30% under a load burst — the per-count gate is a sanity
#     floor, the >=2x gate carries the claim). Both arms serve the same
#     message count, so the rate ratio is the wall ratio.
# (b) tail latency: the open-loop arm (Poisson arrivals at half the
#     measured saturation rate) must keep p999 <= 50 ms — the
#     controller steers at a 10 ms target; the 5x headroom absorbs
#     shared-host scheduling noise (measured p999 runs 1-4 ms).
# (c) scale: the serving arms must run against >= 1M resident keys.
awk '
  /"workload":/        { gsub(/[",]/, ""); w = $2 }
  /"n":/               { gsub(/[",]/, ""); n = $2 }
  /"wall_ms":/         { gsub(/[",]/, ""); ms[w ":" n] = $2; if (w ~ /^e20_/) workers[n] = 1 }
  /"items_processed":/ { gsub(/[",]/, ""); items[w ":" n] = $2 }
  END {
    bad = 0
    best = 0
    for (n in workers) {
      b1 = ms["e20_sat_batch1:" n]
      ad = ms["e20_sat_adaptive:" n]
      p999 = ms["e20_open_p999:" n]
      keys = items["e20_resident_keys:" n]
      if (b1 <= 0 || ad <= 0 || p999 == "" || keys == "") { print "E20 FAIL: missing records for workers=" n; bad = 1; continue }
      ratio = b1 / ad
      if (ratio > best) best = ratio
      printf "e20 workers=%s adaptive/batch1 %.2fx  open-loop p999 %.3f ms  resident %d keys\n", n, ratio, p999, keys
      if (ratio < 1.3) { print "E20 FAIL: adaptive batching under 1.3x batch=1 at workers=" n; bad = 1 }
      if (p999 + 0 > 50.0) { print "E20 FAIL: open-loop p999 above 50 ms at workers=" n; bad = 1 }
      if (keys + 0 < 1000000) { print "E20 FAIL: fewer than 1M resident keys at workers=" n; bad = 1 }
    }
    if (length(workers) == 0) { print "E20 FAIL: no e20 records found"; bad = 1 }
    if (best < 2.0 && !bad) { print "E20 FAIL: adaptive batching never reached 2x batch=1 at saturation"; bad = 1 }
    if (bad) exit 1
  }
' "$out"

if [[ -n "$prev" ]]; then
  # Extract "workload:n wall_ms" lines from our own JSON writer's stable
  # layout (one key per line), join on workload:n, and classify.
  extract() {
    awk '
      /"workload":/ { gsub(/[",]/, ""); w = $2 }
      /"n":/        { gsub(/[",]/, ""); n = $2 }
      /"wall_ms":/  { gsub(/[",]/, ""); print w ":" n, $2 }
    ' "$1"
  }
  echo
  echo "== wall-time vs committed baseline (old -> new) =="
  join -a 1 -a 2 -e '-' -o '0,1.2,2.2' \
    <(extract "$prev" | sort) <(extract "$out" | sort) | awk '
    $2 == "-" { printf "%-38s %31s %10.3f ms\n", $1, "(new workload)", $3; next }
    $3 == "-" { printf "%-38s %10.3f ms %21s\n", $1, $2, "(removed workload)"; next }
    {
      ratio = ($3 > 0) ? $2 / $3 : 0
      delta = $3 - $2
      # Sub-50us records are timer noise; never cry REGRESSION on them.
      # Run-to-run wobble on this (shared, single-core) host reaches
      # ~0.8x on multi-ms workloads with identical code, so a slowdown
      # must trip BOTH a ratio gate and an absolute-delta gate:
      # halving with >= 4 ms lost, 0.75x with >= 5 ms lost, or 0.9x with
      # >= 20 ms lost. (The committed baseline is a max-envelope over
      # repeated runs for the same reason.)
      if ($2 < 0.05 && $3 < 0.05)
        verdict = "noise(<50us)"
      else if (ratio >= 1.1)
        verdict = "speedup"
      else if (ratio > 0 && ratio <= 0.5 && delta >= 4.0)
        verdict = "REGRESSION"
      else if (ratio > 0 && ratio <= 0.75 && delta >= 5.0)
        verdict = "REGRESSION"
      else if (ratio > 0 && ratio <= 0.9 && delta >= 20.0)
        verdict = "REGRESSION"
      else
        verdict = "flat"
      printf "%-38s %10.3f ms -> %10.3f ms  %8.2fx  %s\n", $1, $2, $3, ratio, verdict
    }
  '
fi
