//! Minimal stand-in for `rand_distr`: the `Distribution` trait and a
//! CDF-table `Zipf` sampler (the only distribution this workspace uses).

use rand::RngCore;

/// A distribution values of `T` can be sampled from.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Errors constructing a [`Zipf`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` must be ≥ 1.
    EmptyDomain,
    /// The exponent must be finite and positive.
    BadExponent,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::EmptyDomain => write!(f, "zipf domain must be non-empty"),
            ZipfError::BadExponent => write!(f, "zipf exponent must be finite and > 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `1..=n` with exponent `s`: `P(k) ∝ k^-s`.
///
/// Sampling is inverse-CDF over a precomputed table — exact, O(log n) per
/// draw, and plenty for the workload sizes in this repository (≤ ~1e6
/// distinct keys).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Distribution over `1..=n` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::EmptyDomain);
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ZipfError::BadExponent);
        }
        let n = usize::try_from(n).map_err(|_| ZipfError::EmptyDomain)?;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // First rank whose cumulative mass covers u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_skews_toward_small_ranks() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut top10 = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            let k = z.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&k));
            if k <= 10.0 {
                top10 += 1;
            }
        }
        // Under s=1, ranks 1..=10 carry ~39% of the mass over 1..=1000.
        assert!(top10 as f64 / draws as f64 > 0.3, "got {top10}/{draws}");
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::EmptyDomain);
        assert_eq!(Zipf::new(5, 0.0).unwrap_err(), ZipfError::BadExponent);
    }
}
