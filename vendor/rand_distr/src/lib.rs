//! Minimal stand-in for `rand_distr`: the `Distribution` trait, a
//! CDF-table `Zipf` sampler, and an inverse-CDF `Exp` sampler (the only
//! distributions this workspace uses).

use rand::RngCore;

/// A distribution values of `T` can be sampled from.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Errors constructing a [`Zipf`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` must be ≥ 1.
    EmptyDomain,
    /// The exponent must be finite and positive.
    BadExponent,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::EmptyDomain => write!(f, "zipf domain must be non-empty"),
            ZipfError::BadExponent => write!(f, "zipf exponent must be finite and > 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `1..=n` with exponent `s`: `P(k) ∝ k^-s`.
///
/// Sampling is inverse-CDF over a precomputed table — exact, O(log n) per
/// draw, and plenty for the workload sizes in this repository (≤ ~1e6
/// distinct keys).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Distribution over `1..=n` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::EmptyDomain);
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ZipfError::BadExponent);
        }
        let n = usize::try_from(n).map_err(|_| ZipfError::EmptyDomain)?;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // First rank whose cumulative mass covers u.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

/// Errors constructing an [`Exp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpError {
    /// The rate must be finite and positive.
    BadLambda,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpError::BadLambda => write!(f, "exponential rate must be finite and > 0"),
        }
    }
}

impl std::error::Error for ExpError {}

/// Exponential distribution with rate `λ`: `P(x > t) = e^(-λt)`, mean
/// `1/λ`. Inter-arrival gaps drawn from `Exp(λ)` yield a Poisson arrival
/// process of rate `λ` — the open-loop load model the serving benchmarks
/// use.
///
/// Sampling is inverse-CDF: `-ln(1 - U) / λ` with `U` uniform on
/// `[0, 1)`, so `1 - U ∈ (0, 1]` and the log is always finite.
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Distribution with rate `lambda` (mean `1 / lambda`).
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ExpError::BadLambda);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        -(1.0 - u).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_skews_toward_small_ranks() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut top10 = 0usize;
        let draws = 20_000;
        for _ in 0..draws {
            let k = z.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&k));
            if k <= 10.0 {
                top10 += 1;
            }
        }
        // Under s=1, ranks 1..=10 carry ~39% of the mass over 1..=1000.
        assert!(top10 as f64 / draws as f64 > 0.3, "got {top10}/{draws}");
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::EmptyDomain);
        assert_eq!(Zipf::new(5, 0.0).unwrap_err(), ZipfError::BadExponent);
        assert_eq!(Exp::new(0.0).unwrap_err(), ExpError::BadLambda);
        assert_eq!(Exp::new(f64::NAN).unwrap_err(), ExpError::BadLambda);
    }

    #[test]
    fn exp_mean_matches_rate() {
        let e = Exp::new(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let draws = 50_000;
        let mut total = 0.0f64;
        for _ in 0..draws {
            let x = e.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
            total += x;
        }
        let mean = total / draws as f64;
        // True mean is 1/4; the sample mean at 50k draws sits well inside
        // ±5%.
        assert!((mean - 0.25).abs() < 0.0125, "sample mean {mean}");
    }
}
