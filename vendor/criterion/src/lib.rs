//! Minimal stand-in for `criterion`: enough harness to compile and run the
//! workspace's `harness = false` bench targets. Each benchmark runs a
//! small fixed number of iterations and prints the mean wall-clock time —
//! no statistics, warm-up, or reports.

use std::time::{Duration, Instant};

/// Iterations per benchmark (override with `CRITERION_SHIM_ITERS`).
fn iters() -> u32 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// How per-iteration setup output is batched (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh state every iteration.
    PerIteration,
}

/// A parameterized benchmark id.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / n);
    }

    /// Time `routine` with a fresh `setup()` product per iteration;
    /// setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = iters();
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = Some(total / n);
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { last_mean: None };
    f(&mut b);
    match b.last_mean {
        Some(mean) => println!("bench {label:<48} {mean:>12.2?}/iter"),
        None => println!("bench {label:<48} (no iterations)"),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted, ignored (the shim uses a fixed iteration count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted, ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (no-op).
    pub fn finish(&mut self) {}
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
