//! Minimal stand-in for `proptest`: a deterministic property-testing
//! harness exposing the strategy combinators this workspace uses.
//!
//! Differences from upstream: cases are generated from a seed derived from
//! the test's module path + name (so runs are reproducible without a
//! persistence file), failing inputs are printed but **not shrunk**, and
//! the case count honors the `PROPTEST_CASES` environment variable over
//! the per-block `ProptestConfig`.

/// Runner configuration and RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The deterministic case RNG.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeded from a stable hash of `name` (module path + test name).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Strategies: value generators with combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Build recursive structures: `self` is the leaf strategy; `f`
        /// lifts a strategy for depth `d` into one for depth `d + 1`.
        /// `depth` bounds recursion; the size hints are accepted and
        /// ignored (this shim mixes leaves in at every level instead).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth.max(1) {
                let deeper = f(cur).boxed();
                cur = OneOf {
                    arms: vec![(1, base.clone()), (2, deeper)],
                }
                .boxed();
            }
            cur
        }

        /// Type-erase (cloneable; this shim uses `Rc` internally).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted union of strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        /// `(weight, strategy)` arms.
        pub arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> OneOf<T> {
        /// From `(weight, strategy)` arms; weights must sum to ≥ 1.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
                "prop_oneof! needs at least one arm with nonzero weight"
            );
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights covered above")
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    $(let $v = $s.generate(rng);)+
                    ($($v,)+)
                }
            }
        };
    }
    tuple_strategy!(S1 / v1);
    tuple_strategy!(S1 / v1, S2 / v2);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
    tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5, S6 / v6);

    /// `&'static str` patterns act as generators for a small regex subset:
    /// literal characters, `[a-z0-9_]`-style classes, and `{m}` / `{m,n}`
    /// repetition of the preceding element.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    enum Piece {
        Lit(char),
        Class(Vec<(char, char)>),
    }

    fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
        let mut pieces: Vec<(Piece, u32, u32)> = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().expect("unterminated char class");
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().expect("unterminated char range");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Piece::Class(ranges)
                }
                '{' | '}' => panic!("quantifier without preceding element in {pat:?}"),
                '\\' => Piece::Lit(chars.next().expect("dangling escape")),
                c => Piece::Lit(c),
            };
            let (mut min, mut max) = (1u32, 1u32);
            if chars.peek() == Some(&'{') {
                chars.next();
                let mut bounds = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    bounds.push(c);
                }
                match bounds.split_once(',') {
                    Some((m, n)) => {
                        min = m.trim().parse().expect("bad quantifier");
                        max = n.trim().parse().expect("bad quantifier");
                    }
                    None => {
                        min = bounds.trim().parse().expect("bad quantifier");
                        max = min;
                    }
                }
            }
            pieces.push((piece, min, max));
        }
        let mut out = String::new();
        for (piece, min, max) in &pieces {
            let n = *min + (rng.below(u64::from(max - min + 1)) as u32);
            for _ in 0..n {
                match piece {
                    Piece::Lit(c) => out.push(*c),
                    Piece::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let w = u64::from(*hi as u32 - *lo as u32 + 1);
                            if pick < w {
                                out.push(
                                    char::from_u32(*lo as u32 + pick as u32)
                                        .expect("valid class char"),
                                );
                                break;
                            }
                            pick -= w;
                        }
                    }
                }
            }
        }
        out
    }
}

/// `any::<T>()` for primitive types.
pub mod arbitrary {
    use super::strategy::{BoxedStrategy, Strategy};
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The full-domain strategy.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    fn from_fn<T: 'static>(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        struct FnStrat<T>(Rc<dyn Fn(&mut TestRng) -> T>);
        impl<T> Strategy for FnStrat<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                (self.0)(rng)
            }
        }
        FnStrat(Rc::new(f)).boxed()
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    from_fn(|rng| rng.next_u64() as $t)
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            from_fn(|rng| rng.next_u64() & 1 == 1)
        }
    }

    impl Arbitrary for char {
        fn arbitrary() -> BoxedStrategy<char> {
            // Printable ASCII keeps generated text debuggable.
            from_fn(|rng| char::from_u32(0x20 + (rng.below(0x5f)) as u32).expect("ascii"))
        }
    }

    impl<T: Arbitrary + 'static> Arbitrary for Vec<T> {
        fn arbitrary() -> BoxedStrategy<Vec<T>> {
            crate::collection::vec(any::<T>(), 0..17).boxed()
        }
    }

    macro_rules! arb_tuple {
        ($($t:ident),+) => {
            impl<$($t: Arbitrary + 'static),+> Arbitrary for ($($t,)+) {
                fn arbitrary() -> BoxedStrategy<($($t,)+)> {
                    ($(any::<$t>(),)+).boxed()
                }
            }
        };
    }
    arb_tuple!(A);
    arb_tuple!(A, B);
    arb_tuple!(A, B, C);
    arb_tuple!(A, B, C, D);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `elem`-generated values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let n = self.size.lo + rng.below(span as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `vec(element_strategy, size)` — size may be a `usize`, `a..b`, or
    /// `a..=b`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for ordered sets. The size window bounds the *attempted*
    /// inserts; duplicates collapse, exactly like upstream.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let n = self.size.lo + rng.below(span as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `btree_set(element_strategy, size)`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Character strategies.
pub mod char {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform over an inclusive scalar-value range.
    #[derive(Clone, Copy, Debug)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            loop {
                let v = self.lo + rng.below(u64::from(self.hi - self.lo + 1)) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    /// Characters in `lo..=hi`.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }
}

/// Run a block of property tests.
///
/// Supports the standard form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            @cfg($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $crate::__proptest_fn! {
            @cfg($cfg)
            @metas($(#[$meta])*)
            @name($name)
            @acc()
            @parse($($args)*)
            @body($body)
        }
        $crate::__proptest_each! { @cfg($cfg) $($rest)* }
    };
}

/// Normalizes one test's argument list: both `pat in strategy` and the
/// typed `name: Type` (≡ `name in any::<Type>()`) forms, then emits the
/// `#[test]` wrapper.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fn {
    // `pat in strategy` argument.
    (@cfg($cfg:expr) @metas($($metas:tt)*) @name($name:ident)
     @acc($($acc:tt)*)
     @parse($p:pat in $s:expr $(, $($restargs:tt)*)?)
     @body($body:block)) => {
        $crate::__proptest_fn! {
            @cfg($cfg) @metas($($metas)*) @name($name)
            @acc($($acc)* [$p][$s])
            @parse($($($restargs)*)?)
            @body($body)
        }
    };
    // `name: Type` argument (full-domain `any`).
    (@cfg($cfg:expr) @metas($($metas:tt)*) @name($name:ident)
     @acc($($acc:tt)*)
     @parse($a:ident : $t:ty $(, $($restargs:tt)*)?)
     @body($body:block)) => {
        $crate::__proptest_fn! {
            @cfg($cfg) @metas($($metas)*) @name($name)
            @acc($($acc)* [$a][$crate::arbitrary::any::<$t>()])
            @parse($($($restargs)*)?)
            @body($body)
        }
    };
    // All arguments parsed: emit the test.
    (@cfg($cfg:expr) @metas($($metas:tt)*) @name($name:ident)
     @acc($([$arg:pat][$strat:expr])+)
     @parse($(,)?)
     @body($body:block)) => {
        $($metas)*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(cfg.cases);
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cases {
                let mut described = String::new();
                $(
                    let $arg = {
                        let v = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        described.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &v
                        ));
                        v
                    };
                )+
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || { $body })
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name), case + 1, cases, described,
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    };
}

/// Weighted (or unweighted) union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert within a property (panics; this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, OneOf, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::char;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..17, y in 0u8..=4, c in crate::char::range('a', 'f')) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!(('a'..='f').contains(&c));
        }

        #[test]
        fn vec_sizes_respect_window(
            v in crate::collection::vec((0i64..5, 0i64..5), 2..6),
            exact in crate::collection::vec(0u32..9, 3usize),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_maps_compose(
            e in prop_oneof![
                3 => (0u8..10).prop_map(Tree::Leaf),
                1 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| {
                    Tree::Node(Box::new(Tree::Leaf(a)), Box::new(Tree::Leaf(b)))
                }),
            ],
        ) {
            prop_assert!(depth(&e) <= 1);
        }

        #[test]
        fn recursive_strategies_terminate(
            t in (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            }),
        ) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn assume_skips_cases(n in 0u8..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0i64..100, 0..10);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
