//! Minimal JSON value model + `json!` macro + pretty printer, standing in
//! for `serde_json`. Only the construction-and-print surface used by this
//! workspace is provided (no parsing, no serde integration).

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers print without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

/// Error type for the (infallible, in practice) printers.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error")
    }
}

impl std::error::Error for Error {}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Null
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::Str(s.clone())
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Num(n as f64)
            }
        }
    )*};
}
from_num!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(items: &Vec<T>) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

impl Value {
    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * level),
                " ".repeat(w * (level + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    escape_into(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Anything printable as JSON by this shim.
pub trait ToJson {
    /// Convert to the [`Value`] model.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

/// Compact rendering.
pub fn to_string<T: ToJson>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    v.to_json().write(&mut out, None, 0);
    Ok(out)
}

/// Two-space-indented rendering.
pub fn to_string_pretty<T: ToJson>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    v.to_json().write(&mut out, Some(2), 0);
    Ok(out)
}

/// Build a [`Value`] from a JSON-shaped literal. Supports one level of
/// object/array syntax with arbitrary `Into<Value>` expressions as
/// values; nest by calling `json!` explicitly in a value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $item:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $( $key:tt : $val:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trip() {
        let v = json!({
            "id": "e01",
            "n": 3,
            "rows": vec![vec!["a".to_string()], vec!["b".to_string()]],
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"id":"e01","n":3,"rows":[["a"],["b"]]}"#);
        assert!(to_string_pretty(&v).unwrap().contains("\n  \"id\": \"e01\""));
    }

    #[test]
    fn strings_escape() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }
}
