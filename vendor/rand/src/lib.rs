//! Minimal stand-in for the `rand` crate: a deterministic xoshiro256++
//! PRNG behind the `StdRng` name, the `Rng`/`SeedableRng` traits, and
//! `seq::SliceRandom::shuffle`.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`;
//! determinism holds within this tree only.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges (and other shapes) values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}
impl_sample_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                   i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 (a deterministic, fast,
    /// high-quality non-cryptographic PRNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random reordering / selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` if empty).
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-100i64..100);
            assert!((-100..100).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    use super::RngCore;
}
