//! Minimal stand-in for `crossbeam`: MPMC channels on a mutex + condvar.
//!
//! Only `channel::{bounded, unbounded, Sender, Receiver}` are provided —
//! the surface the sharded KVS uses. Senders and receivers are cloneable;
//! `recv` blocks; dropping every sender disconnects the channel so worker
//! loops (`while let Ok(cmd) = rx.recv()`) terminate.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error: the channel is disconnected (all receivers gone). This shim
    /// never reports it — sends always enqueue — but callers match on it.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error: the channel is empty and all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value` and wake one receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.queue.push_back(value);
            drop(st);
            self.chan.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.cv.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.queue.pop_front().ok_or(RecvError)
        }
    }

    fn new_chan<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan()
    }

    /// A nominally bounded channel. This shim does not apply backpressure
    /// (the KVS uses capacity-1 channels purely as one-shot reply slots,
    /// where blocking-on-full is unreachable).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_on_all_senders_dropped() {
        let (tx, rx) = bounded::<()>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn oneshot_reply_pattern() {
        let (tx, rx) = bounded::<Option<u64>>(1);
        std::thread::spawn(move || tx.send(Some(9)).unwrap());
        assert_eq!(rx.recv().ok().flatten(), Some(9));
    }
}
