//! Minimal stand-in for `crossbeam`: MPMC channels on a mutex + condvar.
//!
//! Only `channel::{bounded, unbounded, Sender, Receiver}` are provided —
//! the surface the sharded KVS and the parallel shard driver use. Senders
//! and receivers are cloneable; `recv` blocks; dropping every sender
//! disconnects the channel so worker loops (`while let Ok(cmd) =
//! rx.recv()`) terminate, and dropping every receiver disconnects it the
//! other way so blocked or future `send`s return the value instead of
//! queueing into the void.
//!
//! `bounded(cap)` applies real backpressure: a `send` on a full channel
//! blocks until a receiver drains a slot (or every receiver is gone).
//! The parallel shard driver relies on this for its per-shard inboxes —
//! a fast router cannot run unboundedly ahead of a slow worker.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Capacity bound (`None` = unbounded). Immutable after creation.
        cap: Option<usize>,
        /// Signalled on every queue/handle transition; senders wait on it
        /// for space, receivers for data.
        cv: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error: the channel is disconnected (all receivers gone); the
    /// unsent value is handed back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error: the channel is empty and all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake senders blocked on capacity so they can bail out.
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while the channel is at capacity.
        /// Fails (returning the value) once every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            if let Some(cap) = self.chan.cap {
                while st.queue.len() >= cap {
                    if st.receivers == 0 {
                        return Err(SendError(value));
                    }
                    st = self.chan.cv.wait(st).expect("channel lock");
                }
            }
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.cv.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    // A slot opened: wake senders blocked on capacity.
                    self.chan.cv.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.cv.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            match st.queue.pop_front() {
                Some(v) => {
                    drop(st);
                    self.chan.cv.notify_all();
                    Ok(v)
                }
                None => Err(RecvError),
            }
        }
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    /// A bounded channel: `send` blocks while `cap` values are queued.
    /// A zero capacity is treated as one (this shim has no rendezvous
    /// mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_on_all_senders_dropped() {
        let (tx, rx) = bounded::<()>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn disconnect_on_all_receivers_dropped() {
        let (tx, rx) = bounded::<u64>(1);
        drop(rx);
        assert!(tx.send(1).is_err(), "no receiver can ever drain this");
    }

    #[test]
    fn oneshot_reply_pattern() {
        let (tx, rx) = bounded::<Option<u64>>(1);
        std::thread::spawn(move || tx.send(Some(9)).unwrap());
        assert_eq!(rx.recv().ok().flatten(), Some(9));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded::<u64>(2);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = Arc::clone(&sent);
        let h = std::thread::spawn(move || {
            for i in 0..6 {
                tx.send(i).unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Give the sender time to fill the channel; it must stall at the
        // capacity of 2, not run ahead.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            sent.load(Ordering::SeqCst) <= 2,
            "sender ran past the capacity bound: {}",
            sent.load(Ordering::SeqCst)
        );
        let mut got = Vec::new();
        while got.len() < 6 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }
}
