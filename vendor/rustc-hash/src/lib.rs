//! Local stand-in for the `rustc-hash` crate: the Fx hash function with
//! the `FxHashMap` / `FxHashSet` aliases.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher (word-at-a-time multiply-rotate).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<String, i64> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let s: FxHashSet<Vec<i64>> = [vec![1, 2], vec![3]].into_iter().collect();
        assert!(s.contains(&vec![1, 2]));
        assert!(!s.contains(&vec![2, 1]));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello world"), h(b"hello world"));
        assert_ne!(h(b"hello"), h(b"world"));
    }
}
