//! Marker-trait stand-in for `serde`.
//!
//! Only the derive entry points are exercised by this workspace; the
//! derives expand to nothing (see `serde_derive`), and these traits exist
//! so `use serde::{Serialize, Deserialize}` resolves.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; no methods are required by this workspace.
pub trait SerializeValue {}

/// Marker trait; no methods are required by this workspace.
pub trait DeserializeValue {}
