//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its lattice and AST
//! types but never serializes them through serde (the report binary uses
//! the local `serde_json` value model directly), so empty expansions are
//! sufficient and keep the proc-macro dependency-free.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
