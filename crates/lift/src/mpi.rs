//! MPI collective communication in HydroLogic (Appendix A.3).
//!
//! The appendix gives naive HydroLogic specifications for the MPI
//! collectives and notes "there are various well-known optimizations that
//! can be employed by Hydrolysis, including tree-based or ring-based
//! mechanisms". This module provides both sides:
//!
//! * [`collectives_program`] — the appendix's naive HydroLogic program
//!   (bcast/scatter/gather/reduce/allgather/allreduce over an `agents`
//!   table), runnable on the transducer;
//! * communication *schedules* for the optimized rewrites —
//!   [`bcast_schedule`], [`reduce_schedule`], [`allreduce_schedule`] over
//!   flat, binomial-tree and ring topologies — as pure data that
//!   `hydro-bench` replays on the network simulator to regenerate the
//!   message-count/latency comparison (experiment E7).

use hydro_core::ast::{Expr, Program};
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::value::LatticeKind;

/// Topologies for collective schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Root exchanges directly with every agent (the naive spec).
    Flat,
    /// Binomial tree: log₂(p) rounds.
    Tree,
    /// Ring: p−1 rounds of neighbor exchange.
    Ring,
}

/// One scheduled message: `(round, src, dst)`.
pub type Hop = (u32, usize, usize);

/// Broadcast schedule from `root` to all of `0..p`.
pub fn bcast_schedule(topology: Topology, p: usize, root: usize) -> Vec<Hop> {
    assert!(root < p);
    let mut hops = Vec::new();
    match topology {
        Topology::Flat => {
            for dst in 0..p {
                if dst != root {
                    hops.push((0, root, dst));
                }
            }
        }
        Topology::Tree => {
            // Binomial: in round r, every holder i sends to i+2^r (ranks
            // relative to the root).
            let rel = |x: usize| (x + root) % p;
            let mut span = 1;
            let mut round = 0;
            while span < p {
                for i in 0..span.min(p) {
                    let j = i + span;
                    if j < p {
                        hops.push((round, rel(i), rel(j)));
                    }
                }
                span *= 2;
                round += 1;
            }
        }
        Topology::Ring => {
            // Pass the value around the ring.
            for r in 0..p.saturating_sub(1) {
                let src = (root + r) % p;
                let dst = (root + r + 1) % p;
                hops.push((r as u32, src, dst));
            }
        }
    }
    hops
}

/// Reduction schedule: leaves toward `root`; the reverse of a broadcast.
pub fn reduce_schedule(topology: Topology, p: usize, root: usize) -> Vec<Hop> {
    let bcast = bcast_schedule(topology, p, root);
    let max_round = bcast.iter().map(|(r, _, _)| *r).max().unwrap_or(0);
    // Reverse each edge and flip the round order.
    let mut hops: Vec<Hop> = bcast
        .into_iter()
        .map(|(r, s, d)| (max_round - r, d, s))
        .collect();
    hops.sort();
    hops
}

/// All-reduce schedule: reduce followed by broadcast (tree/flat), or the
/// classic ring all-reduce (reduce-scatter + allgather ≈ 2(p−1) rounds of
/// neighbor messages).
pub fn allreduce_schedule(topology: Topology, p: usize) -> Vec<Hop> {
    match topology {
        Topology::Ring => {
            let mut hops = Vec::new();
            // 2(p-1) rounds; in each, every agent sends one chunk to its
            // right neighbor.
            for r in 0..2 * p.saturating_sub(1) {
                for i in 0..p {
                    hops.push((r as u32, i, (i + 1) % p));
                }
            }
            hops
        }
        _ => {
            let reduce = reduce_schedule(topology, p, 0);
            let rounds = reduce.iter().map(|(r, _, _)| *r + 1).max().unwrap_or(0);
            let mut hops = reduce;
            for (r, s, d) in bcast_schedule(topology, p, 0) {
                hops.push((rounds + r, s, d));
            }
            hops
        }
    }
}

/// All-gather schedule: everyone ends with everyone's contribution.
/// Flat/tree: gather to 0 then broadcast; ring: p−1 rounds of neighbor
/// forwarding (each round every agent passes one block right).
pub fn allgather_schedule(topology: Topology, p: usize) -> Vec<Hop> {
    match topology {
        Topology::Ring => {
            let mut hops = Vec::new();
            for r in 0..p.saturating_sub(1) {
                for i in 0..p {
                    hops.push((r as u32, i, (i + 1) % p));
                }
            }
            hops
        }
        _ => {
            let gather = reduce_schedule(topology, p, 0);
            let rounds_in = rounds(&gather);
            let mut hops = gather;
            for (r, s, d) in bcast_schedule(topology, p, 0) {
                hops.push((rounds_in + r, s, d));
            }
            hops
        }
    }
}

/// All-to-all (personalized exchange): every agent sends a distinct block
/// to every other agent. The flat schedule is the dense p(p−1) exchange in
/// one round; the ring pipelines it over p−1 rounds (same total messages,
/// bounded per-link load per round).
pub fn alltoall_schedule(topology: Topology, p: usize) -> Vec<Hop> {
    match topology {
        Topology::Ring => {
            let mut hops = Vec::new();
            for r in 0..p.saturating_sub(1) {
                for i in 0..p {
                    hops.push((r as u32, i, (i + 1) % p));
                }
            }
            hops
        }
        // Tree brings no asymptotic win for personalized all-to-all (every
        // pair must exchange distinct data); both non-ring topologies use
        // the direct exchange.
        _ => {
            let mut hops = Vec::new();
            for src in 0..p {
                for dst in 0..p {
                    if src != dst {
                        hops.push((0, src, dst));
                    }
                }
            }
            hops
        }
    }
}

/// Number of communication rounds in a schedule.
pub fn rounds(schedule: &[Hop]) -> u32 {
    schedule.iter().map(|(r, _, _)| *r + 1).max().unwrap_or(0)
}

/// The Appendix A.3 HydroLogic program for `p` agents: an `agents` table, a
/// `gathered` accumulation table, and handlers `mpi_bcast`, `mpi_scatter`,
/// `mpi_gather`, `mpi_reduce` (sum), `mpi_allgather` and `mpi_allreduce`.
/// Outbound per-agent traffic leaves through the `deliver` mailbox as
/// `(agent_id, tag, payload)` rows.
pub fn collectives_program(p: i64) -> Program {
    let mut b = ProgramBuilder::new()
        .table("agents", vec![("agent_id", atom())], &["agent_id"], None)
        .table(
            "gathered",
            vec![
                ("req_id", atom()),
                ("ix", atom()),
                ("val", atom()),
            ],
            &["req_id", "ix"],
            None,
        )
        // query acount / gcount of the appendix, as aggregation rules.
        .agg_rule(
            "gcount",
            vec![v("r")],
            hydro_core::ast::AggFun::Count,
            v("ix"),
            vec![scan("gathered", &["r", "ix", "_"])],
        );

    // Setup handler: register agents 0..p.
    let spawn: Vec<hydro_core::ast::Stmt> = (0..p)
        .map(|a| insert("agents", vec![i(a)]))
        .collect();
    b = b.on("mpi_init", &[], spawn);

    // on mpi_bcast(msg_id, msg): send a copy to every agent.
    b = b.on(
        "mpi_bcast",
        &["msg_id", "msg"],
        vec![send(
            "deliver",
            select(
                vec![scan("agents", &["a"])],
                vec![v("a"), s("bcast"), v("msg_id"), v("msg")],
            ),
        )],
    );

    // on mpi_scatter(req_id, arr): chunk i of the set goes to agent i.
    // (Values are scattered by index parity with p, modelling the
    // appendix's chunking without array arithmetic.)
    b = b.on(
        "mpi_scatter",
        &["req_id", "arr"],
        vec![send(
            "deliver",
            select(
                vec![
                    flatten("pair", v("arr")),
                    let_("agent", Expr::Index(Box::new(v("pair")), 0)),
                    let_("item", Expr::Index(Box::new(v("pair")), 1)),
                ],
                vec![v("agent"), s("scatter"), v("req_id"), v("item")],
            ),
        )],
    );

    // on mpi_gather(req_id, ix, val): accumulate; when all p arrived, emit
    // the assembled set and tombstone.
    b = b.on(
        "mpi_gather",
        &["req_id", "ix", "val"],
        vec![
            insert("gathered", vec![v("req_id"), v("ix"), v("val")]),
            // Completion detected by the condition handler below.
        ],
    );
    b = b.mailbox("gather_done", 2);
    b = b.on_condition(
        "gather_check",
        // Fires whenever some request has a full complement. (The guard
        // re-fires harmlessly; ClearMailbox-style dedup keeps output
        // single per request via the gathered tombstone pattern —
        // simplified here to a "first time it is complete" emit.)
        ge(
            Expr::Len(Box::new(collect_set(select(
                vec![
                    scan("gcount", &["r", "c"]),
                    guard(ge(v("c"), i(p))),
                ],
                vec![v("r")],
            )))),
            i(1),
        ),
        vec![send(
            "gather_done",
            select(
                vec![
                    scan("gcount", &["r", "c"]),
                    guard(ge(v("c"), i(p))),
                    let_(
                        "vals",
                        collect_set(select(
                            vec![scan("gathered", &["r", "ix2", "val2"])],
                            vec![v("ix2"), v("val2")],
                        )),
                    ),
                ],
                vec![v("r"), v("vals")],
            ),
        )],
    );

    // on mpi_reduce: like gather but emits the sum.
    b = b.lattice_var("reduce_requests", LatticeKind::SetUnion);
    b = b.agg_rule(
        "reduce_sum",
        vec![v("r")],
        hydro_core::ast::AggFun::Sum,
        v("val"),
        vec![scan("gathered", &["r", "_ix", "val"])],
    );
    b = b.mailbox("reduce_done", 2);
    b = b.on_condition(
        "reduce_check",
        ge(
            Expr::Len(Box::new(collect_set(select(
                vec![
                    scan("gcount", &["r", "c"]),
                    guard(ge(v("c"), i(p))),
                    scan_terms(
                        "reduce_requests_rel",
                        vec![hydro_core::ast::Term::Var("r".into())],
                    ),
                ],
                vec![v("r")],
            )))),
            i(1),
        ),
        vec![send(
            "reduce_done",
            select(
                vec![
                    scan("gcount", &["r", "c"]),
                    guard(ge(v("c"), i(p))),
                    scan_terms(
                        "reduce_requests_rel",
                        vec![hydro_core::ast::Term::Var("r".into())],
                    ),
                    scan("reduce_sum", &["r", "total"]),
                ],
                vec![v("r"), v("total")],
            ),
        )],
    );
    // Materialize the reduce-request markers as a relation.
    b = b.rule(
        "reduce_requests_rel",
        vec![v("r")],
        vec![flatten("r", scalar("reduce_requests"))],
    );
    b = b.on(
        "mpi_reduce",
        &["req_id", "ix", "val"],
        vec![
            insert("gathered", vec![v("req_id"), v("ix"), v("val")]),
            merge_scalar("reduce_requests", v("req_id")),
        ],
    );

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydro_core::interp::Transducer;
    use hydro_core::Value;
    use std::collections::BTreeSet;

    #[test]
    fn flat_bcast_is_p_minus_one_messages_one_round() {
        let s = bcast_schedule(Topology::Flat, 8, 0);
        assert_eq!(s.len(), 7);
        assert_eq!(rounds(&s), 1);
    }

    #[test]
    fn tree_bcast_is_log_rounds() {
        for p in [2usize, 4, 8, 16, 32] {
            let s = bcast_schedule(Topology::Tree, p, 0);
            assert_eq!(s.len(), p - 1, "every non-root receives exactly once");
            assert_eq!(rounds(&s), (p as f64).log2().ceil() as u32);
        }
    }

    #[test]
    fn every_agent_reached_exactly_once() {
        for topo in [Topology::Flat, Topology::Tree, Topology::Ring] {
            for p in [3usize, 5, 8, 13] {
                for root in [0, p / 2] {
                    let s = bcast_schedule(topo, p, root);
                    let mut received: BTreeSet<usize> = BTreeSet::from([root]);
                    let mut by_round = s.clone();
                    by_round.sort();
                    for (_, src, dst) in by_round {
                        assert!(
                            received.contains(&src),
                            "{topo:?} p={p}: {src} sends before holding the value"
                        );
                        assert!(received.insert(dst), "{topo:?} p={p}: {dst} received twice");
                    }
                    assert_eq!(received.len(), p, "{topo:?} p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_reverses_bcast() {
        let b = bcast_schedule(Topology::Tree, 8, 0);
        let r = reduce_schedule(Topology::Tree, 8, 0);
        assert_eq!(b.len(), r.len());
        assert_eq!(rounds(&b), rounds(&r));
    }

    #[test]
    fn allgather_delivers_all_blocks() {
        // Ring allgather: after p-1 rounds of forwarding, every agent has
        // seen a block from every other agent (counting per-link sends).
        let p = 5;
        let s = allgather_schedule(Topology::Ring, p);
        assert_eq!(s.len(), (p - 1) * p);
        assert_eq!(rounds(&s), (p - 1) as u32);
        // Tree allgather = gather + bcast: 2(p-1) messages.
        let t = allgather_schedule(Topology::Tree, p);
        assert_eq!(t.len(), 2 * (p - 1));
    }

    #[test]
    fn alltoall_exchanges_every_pair() {
        let p = 4;
        let s = alltoall_schedule(Topology::Flat, p);
        assert_eq!(s.len(), p * (p - 1));
        // Every ordered pair appears exactly once.
        let pairs: BTreeSet<(usize, usize)> = s.iter().map(|(_, a, b)| (*a, *b)).collect();
        assert_eq!(pairs.len(), p * (p - 1));
        // The ring variant trades rounds for per-round fan-in.
        let ring = alltoall_schedule(Topology::Ring, p);
        assert_eq!(rounds(&ring), (p - 1) as u32);
    }

    #[test]
    fn ring_allreduce_message_pattern() {
        let p = 4;
        let s = allreduce_schedule(Topology::Ring, p);
        // 2(p-1) rounds × p messages.
        assert_eq!(s.len(), 2 * (p - 1) * p);
        // Tree allreduce uses far fewer messages at higher rounds.
        let t = allreduce_schedule(Topology::Tree, p);
        assert_eq!(t.len(), 2 * (p - 1));
    }

    #[test]
    fn hydrologic_bcast_delivers_to_all_agents() {
        let p = 4;
        let mut t = Transducer::new(collectives_program(p)).unwrap();
        t.enqueue_ok("mpi_init", vec![]);
        t.tick().unwrap();
        t.enqueue_ok("mpi_bcast", vec![Value::Int(1), Value::from("hello")]);
        let out = t.tick().unwrap();
        let recipients: BTreeSet<i64> = out
            .sends
            .iter()
            .filter(|s| s.mailbox == "deliver")
            .filter_map(|s| s.row[0].as_int())
            .collect();
        assert_eq!(recipients, (0..p).collect());
    }

    #[test]
    fn hydrologic_gather_completes_at_full_count() {
        let p = 3;
        let mut t = Transducer::new(collectives_program(p)).unwrap();
        t.enqueue_ok("mpi_init", vec![]);
        t.tick().unwrap();
        for ix in 0..p {
            t.enqueue_ok(
                "mpi_gather",
                vec![Value::Int(9), Value::Int(ix), Value::Int(ix * 100)],
            );
        }
        t.tick().unwrap(); // inserts applied
        let out = t.tick().unwrap(); // condition handler fires
        let done: Vec<_> = out
            .sends
            .iter()
            .filter(|s| s.mailbox == "gather_done")
            .collect();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].row[0], Value::Int(9));
        let set = done[0].row[1].as_set().unwrap();
        assert_eq!(set.len(), p as usize);
    }

    #[test]
    fn hydrologic_reduce_sums_contributions() {
        let p = 3;
        let mut t = Transducer::new(collectives_program(p)).unwrap();
        t.enqueue_ok("mpi_init", vec![]);
        t.tick().unwrap();
        for ix in 0..p {
            t.enqueue_ok(
                "mpi_reduce",
                vec![Value::Int(5), Value::Int(ix), Value::Int(ix + 1)],
            );
        }
        t.tick().unwrap();
        let out = t.tick().unwrap();
        let done: Vec<_> = out
            .sends
            .iter()
            .filter(|s| s.mailbox == "reduce_done")
            .collect();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].row[1], Value::Int(6)); // 1+2+3
    }

    #[test]
    fn scatter_routes_pairs_to_agents() {
        let p = 2;
        let mut t = Transducer::new(collectives_program(p)).unwrap();
        t.enqueue_ok("mpi_init", vec![]);
        t.tick().unwrap();
        let arr = Value::set_of([
            Value::tuple([Value::Int(0), Value::from("a")]),
            Value::tuple([Value::Int(1), Value::from("b")]),
        ]);
        t.enqueue_ok("mpi_scatter", vec![Value::Int(1), arr]);
        let out = t.tick().unwrap();
        let mut got: Vec<(i64, String)> = out
            .sends
            .iter()
            .filter(|s| s.mailbox == "deliver")
            .map(|s| {
                (
                    s.row[0].as_int().unwrap(),
                    s.row[3].as_str().unwrap().to_string(),
                )
            })
            .collect();
        got.sort();
        assert_eq!(got, vec![(0, "a".into()), (1, "b".into())]);
    }
}
