//! Lifting promises/futures into HydroLogic (Appendix A.2).
//!
//! The Ray-style pattern — `futures = [f.remote(i) for i in range(4)]; x =
//! g(); ray.get(futures)` — lifts to: an eager batch of `send`s into a
//! promises engine's mailbox, local work, and a *condition handler* that
//! fires once the `futures` mailbox has collected all responses. The
//! appendix notes kickoff semantics vary; both the eager and lazy variants
//! are generated here.

use hydro_core::ast::{Expr, Program};
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::value::LatticeKind;
use hydro_core::Value;

/// When promises begin executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kickoff {
    /// Execute as soon as spawned (Ray's default).
    Eager,
    /// Park in a pending table until a demand message arrives.
    Lazy,
}

/// Generate the Appendix A.2 program: `on start` spawns `fanout` promises
/// of the UDF `f` over `0..fanout`, runs `g` locally, and a condition
/// handler collects the `futures` mailbox once all results arrived,
/// sending the gathered array to the `result` mailbox.
///
/// Generated surface:
/// * `start()` handler — kick everything off;
/// * `promises(handle, arg)` mailbox — consumed by the promise engine
///   (`on_promise` handler, which calls UDF `"f"` and replies);
/// * `futures(handle, value)` mailbox — accumulates resolutions;
/// * `demand()` handler — for [`Kickoff::Lazy`], releases parked promises;
/// * `result` external mailbox — receives the final gathered set.
pub fn promises_program(fanout: i64, kickoff: Kickoff) -> Program {
    let mut b = ProgramBuilder::new()
        .var("waiting", Value::Bool(false))
        .var("x", Value::Int(0))
        .lattice_var("resolved", LatticeKind::SetUnion)
        .mailbox("futures", 2)
        .table(
            "pending",
            vec![("handle", atom()), ("arg", atom())],
            &["handle"],
            None,
        )
        .udf("f")
        .udf("g");

    // `on start`: spawn promises (eagerly or into the pending table), then
    // run g() locally — "the function g() then runs locally while the
    // promises execute concurrently and remotely".
    let spawn_stmts = (0..fanout)
        .map(|k| match kickoff {
            Kickoff::Eager => send_row("on_promise", vec![i(k), i(k)]),
            Kickoff::Lazy => insert("pending", vec![i(k), i(k)]),
        })
        .collect::<Vec<_>>();
    let mut start_body = spawn_stmts;
    start_body.push(assign_scalar("x", call("g", vec![])));
    start_body.push(assign_scalar("waiting", Expr::Const(Value::Bool(true))));
    b = b.on("start", &[], start_body);

    if kickoff == Kickoff::Lazy {
        // `demand` releases every parked promise.
        b = b.on(
            "demand",
            &[],
            vec![send(
                "on_promise",
                select(
                    vec![scan("pending", &["h", "a"])],
                    vec![v("h"), v("a")],
                ),
            )],
        );
    }

    // The promises engine: each promise invocation computes f(arg) and
    // resolves the corresponding future asynchronously.
    b = b.on(
        "on_promise",
        &["handle", "arg"],
        vec![send_row(
            "futures",
            vec![v("handle"), call("f", vec![v("arg")])],
        )],
    );

    // `on futures(handle, result).len() >= fanout:` — the condition
    // handler of Appendix A.2, firing once all futures resolved.
    b = b.on_condition(
        "gather",
        Expr::And(
            Box::new(eq(scalar("waiting"), Expr::Const(Value::Bool(true)))),
            Box::new(ge(
                Expr::Len(Box::new(collect_set(select(
                    vec![scan("futures", &["h", "r"])],
                    vec![v("h")],
                )))),
                i(fanout),
            )),
        ),
        vec![
            send(
                "result",
                select(
                    vec![scan("futures", &["h", "r"])],
                    vec![v("h"), v("r")],
                ),
            ),
            hydro_core::ast::Stmt::ClearMailbox("futures".into()),
            assign_scalar("waiting", Expr::Const(Value::Bool(false))),
        ],
    );

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydro_core::interp::Transducer;
    use std::collections::BTreeSet;

    fn run(kickoff: Kickoff, demand: bool) -> Vec<(String, Vec<Value>)> {
        let mut t = Transducer::new(promises_program(4, kickoff)).unwrap();
        t.register_udf("f", |args| {
            Value::Int(args[0].as_int().unwrap_or(0) * 10)
        });
        t.register_udf("g", |_| Value::Int(999));
        t.enqueue_ok("start", vec![]);
        let mut external = Vec::new();
        for _ in 0..10 {
            let out = t.tick().unwrap();
            for s in out.sends {
                if t.has_mailbox(&s.mailbox) {
                    t.enqueue_ok(&s.mailbox, s.row);
                } else {
                    external.push((s.mailbox, s.row));
                }
            }
            if demand && t.tick_no() == 2 {
                t.enqueue_ok("demand", vec![]);
            }
        }
        external
    }

    #[test]
    fn eager_promises_gather_all_results() {
        let external = run(Kickoff::Eager, false);
        let results: BTreeSet<(i64, i64)> = external
            .iter()
            .filter(|(m, _)| m == "result")
            .map(|(_, row)| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            results,
            BTreeSet::from([(0, 0), (1, 10), (2, 20), (3, 30)]),
            "all four futures resolve with f(k)=10k"
        );
    }

    #[test]
    fn lazy_promises_wait_for_demand() {
        // Without a demand message nothing resolves…
        let external = run(Kickoff::Lazy, false);
        assert!(external.iter().all(|(m, _)| m != "result"));
        // …with one, everything does.
        let external = run(Kickoff::Lazy, true);
        assert_eq!(
            external.iter().filter(|(m, _)| m == "result").count(),
            4,
            "demand releases the parked promises"
        );
    }

    #[test]
    fn local_work_runs_before_futures_resolve() {
        let mut t = Transducer::new(promises_program(2, Kickoff::Eager)).unwrap();
        t.register_udf("f", |args| args[0].clone());
        t.register_udf("g", |_| Value::Int(7));
        t.enqueue_ok("start", vec![]);
        t.tick().unwrap();
        // x := g() applied at end of the very first tick, long before the
        // futures mailbox fills.
        assert_eq!(t.scalar("x"), Some(&Value::Int(7)));
        assert_eq!(t.scalar("waiting"), Some(&Value::Bool(true)));
    }
}
