//! Lifting the Actor model into HydroLogic (Appendix A.1).
//!
//! "Actors are like objects: they encapsulate state and handlers.
//! HydroLogic does not bind handlers to objects, but we can enforce that
//! when lifting by generating a HydroLogic program in which we have an
//! Actor class keyed by actor_id, and each handler's first argument
//! identifies an actor_id."
//!
//! The lifter maps each actor class to a table keyed by `actor_id` (state
//! fields as assignable columns — actors are imperatively stateful, so the
//! CALM typechecker will rightly mark these handlers non-monotone), each
//! method to an `on` handler prefixed with the class name, `spawn` to row
//! insertion, and the appendix's tricky case — a *mid-method blocking
//! receive* — to the documented two-handler split with a `waiting` status
//! field and a stash column for the suspended computation's state.
//!
//! [`ActorRuntime`] is a direct FIFO actor executor used as the native
//! reference in differential tests (experiment E12).

use hydro_core::ast::{ColumnKind, Expr, Program, Stmt};
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::eval::Row;
use hydro_core::Value;
use rustc_hash::FxHashMap;
use std::collections::{BTreeMap, VecDeque};

/// Expressions available in actor method bodies.
#[derive(Clone, Debug, PartialEq)]
pub enum AExpr {
    /// Integer literal.
    Const(i64),
    /// Method parameter by name.
    Param(String),
    /// A field of the current actor's state.
    Field(String),
    /// Addition.
    Add(Box<AExpr>, Box<AExpr>),
    /// Subtraction.
    Sub(Box<AExpr>, Box<AExpr>),
}

/// Statements in an actor method.
#[derive(Clone, Debug, PartialEq)]
pub enum ActorStmt {
    /// `self.field = expr`.
    SetField(String, AExpr),
    /// Asynchronous send to another actor's method.
    SendTo {
        /// Target actor id expression.
        target: AExpr,
        /// Method name (same class).
        method: String,
        /// Arguments.
        args: Vec<AExpr>,
    },
    /// Reply to the method's caller.
    Reply(AExpr),
    /// Spawn a fresh actor of the same class with the given id.
    Spawn(AExpr),
    /// Block until a message arrives in `mailbox`, then continue — the
    /// Appendix A coroutine case, lifted via a status variable.
    AwaitReceive {
        /// Continuation mailbox name.
        mailbox: String,
        /// Parameters bound from the continuation message.
        params: Vec<String>,
        /// Continuation body (restricted: no nested awaits).
        then: Vec<ActorStmt>,
    },
}

/// A method of an actor class.
#[derive(Clone, Debug, PartialEq)]
pub struct ActorMethod {
    /// Method name.
    pub name: String,
    /// Parameter names (the implicit first parameter is the actor id).
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<ActorStmt>,
}

/// An actor class: named integer state fields plus methods.
#[derive(Clone, Debug, PartialEq)]
pub struct ActorClass {
    /// Class name (prefixes generated handler names).
    pub name: String,
    /// State fields, all integers initialized to 0.
    pub fields: Vec<String>,
    /// Methods.
    pub methods: Vec<ActorMethod>,
}

impl ActorClass {
    /// Handler name generated for a method.
    pub fn handler_name(&self, method: &str) -> String {
        format!("{}::{}", self.name, method)
    }

    /// Handler name generated for a continuation mailbox.
    pub fn receive_handler_name(&self, mailbox: &str) -> String {
        format!("{}::recv_{}", self.name, mailbox)
    }

    /// Table name holding the class's instances.
    pub fn table_name(&self) -> String {
        format!("{}_actors", self.name)
    }
}

fn lift_expr(e: &AExpr, class: &ActorClass) -> Expr {
    match e {
        AExpr::Const(c) => i(*c),
        AExpr::Param(p) => v(p),
        AExpr::Field(f) => field(&class.table_name(), v("actor_id"), f),
        AExpr::Add(l, r) => add(lift_expr(l, class), lift_expr(r, class)),
        AExpr::Sub(l, r) => sub(lift_expr(l, class), lift_expr(r, class)),
    }
}

fn lift_stmts(
    class: &ActorClass,
    stmts: &[ActorStmt],
    out: &mut Vec<Stmt>,
    continuations: &mut Vec<(String, Vec<String>, Vec<ActorStmt>)>,
) {
    let table = class.table_name();
    for s in stmts {
        match s {
            ActorStmt::SetField(f, e) => {
                out.push(assign_field(&table, v("actor_id"), f, lift_expr(e, class)));
            }
            ActorStmt::SendTo {
                target,
                method,
                args,
            } => {
                let mut row_exprs = vec![lift_expr(target, class)];
                row_exprs.extend(args.iter().map(|a| lift_expr(a, class)));
                out.push(send_row(&class.handler_name(method), row_exprs));
            }
            ActorStmt::Reply(e) => out.push(ret(lift_expr(e, class))),
            ActorStmt::Spawn(id_expr) => {
                let mut values = vec![lift_expr(id_expr, class)];
                values.extend(class.fields.iter().map(|_| i(0)));
                values.push(b(false)); // waiting flag
                out.push(insert(&table, values));
            }
            ActorStmt::AwaitReceive {
                mailbox,
                params,
                then,
            } => {
                // m_pre already emitted above; mark the actor waiting and
                // register the continuation as its own handler (App. A:
                // "we can translate this into two separate handlers").
                out.push(assign_field(&table, v("actor_id"), "waiting", b(true)));
                continuations.push((mailbox.clone(), params.clone(), then.clone()));
                // Statements after an await belong to the continuation by
                // construction (the builder API nests them in `then`).
                break;
            }
        }
    }
}

/// Lift an actor class into a HydroLogic program.
///
/// Generated interface:
/// * `spawn(actor_id)` handler to create instances;
/// * `Class::method(actor_id, …)` per method;
/// * `Class::recv_<mailbox>(actor_id, …)` per mid-method receive, guarded
///   by the `waiting` status field the paper's translation calls for.
pub fn lift_actor(class: &ActorClass) -> Program {
    let table = class.table_name();
    let mut columns: Vec<(&str, ColumnKind)> = vec![("actor_id", atom())];
    for f in &class.fields {
        columns.push((f.as_str(), atom()));
    }
    columns.push(("waiting", atom()));

    let mut builder = ProgramBuilder::new().table(&table, columns, &["actor_id"], None);

    // spawn handler.
    let mut spawn_values = vec![v("actor_id")];
    spawn_values.extend(class.fields.iter().map(|_| i(0)));
    spawn_values.push(b(false));
    builder = builder.on(
        "spawn",
        &["actor_id"],
        vec![
            insert(&table, spawn_values),
            ret(Expr::Const(Value::ok())),
        ],
    );

    for method in &class.methods {
        let mut stmts = Vec::new();
        let mut continuations = Vec::new();
        lift_stmts(class, &method.body, &mut stmts, &mut continuations);

        let mut params: Vec<&str> = vec!["actor_id"];
        params.extend(method.params.iter().map(String::as_str));
        builder = builder.on(&class.handler_name(&method.name), &params, stmts);

        for (mailbox, cparams, then) in continuations {
            let mut cstmts = vec![assign_field(&table, v("actor_id"), "waiting", b(false))];
            let mut nested = Vec::new();
            lift_stmts(class, &then, &mut cstmts, &mut nested);
            assert!(
                nested.is_empty(),
                "nested awaits are not supported by the lifter"
            );
            // Only deliver while actually waiting (the paper notes the
            // elided bookkeeping; we enforce it with a guard).
            let guarded = vec![if_(
                eq(field(&table, v("actor_id"), "waiting"), b(true)),
                cstmts,
                vec![],
            )];
            let mut cparams_ref: Vec<&str> = vec!["actor_id"];
            cparams_ref.extend(cparams.iter().map(String::as_str));
            builder = builder.on(
                &class.receive_handler_name(&mailbox),
                &cparams_ref,
                guarded,
            );
        }
    }
    builder.build()
}

/// A native FIFO actor runtime: the reference semantics for differential
/// testing of the lifting.
pub struct ActorRuntime {
    class: ActorClass,
    /// actor id → (fields, waiting stash).
    actors: BTreeMap<i64, FxHashMap<String, i64>>,
    waiting: BTreeMap<i64, bool>,
    queue: VecDeque<(i64, String, Vec<i64>)>,
    /// Replies produced, in order.
    pub replies: Vec<i64>,
    /// Pending continuations: actor id → (mailbox, params, body).
    pending: BTreeMap<i64, (String, Vec<String>, Vec<ActorStmt>)>,
}

impl ActorRuntime {
    /// A runtime for one class.
    pub fn new(class: ActorClass) -> Self {
        ActorRuntime {
            class,
            actors: BTreeMap::new(),
            waiting: BTreeMap::new(),
            queue: VecDeque::new(),
            replies: Vec::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Create an actor.
    pub fn spawn(&mut self, id: i64) {
        let fields = self
            .class
            .fields
            .iter()
            .map(|f| (f.clone(), 0))
            .collect();
        self.actors.insert(id, fields);
        self.waiting.insert(id, false);
    }

    /// Enqueue a method invocation.
    pub fn send(&mut self, id: i64, method: &str, args: Vec<i64>) {
        self.queue.push_back((id, method.to_string(), args));
    }

    /// Read a field.
    pub fn field(&self, id: i64, field: &str) -> Option<i64> {
        self.actors.get(&id).and_then(|f| f.get(field)).copied()
    }

    fn eval(&self, e: &AExpr, id: i64, env: &FxHashMap<String, i64>) -> i64 {
        match e {
            AExpr::Const(c) => *c,
            AExpr::Param(p) => *env.get(p).unwrap_or(&0),
            AExpr::Field(f) => self.field(id, f).unwrap_or(0),
            AExpr::Add(l, r) => self.eval(l, id, env) + self.eval(r, id, env),
            AExpr::Sub(l, r) => self.eval(l, id, env) - self.eval(r, id, env),
        }
    }

    fn exec(&mut self, id: i64, stmts: &[ActorStmt], env: &FxHashMap<String, i64>) {
        for s in stmts {
            match s {
                ActorStmt::SetField(f, e) => {
                    let val = self.eval(e, id, env);
                    if let Some(fields) = self.actors.get_mut(&id) {
                        fields.insert(f.clone(), val);
                    }
                }
                ActorStmt::SendTo {
                    target,
                    method,
                    args,
                } => {
                    let t = self.eval(target, id, env);
                    let a: Vec<i64> = args.iter().map(|x| self.eval(x, id, env)).collect();
                    self.queue.push_back((t, method.clone(), a));
                }
                ActorStmt::Reply(e) => {
                    let val = self.eval(e, id, env);
                    self.replies.push(val);
                }
                ActorStmt::Spawn(id_expr) => {
                    let new_id = self.eval(id_expr, id, env);
                    self.spawn(new_id);
                }
                ActorStmt::AwaitReceive {
                    mailbox,
                    params,
                    then,
                } => {
                    self.waiting.insert(id, true);
                    self.pending
                        .insert(id, (mailbox.clone(), params.clone(), then.clone()));
                    break;
                }
            }
        }
    }

    /// Drain the queue to quiescence (bounded).
    pub fn run(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            let Some((id, method, args)) = self.queue.pop_front() else {
                break;
            };
            // Continuation delivery?
            if let Some((mailbox, params, body)) = self.pending.get(&id).cloned() {
                if method == format!("recv_{mailbox}") {
                    self.pending.remove(&id);
                    self.waiting.insert(id, false);
                    let env: FxHashMap<String, i64> =
                        params.iter().cloned().zip(args.iter().copied()).collect();
                    self.exec(id, &body, &env);
                    continue;
                }
            }
            let Some(m) = self.class.methods.iter().find(|m| m.name == method).cloned() else {
                continue;
            };
            if !self.actors.contains_key(&id) {
                continue;
            }
            let env: FxHashMap<String, i64> = m
                .params
                .iter()
                .cloned()
                .zip(args.iter().copied())
                .collect();
            self.exec(id, &m.body, &env);
        }
    }
}

/// A bank-account actor class used by tests, examples and E12: deposits,
/// simple transfers between actors, and a balance query with reply.
pub fn bank_actor() -> ActorClass {
    ActorClass {
        name: "Account".into(),
        fields: vec!["balance".into()],
        methods: vec![
            ActorMethod {
                name: "deposit".into(),
                params: vec!["amount".into()],
                body: vec![ActorStmt::SetField(
                    "balance".into(),
                    AExpr::Add(
                        Box::new(AExpr::Field("balance".into())),
                        Box::new(AExpr::Param("amount".into())),
                    ),
                )],
            },
            ActorMethod {
                name: "transfer".into(),
                params: vec!["to".into(), "amount".into()],
                body: vec![
                    ActorStmt::SetField(
                        "balance".into(),
                        AExpr::Sub(
                            Box::new(AExpr::Field("balance".into())),
                            Box::new(AExpr::Param("amount".into())),
                        ),
                    ),
                    ActorStmt::SendTo {
                        target: AExpr::Param("to".into()),
                        method: "deposit".into(),
                        args: vec![AExpr::Param("amount".into())],
                    },
                ],
            },
            ActorMethod {
                name: "balance".into(),
                params: vec![],
                body: vec![ActorStmt::Reply(AExpr::Field("balance".into()))],
            },
        ],
    }
}

/// Drive a lifted actor program on a transducer with immediate local
/// delivery, mirroring [`ActorRuntime::run`]'s FIFO semantics. Returns the
/// external sends (unused mailboxes) for inspection.
pub fn run_lifted(
    t: &mut hydro_core::interp::Transducer,
    max_ticks: usize,
) -> Vec<(String, Row)> {
    let out = t.run_to_quiescence(max_ticks).expect("lifted program runs");
    out.sends.into_iter().map(|s| (s.mailbox, s.row)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydro_core::interp::Transducer;

    #[test]
    fn lifted_bank_matches_native_deposits_and_transfers() {
        let class = bank_actor();

        // Native run.
        let mut native = ActorRuntime::new(class.clone());
        native.spawn(1);
        native.spawn(2);
        native.send(1, "deposit", vec![100]);
        native.send(1, "transfer", vec![2, 30]);
        native.send(2, "deposit", vec![5]);
        native.run(100);

        // Lifted run.
        let program = lift_actor(&class);
        let mut t = Transducer::new(program).unwrap();
        t.enqueue_ok("spawn", vec![Value::Int(1)]);
        t.enqueue_ok("spawn", vec![Value::Int(2)]);
        t.tick().unwrap();
        t.enqueue_ok("Account::deposit", vec![Value::Int(1), Value::Int(100)]);
        t.tick().unwrap();
        t.enqueue_ok(
            "Account::transfer",
            vec![Value::Int(1), Value::Int(2), Value::Int(30)],
        );
        // run_to_quiescence re-delivers the transfer's deposit send.
        run_lifted(&mut t, 10);
        t.enqueue_ok("Account::deposit", vec![Value::Int(2), Value::Int(5)]);
        t.tick().unwrap();

        for id in [1i64, 2] {
            let native_balance = native.field(id, "balance").unwrap();
            let lifted_balance = t.row("Account_actors", &[Value::Int(id)]).unwrap()[1]
                .as_int()
                .unwrap();
            assert_eq!(native_balance, lifted_balance, "actor {id}");
        }
        assert_eq!(native.field(1, "balance"), Some(70));
        assert_eq!(native.field(2, "balance"), Some(35));
    }

    #[test]
    fn lifted_reply_returns_balance() {
        let class = bank_actor();
        let program = lift_actor(&class);
        let mut t = Transducer::new(program).unwrap();
        t.enqueue_ok("spawn", vec![Value::Int(7)]);
        t.tick().unwrap();
        t.enqueue_ok("Account::deposit", vec![Value::Int(7), Value::Int(42)]);
        t.tick().unwrap();
        t.enqueue_ok("Account::balance", vec![Value::Int(7)]);
        let out = t.tick().unwrap();
        assert_eq!(out.responses[0].value, Value::Int(42));
    }

    #[test]
    fn mid_method_receive_lifts_to_two_handlers() {
        // A method that waits for an ack before applying its effect.
        let class = ActorClass {
            name: "W".into(),
            fields: vec!["x".into()],
            methods: vec![ActorMethod {
                name: "m".into(),
                params: vec!["v".into()],
                body: vec![
                    ActorStmt::SetField("x".into(), AExpr::Const(1)), // m_pre
                    ActorStmt::AwaitReceive {
                        mailbox: "mybox".into(),
                        params: vec!["newv".into()],
                        then: vec![ActorStmt::SetField(
                            "x".into(),
                            AExpr::Param("newv".into()),
                        )], // m_post
                    },
                ],
            }],
        };
        let program = lift_actor(&class);
        assert!(program.handler("W::m").is_some());
        assert!(program.handler("W::recv_mybox").is_some());

        let mut t = Transducer::new(program).unwrap();
        t.enqueue_ok("spawn", vec![Value::Int(1)]);
        t.tick().unwrap();
        t.enqueue_ok("W::m", vec![Value::Int(1), Value::Int(0)]);
        t.tick().unwrap();
        // m_pre ran, actor is waiting.
        assert_eq!(t.row("W_actors", &[Value::Int(1)]).unwrap()[1], Value::Int(1));
        assert_eq!(t.row("W_actors", &[Value::Int(1)]).unwrap()[2], Value::Bool(true));
        // Deliver the awaited message: m_post runs.
        t.enqueue_ok("W::recv_mybox", vec![Value::Int(1), Value::Int(99)]);
        t.tick().unwrap();
        assert_eq!(t.row("W_actors", &[Value::Int(1)]).unwrap()[1], Value::Int(99));
        assert_eq!(
            t.row("W_actors", &[Value::Int(1)]).unwrap()[2],
            Value::Bool(false)
        );
    }

    #[test]
    fn receive_while_not_waiting_is_ignored() {
        let class = ActorClass {
            name: "W".into(),
            fields: vec!["x".into()],
            methods: vec![ActorMethod {
                name: "m".into(),
                params: vec![],
                body: vec![ActorStmt::AwaitReceive {
                    mailbox: "mb".into(),
                    params: vec!["nv".into()],
                    then: vec![ActorStmt::SetField("x".into(), AExpr::Param("nv".into()))],
                }],
            }],
        };
        let mut t = Transducer::new(lift_actor(&class)).unwrap();
        t.enqueue_ok("spawn", vec![Value::Int(1)]);
        t.tick().unwrap();
        // Unsolicited continuation message: guard keeps x untouched.
        t.enqueue_ok("W::recv_mb", vec![Value::Int(1), Value::Int(5)]);
        t.tick().unwrap();
        assert_eq!(t.row("W_actors", &[Value::Int(1)]).unwrap()[1], Value::Int(0));
    }
}
