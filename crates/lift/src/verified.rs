//! Verified lifting of sequential loops (§1.2, §4): program synthesis as
//! code search.
//!
//! The paper's verified-lifting line of work translates imperative code to
//! declarative form by *searching* a space of candidate summaries and
//! *verifying* equivalence. Full verified lifting uses SMT solvers; this
//! reproduction substitutes testing-based verification (random +
//! boundary-case inputs, seeded), which preserves the architecture — search
//! over a declarative grammar, accept only candidates indistinguishable
//! from the source — at laptop scale. DESIGN.md records the substitution.
//!
//! The source language is the single-accumulator loop (the shape §4 says
//! lifts well: "applications consisting largely of single-threaded logic"),
//! plus nested-loop equijoins. Lifted results are declarative
//! [`Summary`]s, mappable onto HydroLogic aggregation rules.

use hydro_core::ast::{AggFun, AggRule, Expr};
use hydro_core::builder::dsl::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pure expressions over the loop variable `x`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoopExpr {
    /// The loop variable.
    X,
    /// Integer literal.
    Const(i64),
    /// Addition.
    Add(Box<LoopExpr>, Box<LoopExpr>),
    /// Multiplication.
    Mul(Box<LoopExpr>, Box<LoopExpr>),
}

impl LoopExpr {
    fn eval(&self, x: i64) -> i64 {
        match self {
            LoopExpr::X => x,
            LoopExpr::Const(c) => *c,
            LoopExpr::Add(l, r) => l.eval(x).wrapping_add(r.eval(x)),
            LoopExpr::Mul(l, r) => l.eval(x).wrapping_mul(r.eval(x)),
        }
    }
}

/// Guards over the loop variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoopGuard {
    /// Always true.
    True,
    /// `x > c`.
    Gt(i64),
    /// `x < c`.
    Lt(i64),
    /// `x % 2 == 0`.
    Even,
}

impl LoopGuard {
    fn eval(&self, x: i64) -> bool {
        match self {
            LoopGuard::True => true,
            LoopGuard::Gt(c) => x > *c,
            LoopGuard::Lt(c) => x < *c,
            LoopGuard::Even => x % 2 == 0,
        }
    }
}

/// Fold operators the accumulator may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldOp {
    /// `acc += e`
    Add,
    /// `acc = max(acc, e)`
    Max,
    /// `acc = min(acc, e)`
    Min,
    /// `acc += 1` (count; ignores the mapped value)
    Count,
}

/// An imperative accumulator loop:
/// `acc = init; for x in xs { if guard(x) { acc = acc ⊕ body(x) } }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImpLoop {
    /// Initial accumulator.
    pub init: i64,
    /// Filter guard.
    pub guard: LoopGuard,
    /// Mapped expression.
    pub body: LoopExpr,
    /// Fold operator.
    pub op: FoldOp,
}

impl ImpLoop {
    /// Reference (imperative) semantics.
    pub fn run(&self, xs: &[i64]) -> i64 {
        let mut acc = self.init;
        for &x in xs {
            if self.guard.eval(x) {
                let e = self.body.eval(x);
                acc = match self.op {
                    FoldOp::Add => acc.wrapping_add(e),
                    FoldOp::Max => acc.max(e),
                    FoldOp::Min => acc.min(e),
                    FoldOp::Count => acc.wrapping_add(1),
                };
            }
        }
        acc
    }
}

/// A declarative summary: `fold(op, init, map(body, filter(guard, xs)))`.
/// The lifted, HydroLogic-ready form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Fold operator.
    pub op: FoldOp,
    /// Initial value.
    pub init: i64,
    /// Mapped expression.
    pub map: LoopExpr,
    /// Filter guard.
    pub filter: LoopGuard,
}

impl Summary {
    /// Declarative semantics (order-insensitive by construction for
    /// commutative folds).
    pub fn run(&self, xs: &[i64]) -> i64 {
        let mut acc = self.init;
        for &x in xs {
            if self.filter.eval(x) {
                let e = self.map.eval(x);
                acc = match self.op {
                    FoldOp::Add => acc.wrapping_add(e),
                    FoldOp::Max => acc.max(e),
                    FoldOp::Min => acc.min(e),
                    FoldOp::Count => acc.wrapping_add(1),
                };
            }
        }
        acc
    }

    /// Emit the corresponding HydroLogic aggregation rule over an indexed
    /// relation `xs(ix, x)`, deriving `lifted(result)`.
    ///
    /// The index column matters: relations are *sets*, so lifting a list
    /// as bare values would silently dedup `sum([2, 2])` to 2. Indexing
    /// elements preserves bag semantics — the same trick the paper's own
    /// Appendix A.3 uses (`gathered(request_id, ix, val)`).
    pub fn to_hydrologic(&self) -> AggRule {
        let agg = match self.op {
            FoldOp::Add => AggFun::Sum,
            FoldOp::Max => AggFun::Max,
            FoldOp::Min => AggFun::Min,
            FoldOp::Count => AggFun::Count,
        };
        let over = loop_expr_to_ir(&self.map);
        let mut body = vec![scan("xs", &["ix", "x"])];
        match &self.filter {
            LoopGuard::True => {}
            LoopGuard::Gt(c) => body.push(guard(Expr::Cmp(
                hydro_core::ast::CmpOp::Gt,
                Box::new(v("x")),
                Box::new(i(*c)),
            ))),
            LoopGuard::Lt(c) => body.push(guard(lt(v("x"), i(*c)))),
            LoopGuard::Even => body.push(guard(eq(
                Expr::Arith(
                    hydro_core::ast::ArithOp::Mod,
                    Box::new(v("x")),
                    Box::new(i(2)),
                ),
                i(0),
            ))),
        }
        AggRule {
            head: "lifted".into(),
            group_exprs: vec![],
            agg,
            over,
            body,
        }
    }
}

fn loop_expr_to_ir(e: &LoopExpr) -> Expr {
    match e {
        LoopExpr::X => v("x"),
        LoopExpr::Const(c) => i(*c),
        LoopExpr::Add(l, r) => add(loop_expr_to_ir(l), loop_expr_to_ir(r)),
        LoopExpr::Mul(l, r) => Expr::Arith(
            hydro_core::ast::ArithOp::Mul,
            Box::new(loop_expr_to_ir(l)),
            Box::new(loop_expr_to_ir(r)),
        ),
    }
}

/// A verified lift: the summary plus evidence of the verification effort.
#[derive(Clone, Debug)]
pub struct VerifiedLift {
    /// The accepted summary.
    pub summary: Summary,
    /// Candidates enumerated before acceptance.
    pub candidates_tried: usize,
    /// Number of test vectors the candidate survived.
    pub tests_passed: usize,
}

/// Grammar enumeration: small map expressions and guards.
fn candidate_exprs() -> Vec<LoopExpr> {
    use LoopExpr::*;
    let mut out = vec![X, Const(1)];
    for c in [2i64, 3, 10] {
        out.push(Mul(Box::new(X), Box::new(Const(c))));
        out.push(Add(Box::new(X), Box::new(Const(c))));
    }
    out.push(Mul(Box::new(X), Box::new(X)));
    out
}

fn candidate_guards() -> Vec<LoopGuard> {
    let mut out = vec![LoopGuard::True, LoopGuard::Even];
    for c in [-1i64, 0, 1, 10] {
        out.push(LoopGuard::Gt(c));
        out.push(LoopGuard::Lt(c));
    }
    out
}

/// Test vectors: boundary cases plus seeded random inputs.
fn test_vectors(seed: u64, count: usize) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vs: Vec<Vec<i64>> = vec![
        vec![],
        vec![0],
        vec![-1],
        vec![i32::MAX as i64],
        vec![1, 1, 1],
        (-5..5).collect(),
    ];
    for _ in 0..count {
        let len = rng.gen_range(0..20);
        vs.push((0..len).map(|_| rng.gen_range(-100..100)).collect());
    }
    vs
}

/// Lift an imperative loop to a declarative summary by search + testing
/// verification. Returns `None` when no candidate in the grammar matches
/// (the §1.1 fallback: "encapsulate what remains in UDFs").
pub fn lift_loop(imp: &dyn Fn(&[i64]) -> i64, seed: u64) -> Option<VerifiedLift> {
    let vectors = test_vectors(seed, 40);
    let expected: Vec<i64> = vectors.iter().map(|xs| imp(xs)).collect();
    let mut tried = 0;
    // Infer init from the empty input (a fold's init is its empty answer).
    let init = imp(&[]);
    for op in [FoldOp::Add, FoldOp::Count, FoldOp::Max, FoldOp::Min] {
        for filter in candidate_guards() {
            for map in candidate_exprs() {
                tried += 1;
                let candidate = Summary {
                    op,
                    init,
                    map: map.clone(),
                    filter: filter.clone(),
                };
                if vectors
                    .iter()
                    .zip(&expected)
                    .all(|(xs, want)| candidate.run(xs) == *want)
                {
                    return Some(VerifiedLift {
                        summary: candidate,
                        candidates_tried: tried,
                        tests_passed: vectors.len(),
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifts_sum_loop() {
        let imp = |xs: &[i64]| xs.iter().sum::<i64>();
        let lift = lift_loop(&imp, 1).expect("sum lifts");
        assert_eq!(lift.summary.op, FoldOp::Add);
        assert_eq!(lift.summary.map, LoopExpr::X);
        assert_eq!(lift.summary.filter, LoopGuard::True);
    }

    #[test]
    fn lifts_filtered_scaled_sum() {
        // sum of 2x for positive x — map and filter both inferred.
        let imp = |xs: &[i64]| {
            let mut acc = 0i64;
            for &x in xs {
                if x > 0 {
                    acc += 2 * x;
                }
            }
            acc
        };
        let lift = lift_loop(&imp, 2).expect("filtered sum lifts");
        // The search may land on Gt(0) or the equivalent Gt(-1) (x=0
        // contributes 0 to the sum either way) — both are verified lifts.
        assert!(matches!(lift.summary.filter, LoopGuard::Gt(0) | LoopGuard::Gt(-1)));
        assert_eq!(
            lift.summary.map,
            LoopExpr::Mul(Box::new(LoopExpr::X), Box::new(LoopExpr::Const(2)))
        );
        // Whatever form it found, it is observationally the same function.
        for xs in [vec![], vec![-3, 0, 3], vec![5, 5]] {
            assert_eq!(lift.summary.run(&xs), imp(&xs));
        }
    }

    #[test]
    fn lifts_count_of_evens() {
        let imp = |xs: &[i64]| xs.iter().filter(|x| *x % 2 == 0).count() as i64;
        let lift = lift_loop(&imp, 3).expect("count lifts");
        // count(evens) and sum(1 for evens) are the same fold; accept
        // either verified form.
        assert!(
            lift.summary.op == FoldOp::Count
                || (lift.summary.op == FoldOp::Add
                    && lift.summary.map == LoopExpr::Const(1))
        );
        assert_eq!(lift.summary.filter, LoopGuard::Even);
    }

    #[test]
    fn refuses_non_fold_program() {
        // Position-dependent (order-sensitive) computation: no commutative
        // fold in the grammar can match; must stay a UDF.
        let imp = |xs: &[i64]| {
            xs.iter()
                .enumerate()
                .map(|(i, x)| (i as i64) * x)
                .sum::<i64>()
        };
        assert!(lift_loop(&imp, 4).is_none());
    }

    #[test]
    fn lifted_rule_runs_in_hydrologic() {
        use hydro_core::builder::ProgramBuilder;
        use hydro_core::interp::Transducer;
        use hydro_core::Value;

        let imp = |xs: &[i64]| xs.iter().sum::<i64>();
        let lift = lift_loop(&imp, 5).unwrap();
        let rule = lift.summary.to_hydrologic();
        let program = ProgramBuilder::new()
            .mailbox("xs", 2)
            .agg_rule(&rule.head, rule.group_exprs, rule.agg, rule.over, rule.body)
            .on(
                "probe",
                &[],
                vec![ret(collect_set(select(
                    vec![scan("lifted", &["total"])],
                    vec![v("total")],
                )))],
            )
            .build();
        let mut t = Transducer::new(program).unwrap();
        // Duplicate elements on purpose: the index column keeps list (bag)
        // semantics through the set-based relation.
        for (ix, x) in [3i64, 4, 5, 4].into_iter().enumerate() {
            t.enqueue_ok("xs", vec![Value::Int(ix as i64), Value::Int(x)]);
        }
        t.enqueue_ok("probe", vec![]);
        let out = t.tick().unwrap();
        assert_eq!(
            out.responses[0].value,
            Value::set_of([Value::Int(16)]),
            "declarative aggregate equals the imperative loop, duplicates included"
        );
    }

    #[test]
    fn verification_evidence_reported() {
        let imp = |xs: &[i64]| xs.iter().copied().fold(0, i64::max).max(0);
        if let Some(lift) = lift_loop(&imp, 6) {
            assert!(lift.tests_passed >= 40);
            assert!(lift.candidates_tried >= 1);
        }
    }
}
