//! # hydro-lift
//!
//! **Hydraulic**: lifting legacy distributed design patterns into
//! HydroLogic (§4 and Appendix A of the CIDR 2021 paper).
//!
//! "Programs written with these libraries adhere to fairly stylized uses of
//! distributed state and computation, which we believe we can lift
//! relatively cleanly to HydroLogic":
//!
//! * [`actors`] — the Actor model (App. A.1), including the tricky
//!   mid-method blocking receive, lifted via a `waiting` status field; plus
//!   a native FIFO actor runtime for differential testing (E12).
//! * [`futures`] — promises/futures (App. A.2): the Ray fan-out example
//!   with eager and lazy kickoff, resolved through a condition handler.
//! * [`mpi`] — MPI collective communication (App. A.3): the appendix's
//!   naive HydroLogic specs plus flat/tree/ring communication schedules for
//!   the optimized rewrites (E7).
//! * [`verified`] — verified-lifting-lite (§1.2/§4): search over a
//!   declarative summary grammar with testing-based equivalence checking,
//!   lifting imperative accumulator loops to HydroLogic aggregations.

pub mod actors;
pub mod futures;
pub mod mpi;
pub mod verified;

pub use actors::{bank_actor, lift_actor, ActorClass, ActorRuntime};
pub use futures::{promises_program, Kickoff};
pub use mpi::{allgather_schedule, allreduce_schedule, alltoall_schedule, bcast_schedule, collectives_program, reduce_schedule, Topology};
pub use verified::{lift_loop, Summary, VerifiedLift};
