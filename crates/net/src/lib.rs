//! # hydro-net
//!
//! A deterministic discrete-event cluster simulator: the stand-in for the
//! public cloud that the paper's availability (§6) and consistency (§7)
//! facets deploy onto.
//!
//! Why simulate? The paper's claims are about *message orderings* and
//! *failure independence* — properties of the distributed execution, not of
//! EC2. A seeded, single-threaded event queue reproduces exactly those
//! phenomena (asynchronous delay, reordering, loss, partitions, correlated
//! vs. independent failures across VM/rack/DC/AZ domains) while keeping
//! every experiment bit-for-bit reproducible. See DESIGN.md's substitution
//! table.
//!
//! The model: nodes hold a [`NodeLogic`] state machine; messages carry a
//! user payload type `M`; link latency is `base + hierarchy penalty +
//! jitter` where the penalty grows as endpoints share fewer levels of the
//! failure-domain hierarchy ([`DomainPath`]); messages can be dropped with
//! a configured probability, and node pairs can be partitioned. Time is
//! microseconds on a virtual clock.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a simulated node.
pub type NodeId = usize;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// The source id used for client-injected (external) messages.
pub const EXTERNAL: NodeId = usize::MAX;

/// Position in the failure-domain hierarchy (§6: "VMs, racks, data centers,
/// or availability zones"). Two nodes' failures are *independent* at a
/// domain level iff they differ at that level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DomainPath {
    /// Availability zone index.
    pub az: u32,
    /// Rack within the AZ.
    pub rack: u32,
    /// VM within the rack.
    pub vm: u32,
}

impl DomainPath {
    /// Construct a placement.
    pub fn new(az: u32, rack: u32, vm: u32) -> Self {
        DomainPath { az, rack, vm }
    }

    /// Whether two placements are in different domains at the AZ level.
    pub fn az_independent(&self, other: &Self) -> bool {
        self.az != other.az
    }
}

/// Behavior of a node: a deterministic state machine driven by messages and
/// timers. All outputs flow through the [`Ctx`] so the simulator controls
/// delivery.
pub trait NodeLogic<M> {
    /// Handle an inbound message.
    fn on_message(&mut self, ctx: &mut Ctx<M>, src: NodeId, msg: M);

    /// Handle a timer previously set with [`Ctx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut Ctx<M>, _timer: u64) {}
}

/// Per-activation context handed to [`NodeLogic`]: collects sends and timer
/// requests, and exposes the virtual clock.
pub struct Ctx<M> {
    /// This node's id.
    pub self_id: NodeId,
    /// Current virtual time (µs).
    pub now: SimTime,
    sends: Vec<(NodeId, M)>,
    timers: Vec<(SimTime, u64)>,
}

impl<M> Ctx<M> {
    /// Send `msg` to `dst` (delivery time decided by the simulator).
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.sends.push((dst, msg));
    }

    /// Request `on_timer(timer_id)` after `delay_us` of virtual time.
    pub fn set_timer(&mut self, delay_us: SimTime, timer_id: u64) {
        self.timers.push((delay_us, timer_id));
    }
}

/// Latency / loss model.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Latency floor for same-VM delivery (µs).
    pub base_us: SimTime,
    /// Extra per level of the domain hierarchy not shared: applied once if
    /// racks differ, twice if AZs differ (µs).
    pub hierarchy_penalty_us: SimTime,
    /// Uniform jitter added on top: `[0, jitter_us]` (µs).
    pub jitter_us: SimTime,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            base_us: 100,
            hierarchy_penalty_us: 400,
            jitter_us: 50,
            drop_prob: 0.0,
        }
    }
}

/// Delivery statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Messages submitted for delivery.
    pub sent: u64,
    /// Messages delivered to live nodes.
    pub delivered: u64,
    /// Messages dropped for any reason (always the sum of the three
    /// per-cause counters below).
    pub dropped: u64,
    /// Dropped by random link loss ([`LinkModel::drop_prob`]).
    pub dropped_by_loss: u64,
    /// Dropped because the endpoints were partitioned — at send time or,
    /// for in-flight messages crossing a cut, at delivery time.
    pub dropped_by_partition: u64,
    /// Dropped because the destination node was dead at delivery time.
    pub dropped_by_dead: u64,
    /// Timer events fired.
    pub timers_fired: u64,
}

enum Event<M> {
    Deliver { src: NodeId, dst: NodeId, msg: M },
    Timer { node: NodeId, timer: u64 },
}

struct NodeSlot<M> {
    logic: Box<dyn NodeLogic<M>>,
    domain: DomainPath,
    alive: bool,
}

/// The discrete-event simulator.
pub struct Sim<M> {
    nodes: Vec<NodeSlot<M>>,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    /// Payload storage parallel to queue entries (events are not `Ord`).
    events: Vec<Option<Event<M>>>,
    link: LinkModel,
    rng: StdRng,
    now: SimTime,
    seq: u64,
    partitions: FxHashSet<(NodeId, NodeId)>,
    stats: NetStats,
}

impl<M: 'static> Sim<M> {
    /// A simulator with the given link model and RNG seed. Identical seeds
    /// and inputs yield identical executions.
    pub fn new(link: LinkModel, seed: u64) -> Self {
        Sim {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            events: Vec::new(),
            link,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            seq: 0,
            partitions: FxHashSet::default(),
            stats: NetStats::default(),
        }
    }

    /// Add a node at a placement; returns its id.
    pub fn add_node(&mut self, logic: impl NodeLogic<M> + 'static, domain: DomainPath) -> NodeId {
        self.nodes.push(NodeSlot {
            logic: Box::new(logic),
            domain,
            alive: true,
        });
        self.nodes.len() - 1
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// A node's placement.
    pub fn domain_of(&self, node: NodeId) -> DomainPath {
        self.nodes[node].domain
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node].alive
    }

    /// Crash a node: pending and future deliveries to it are dropped.
    pub fn kill(&mut self, node: NodeId) {
        self.nodes[node].alive = false;
    }

    /// Restart a node (state is whatever its logic retained — model a
    /// recovery protocol in the logic itself if needed).
    pub fn revive(&mut self, node: NodeId) {
        self.nodes[node].alive = true;
    }

    /// Kill every node whose placement lies in the given AZ — a correlated
    /// failure of one availability zone.
    pub fn kill_az(&mut self, az: u32) {
        for n in 0..self.nodes.len() {
            if self.nodes[n].domain.az == az {
                self.nodes[n].alive = false;
            }
        }
    }

    /// Partition two groups: messages between them are dropped until
    /// [`Sim::heal`].
    ///
    /// **Cut semantics.** The cut is checked at *both* send and delivery
    /// time: a message crosses only if the link is open at both moments.
    /// In particular, a message already in flight when the partition
    /// lands is **dropped** (a cut severs the wire; packets in transit
    /// are lost, not parked), and symmetrically a message sent during
    /// the partition stays dropped even if [`Sim::heal`] runs before its
    /// would-be delivery time. Both cases count as
    /// [`NetStats::dropped_by_partition`]. Recovery protocols must
    /// therefore tolerate the loss of messages sent *near* the cut, not
    /// just during it — which is what retry/retransmission layers are
    /// for.
    pub fn partition(&mut self, a: &[NodeId], b: &[NodeId]) {
        for &x in a {
            for &y in b {
                self.partitions.insert((x, y));
                self.partitions.insert((y, x));
            }
        }
    }

    /// Remove all partitions.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// Inject a message from "outside" (a client) into a node, delivered
    /// with normal link latency from a nominal external location.
    pub fn send_external(&mut self, dst: NodeId, msg: M) {
        let latency = self.link.base_us + self.rng.gen_range(0..=self.link.jitter_us);
        self.schedule_deliver(EXTERNAL, dst, msg, latency);
    }

    /// Inject a client message scheduled to *arrive* at an absolute
    /// virtual time — the open-loop injection primitive: an arrival
    /// process (e.g. Poisson) can pre-compute its whole schedule and
    /// stamp each request onto the clock without a feedback loop through
    /// delivery latency. If `at` is already in the past the message
    /// arrives now. No jitter is applied; the caller owns the schedule.
    pub fn send_external_at(&mut self, dst: NodeId, msg: M, at: SimTime) {
        let latency = at.saturating_sub(self.now);
        self.schedule_deliver(EXTERNAL, dst, msg, latency);
    }

    /// Route a message between nodes, applying loss, partitions and
    /// latency. Internal API used by node activations; exposed for drivers
    /// that orchestrate protocols externally.
    pub fn send_internal(&mut self, src: NodeId, dst: NodeId, msg: M) {
        self.stats.sent += 1;
        if self.partitions.contains(&(src, dst)) {
            self.stats.dropped += 1;
            self.stats.dropped_by_partition += 1;
            return;
        }
        if self.link.drop_prob > 0.0 && self.rng.gen_bool(self.link.drop_prob) {
            self.stats.dropped += 1;
            self.stats.dropped_by_loss += 1;
            return;
        }
        let latency = self.latency_between(src, dst);
        self.schedule_deliver(src, dst, msg, latency);
    }

    fn latency_between(&mut self, src: NodeId, dst: NodeId) -> SimTime {
        let (a, b) = if src == EXTERNAL {
            (self.nodes[dst].domain, self.nodes[dst].domain)
        } else {
            (self.nodes[src].domain, self.nodes[dst].domain)
        };
        let hops = if a.az != b.az {
            2
        } else if a.rack != b.rack {
            1
        } else {
            0
        };
        self.link.base_us
            + hops * self.link.hierarchy_penalty_us
            + self.rng.gen_range(0..=self.link.jitter_us)
    }

    fn schedule_deliver(&mut self, src: NodeId, dst: NodeId, msg: M, latency: SimTime) {
        let slot = self.events.len();
        self.events.push(Some(Event::Deliver { src, dst, msg }));
        self.seq += 1;
        self.queue.push(Reverse((self.now + latency, self.seq, slot)));
    }

    fn schedule_timer(&mut self, node: NodeId, timer: u64, delay: SimTime) {
        let slot = self.events.len();
        self.events.push(Some(Event::Timer { node, timer }));
        self.seq += 1;
        self.queue.push(Reverse((self.now + delay, self.seq, slot)));
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((time, _, slot))) = self.queue.pop() else {
            return false;
        };
        self.now = time;
        let event = self.events[slot].take().expect("event taken once");
        match event {
            Event::Deliver { src, dst, msg } => {
                // In-flight messages crossing a cut are lost (see
                // [`Sim::partition`] for the full cut semantics).
                if self.partitions.contains(&(src, dst)) {
                    self.stats.dropped += 1;
                    self.stats.dropped_by_partition += 1;
                    return true;
                }
                if !self.nodes[dst].alive {
                    self.stats.dropped += 1;
                    self.stats.dropped_by_dead += 1;
                    return true;
                }
                self.stats.delivered += 1;
                let mut ctx = Ctx {
                    self_id: dst,
                    now: self.now,
                    sends: Vec::new(),
                    timers: Vec::new(),
                };
                self.nodes[dst].logic.on_message(&mut ctx, src, msg);
                self.flush_ctx(dst, ctx);
            }
            Event::Timer { node, timer } => {
                if !self.nodes[node].alive {
                    return true;
                }
                self.stats.timers_fired += 1;
                let mut ctx = Ctx {
                    self_id: node,
                    now: self.now,
                    sends: Vec::new(),
                    timers: Vec::new(),
                };
                self.nodes[node].logic.on_timer(&mut ctx, timer);
                self.flush_ctx(node, ctx);
            }
        }
        true
    }

    fn flush_ctx(&mut self, node: NodeId, ctx: Ctx<M>) {
        for (dst, msg) in ctx.sends {
            self.send_internal(node, dst, msg);
        }
        for (delay, timer) in ctx.timers {
            self.schedule_timer(node, timer, delay);
        }
    }

    /// Run until the queue drains or `max_events` is hit; returns events
    /// processed.
    pub fn run_to_quiescence(&mut self, max_events: usize) -> usize {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Run until virtual time passes `deadline` (or the queue drains).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse((t, _, _))) = self.queue.peek() {
            if *t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Mutable access to a node's logic (typed accessors are provided by
    /// `hydro-deploy`'s wrappers).
    pub fn node_logic_mut(&mut self, node: NodeId) -> &mut dyn NodeLogic<M> {
        self.nodes[node].logic.as_mut()
    }

    /// Borrow a node's logic.
    pub fn node_logic(&self, node: NodeId) -> &dyn NodeLogic<M> {
        self.nodes[node].logic.as_ref()
    }

    /// Set a timer on a node from outside (bootstrap tick loops).
    pub fn start_timer(&mut self, node: NodeId, timer: u64, delay: SimTime) {
        self.schedule_timer(node, timer, delay);
    }
}

/// One scheduled fault-injection action (see [`FaultSchedule`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash a node ([`Sim::kill`]).
    Kill(NodeId),
    /// Restart a node; its logic keeps whatever state it retained
    /// ([`Sim::revive`]).
    Revive(NodeId),
    /// Cut one node off from every other node, both directions — the
    /// partition shape of an unreachable-but-running machine.
    Isolate(NodeId),
    /// Partition two explicit groups ([`Sim::partition`]).
    Partition(Vec<NodeId>, Vec<NodeId>),
    /// Remove every cut ([`Sim::heal`]).
    Heal,
}

/// A time-ordered schedule of fault actions against a [`Sim`] — the
/// deterministic fault-injection campaign driver. Build one from explicit
/// `(virtual time, action)` pairs (typically derived from a seed by the
/// campaign harness), then either call [`FaultSchedule::apply_due`]
/// inside your own event loop or hand the whole run to
/// [`run_with_faults`]. The same schedule over the same seeded simulator
/// replays bit-identically.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<(SimTime, FaultAction)>,
    next: usize,
}

impl FaultSchedule {
    /// A schedule from `(time, action)` pairs; sorted by time, ties keep
    /// their given order.
    pub fn new(mut events: Vec<(SimTime, FaultAction)>) -> Self {
        events.sort_by_key(|(t, _)| *t);
        FaultSchedule { events, next: 0 }
    }

    /// The scheduled events, in application order.
    pub fn events(&self) -> &[(SimTime, FaultAction)] {
        &self.events
    }

    /// Virtual time of the next unapplied action, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|(t, _)| *t)
    }

    /// Whether every action has been applied.
    pub fn is_done(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Apply every action due at or before `sim.now()`; returns how many
    /// were applied.
    pub fn apply_due<M: 'static>(&mut self, sim: &mut Sim<M>) -> usize {
        let mut applied = 0;
        while let Some((t, action)) = self.events.get(self.next) {
            if *t > sim.now() {
                break;
            }
            match action {
                FaultAction::Kill(n) => sim.kill(*n),
                FaultAction::Revive(n) => sim.revive(*n),
                FaultAction::Isolate(n) => {
                    let others: Vec<NodeId> =
                        (0..sim.node_count()).filter(|m| m != n).collect();
                    sim.partition(&[*n], &others);
                }
                FaultAction::Partition(a, b) => sim.partition(a, b),
                FaultAction::Heal => sim.heal(),
            }
            self.next += 1;
            applied += 1;
        }
        applied
    }
}

/// Drive `sim` until `deadline`, injecting `faults` at their scheduled
/// virtual times: the simulator runs up to each fault's timestamp, the
/// fault lands, and the run continues — so a kill scheduled mid-flight
/// interleaves with deliveries exactly as the timestamps dictate.
pub fn run_with_faults<M: 'static>(
    sim: &mut Sim<M>,
    faults: &mut FaultSchedule,
    deadline: SimTime,
) {
    while let Some(t) = faults.next_at() {
        if t > deadline {
            break;
        }
        sim.run_until(t);
        faults.apply_due(sim);
    }
    sim.run_until(deadline);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Echoes every message back to its sender and logs arrivals.
    struct Echo {
        log: Rc<RefCell<Vec<(SimTime, NodeId, u32)>>>,
    }

    impl NodeLogic<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<u32>, src: NodeId, msg: u32) {
            self.log.borrow_mut().push((ctx.now, ctx.self_id, msg));
            if src != EXTERNAL && msg < 3 {
                ctx.send(src, msg + 1);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<u32>, timer: u64) {
            self.log
                .borrow_mut()
                .push((ctx.now, ctx.self_id, timer as u32 + 100));
        }
    }

    type EchoLog = Rc<RefCell<Vec<(SimTime, NodeId, u32)>>>;

    fn two_nodes(seed: u64, link: LinkModel) -> (Sim<u32>, EchoLog) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(link, seed);
        sim.add_node(Echo { log: log.clone() }, DomainPath::new(0, 0, 0));
        sim.add_node(Echo { log: log.clone() }, DomainPath::new(0, 0, 1));
        (sim, log)
    }

    #[test]
    fn messages_chain_between_nodes() {
        // Seed chosen so the external message's jitter draw lands before
        // the internal one's under the vendored PRNG stream (the assert
        // below pins arrival order, which depends on those two draws).
        let (mut sim, log) = two_nodes(8, LinkModel::default());
        // External 0 arrives at node 0 (no echo for external); then an
        // internal 1 sent 0→1 echoes up to 3.
        sim.send_external(0, 5);
        sim.send_internal(0, 1, 1);
        sim.run_to_quiescence(100);
        let msgs: Vec<u32> = log.borrow().iter().map(|e| e.2).collect();
        assert_eq!(msgs, vec![5, 1, 2, 3]);
    }

    #[test]
    fn identical_seeds_identical_schedules() {
        let run = |seed| {
            let (mut sim, log) = two_nodes(seed, LinkModel::default());
            sim.send_internal(0, 1, 1);
            sim.run_to_quiescence(100);
            let v = log.borrow().clone();
            v
        };
        assert_eq!(run(42), run(42));
        // Different seeds shift jitter (times may differ, content equal).
        let a = run(1);
        let b = run(2);
        assert_eq!(
            a.iter().map(|e| e.2).collect::<Vec<_>>(),
            b.iter().map(|e| e.2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_az_costs_more_than_same_rack() {
        let link = LinkModel {
            jitter_us: 0,
            ..LinkModel::default()
        };
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(link, 1);
        let a = sim.add_node(Echo { log: log.clone() }, DomainPath::new(0, 0, 0));
        let same_rack = sim.add_node(Echo { log: log.clone() }, DomainPath::new(0, 0, 1));
        let other_az = sim.add_node(Echo { log: log.clone() }, DomainPath::new(1, 0, 0));

        sim.send_internal(a, same_rack, 9);
        let t0 = sim.now();
        sim.run_to_quiescence(10);
        let t_same = sim.now() - t0;

        let t1 = sim.now();
        sim.send_internal(a, other_az, 9);
        sim.run_to_quiescence(10);
        let t_cross = sim.now() - t1;
        assert!(t_cross > t_same, "cross-AZ {t_cross} ≤ same-rack {t_same}");
    }

    #[test]
    fn partitions_block_and_heal_restores() {
        let (mut sim, log) = two_nodes(3, LinkModel::default());
        sim.partition(&[0], &[1]);
        sim.send_internal(0, 1, 9);
        sim.run_to_quiescence(10);
        assert!(log.borrow().is_empty());
        assert_eq!(sim.stats().dropped, 1);
        sim.heal();
        sim.send_internal(0, 1, 9);
        sim.run_to_quiescence(10);
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn partition_drops_in_flight_messages_crossing_the_cut() {
        // The message is in flight when the cut lands: delivery-time
        // check drops it, counted as a partition drop.
        let (mut sim, log) = two_nodes(3, LinkModel::default());
        sim.send_internal(0, 1, 9);
        sim.partition(&[0], &[1]);
        sim.run_to_quiescence(10);
        assert!(log.borrow().is_empty());
        assert_eq!(sim.stats().dropped_by_partition, 1);
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn heal_before_delivery_restores_in_flight_messages() {
        // Cut and heal both happen while the message is in flight: the
        // link is open at send and at delivery, so it goes through.
        let (mut sim, log) = two_nodes(3, LinkModel::default());
        sim.send_internal(0, 1, 9);
        sim.partition(&[0], &[1]);
        sim.heal();
        sim.run_to_quiescence(10);
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.stats().dropped, 0);
    }

    #[test]
    fn drop_causes_are_counted_separately() {
        let (mut sim, _log) = two_nodes(3, LinkModel::default());
        sim.partition(&[0], &[1]);
        sim.send_internal(0, 1, 9); // partition drop (send-time)
        sim.heal();
        sim.kill(1);
        sim.send_internal(0, 1, 9); // dead-destination drop
        sim.run_to_quiescence(10);
        let s = sim.stats();
        assert_eq!(s.dropped_by_partition, 1);
        assert_eq!(s.dropped_by_dead, 1);
        assert_eq!(s.dropped_by_loss, 0);
        assert_eq!(s.dropped, 2);
    }

    #[test]
    fn fault_schedule_applies_actions_at_their_times() {
        let (mut sim, log) = two_nodes(3, LinkModel::default());
        // Node 1 dies at t=10_000 and revives at t=30_000; messages sent
        // while it is down are lost, later ones arrive.
        let mut faults = FaultSchedule::new(vec![
            (30_000, FaultAction::Revive(1)),
            (10_000, FaultAction::Kill(1)),
        ]);
        assert_eq!(faults.next_at(), Some(10_000)); // sorted by time
        sim.send_internal(0, 1, 9); // delivered before the kill
        run_with_faults(&mut sim, &mut faults, 20_000);
        assert!(!sim.is_alive(1));
        sim.send_internal(0, 1, 9); // dropped: node 1 is down
        run_with_faults(&mut sim, &mut faults, 40_000);
        assert!(faults.is_done());
        assert!(sim.is_alive(1));
        sim.send_internal(0, 1, 9); // delivered after revive
        sim.run_to_quiescence(10);
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(sim.stats().dropped_by_dead, 1);
    }

    #[test]
    fn isolate_cuts_a_node_off_and_heal_restores() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(LinkModel::default(), 7);
        for vm in 0..3 {
            sim.add_node(Echo { log: log.clone() }, DomainPath::new(0, 0, vm));
        }
        let mut faults = FaultSchedule::new(vec![
            (0, FaultAction::Isolate(1)),
            (50_000, FaultAction::Heal),
        ]);
        faults.apply_due(&mut sim);
        sim.send_internal(0, 1, 9); // into the isolated node: dropped
        sim.send_internal(0, 2, 9); // unaffected pair: delivered
        sim.run_until(40_000);
        assert_eq!(log.borrow().len(), 1);
        run_with_faults(&mut sim, &mut faults, 60_000);
        sim.send_internal(0, 1, 9);
        sim.run_to_quiescence(10);
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(sim.stats().dropped_by_partition, 1);
    }

    #[test]
    fn dead_nodes_drop_messages() {
        let (mut sim, log) = two_nodes(3, LinkModel::default());
        sim.kill(1);
        sim.send_internal(0, 1, 9);
        sim.run_to_quiescence(10);
        assert!(log.borrow().is_empty());
        assert!(!sim.is_alive(1));
        sim.revive(1);
        sim.send_internal(0, 1, 5);
        sim.run_to_quiescence(10);
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn kill_az_is_correlated_failure() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(LinkModel::default(), 5);
        let n0 = sim.add_node(Echo { log: log.clone() }, DomainPath::new(0, 0, 0));
        let n1 = sim.add_node(Echo { log: log.clone() }, DomainPath::new(0, 1, 0));
        let n2 = sim.add_node(Echo { log: log.clone() }, DomainPath::new(1, 0, 0));
        sim.kill_az(0);
        assert!(!sim.is_alive(n0) && !sim.is_alive(n1));
        assert!(sim.is_alive(n2));
    }

    #[test]
    fn timers_fire_in_order() {
        let (mut sim, log) = two_nodes(3, LinkModel::default());
        sim.start_timer(0, 2, 500);
        sim.start_timer(0, 1, 100);
        sim.run_to_quiescence(10);
        let events: Vec<u32> = log.borrow().iter().map(|e| e.2).collect();
        assert_eq!(events, vec![101, 102]);
    }

    #[test]
    fn lossy_links_drop_statistically() {
        let link = LinkModel {
            drop_prob: 0.5,
            ..LinkModel::default()
        };
        let (mut sim, _log) = two_nodes(11, link);
        for _ in 0..200 {
            sim.send_internal(0, 1, 9);
        }
        sim.run_to_quiescence(500);
        let s = sim.stats();
        assert!(s.dropped > 50 && s.dropped < 150, "dropped={}", s.dropped);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, log) = two_nodes(3, LinkModel::default());
        sim.start_timer(0, 1, 1_000);
        sim.start_timer(0, 2, 1_000_000);
        sim.run_until(10_000);
        assert_eq!(log.borrow().len(), 1);
        assert!(sim.now() >= 10_000);
    }
}
