//! Tokens and the indentation-aware lexer for textual HydroLogic.
//!
//! The surface syntax is the "Pythonic HydroLogic" of Figure 3: statements
//! are line-oriented, blocks are introduced by `:` and delimited by
//! indentation. The lexer therefore produces synthetic [`Tok::Newline`],
//! [`Tok::Indent`] and [`Tok::Dedent`] tokens, exactly as a Python lexer
//! does, with two standard refinements:
//!
//! * blank lines and `#`-comment-only lines produce no tokens at all;
//! * inside parentheses, brackets or braces, line breaks are insignificant,
//!   so declarations may wrap (Fig. 3 wraps its `class Person` decl).

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser so
    /// that facet names like `target` stay usable as identifiers).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal, kept as (whole, thousandths) so `0.01 units` can be
    /// converted exactly to milli-units without floats.
    Decimal(i64, u32),
    /// String literal (double-quoted, `\"`/`\\`/`\n`/`\t` escapes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `:=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of a logical line.
    Newline,
    /// Increase of indentation after a `:`-terminated line.
    Indent,
    /// Return to an enclosing indentation level.
    Dedent,
    /// End of input (after closing any open blocks).
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Decimal(w, m) => write!(f, "`{w}.{m:03}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Newline => write!(f, "end of line"),
            Tok::Indent => write!(f, "indent"),
            Tok::Dedent => write!(f, "dedent"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A lexing failure with its position.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a HydroLogic source text.
///
/// Tabs are rejected in leading whitespace (mixed tab/space indentation is
/// a classic source of silent scoping bugs); elsewhere they are ordinary
/// whitespace.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    /// Open bracket depth: newlines are insignificant while positive.
    depth: u32,
    /// Stack of enclosing indentation widths; always starts with 0.
    indents: Vec<u32>,
    out: Vec<Spanned>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            depth: 0,
            indents: vec![0],
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn push(&mut self, tok: Tok, line: u32, col: u32) {
        self.out.push(Spanned { tok, line, col });
    }

    /// Measure the indentation of the upcoming line and emit
    /// Indent/Dedent tokens. Returns false when the line is blank or a
    /// comment (no tokens emitted, line consumed).
    fn handle_line_start(&mut self) -> Result<bool, LexError> {
        let mut width = 0u32;
        loop {
            match self.peek() {
                Some(' ') => {
                    width += 1;
                    self.bump();
                }
                Some('\t') => return Err(self.err("tab in indentation; use spaces")),
                _ => break,
            }
        }
        match self.peek() {
            None => return Ok(false),
            Some('\n') => {
                self.bump();
                return Ok(false);
            }
            Some('#') => {
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == '\n' {
                        break;
                    }
                }
                return Ok(false);
            }
            _ => {}
        }
        let (line, col) = (self.line, self.col);
        let current = *self.indents.last().expect("indent stack non-empty");
        if width > current {
            self.indents.push(width);
            self.push(Tok::Indent, line, col);
        } else if width < current {
            while *self.indents.last().expect("indent stack non-empty") > width {
                self.indents.pop();
                self.push(Tok::Dedent, line, col);
            }
            if *self.indents.last().expect("indent stack non-empty") != width {
                return Err(self.err("dedent does not match any enclosing indentation level"));
            }
        }
        Ok(true)
    }

    fn run(mut self) -> Result<Vec<Spanned>, LexError> {
        let mut at_line_start = true;
        loop {
            if at_line_start && self.depth == 0 {
                if self.pos >= self.chars.len() {
                    break;
                }
                if !self.handle_line_start()? {
                    continue;
                }
                at_line_start = false;
            }
            let Some(c) = self.peek() else { break };
            let (line, col) = (self.line, self.col);
            match c {
                ' ' | '\t' => {
                    self.bump();
                }
                '\n' => {
                    self.bump();
                    if self.depth == 0 {
                        self.push(Tok::Newline, line, col);
                        at_line_start = true;
                    }
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '"' => self.string(line, col)?,
                '0'..='9' => self.number(line, col)?,
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(line, col),
                '(' => self.open(Tok::LParen, line, col),
                '[' => self.open(Tok::LBracket, line, col),
                '{' => self.open(Tok::LBrace, line, col),
                ')' => self.close(Tok::RParen, line, col)?,
                ']' => self.close(Tok::RBracket, line, col)?,
                '}' => self.close(Tok::RBrace, line, col)?,
                ',' => self.single(Tok::Comma, line, col),
                ';' => self.single(Tok::Semi, line, col),
                '.' => self.single(Tok::Dot, line, col),
                '+' => self.single(Tok::Plus, line, col),
                '-' => self.single(Tok::Minus, line, col),
                '*' => self.single(Tok::Star, line, col),
                '/' => self.single(Tok::Slash, line, col),
                '%' => self.single(Tok::Percent, line, col),
                ':' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Assign, line, col);
                    } else {
                        self.push(Tok::Colon, line, col);
                    }
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::EqEq, line, col);
                    } else {
                        self.push(Tok::Eq, line, col);
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Ne, line, col);
                    } else {
                        return Err(self.err("expected `!=`"));
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Le, line, col);
                    } else {
                        self.push(Tok::Lt, line, col);
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(Tok::Ge, line, col);
                    } else {
                        self.push(Tok::Gt, line, col);
                    }
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            }
        }
        // Close any trailing logical line and open blocks.
        if self.out.last().is_some_and(|s| s.tok != Tok::Newline) {
            self.push(Tok::Newline, self.line, self.col);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(Tok::Dedent, self.line, self.col);
        }
        self.push(Tok::Eof, self.line, self.col);
        Ok(self.out)
    }

    fn single(&mut self, tok: Tok, line: u32, col: u32) {
        self.bump();
        self.push(tok, line, col);
    }

    fn open(&mut self, tok: Tok, line: u32, col: u32) {
        self.depth += 1;
        self.single(tok, line, col);
    }

    fn close(&mut self, tok: Tok, line: u32, col: u32) -> Result<(), LexError> {
        if self.depth == 0 {
            return Err(self.err(format!("unmatched {tok}")));
        }
        self.depth -= 1;
        self.single(tok, line, col);
        Ok(())
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut s = String::new();
        loop {
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // `::` joins module-qualified segments into a single identifier
            // (`inventory::vaccinate`), provided another segment follows —
            // a lone colon stays a block/kind separator.
            if self.peek() == Some(':')
                && self.peek2() == Some(':')
                && self
                    .chars
                    .get(self.pos + 2)
                    .is_some_and(|c| c.is_ascii_alphabetic() || *c == '_')
            {
                s.push_str("::");
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(s), line, col);
    }

    fn number(&mut self, line: u32, col: u32) -> Result<(), LexError> {
        let mut whole: i64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                whole = whole
                    .checked_mul(10)
                    .and_then(|w| w.checked_add(d as i64))
                    .ok_or_else(|| self.err("integer literal overflows i64"))?;
                self.bump();
            } else {
                break;
            }
        }
        // A decimal literal: consumed only when a digit follows the dot,
        // so `people[0].field` still lexes as Int, Dot, Ident.
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump(); // the dot
            let mut frac = 0u32;
            let mut digits = 0u32;
            while let Some(c) = self.peek() {
                if let Some(d) = c.to_digit(10) {
                    if digits >= 3 {
                        return Err(self.err("at most 3 decimal places supported (milli-units)"));
                    }
                    frac = frac * 10 + d;
                    digits += 1;
                    self.bump();
                } else {
                    break;
                }
            }
            for _ in digits..3 {
                frac *= 10;
            }
            self.push(Tok::Decimal(whole, frac), line, col);
        } else {
            self.push(Tok::Int(whole), line, col);
        }
        Ok(())
    }

    fn string(&mut self, line: u32, col: u32) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return Err(self.err("unterminated string literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    other => {
                        return Err(self.err(format!("unknown escape {other:?} in string")))
                    }
                },
                Some(c) => s.push(c),
            }
        }
        self.push(Tok::Str(s), line, col);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_simple_line() {
        assert_eq!(
            toks("var x = 3\n"),
            vec![
                Tok::Ident("var".into()),
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Int(3),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn indentation_produces_blocks() {
        let t = toks("on f(x):\n  return x\n");
        assert!(t.contains(&Tok::Indent));
        assert!(t.contains(&Tok::Dedent));
        let ix = t.iter().position(|t| *t == Tok::Indent).unwrap();
        assert_eq!(t[ix - 1], Tok::Newline, "indent follows the header newline");
    }

    #[test]
    fn blank_and_comment_lines_are_invisible() {
        let a = toks("on f(x):\n  return x\n");
        let b = toks("on f(x):\n\n  # comment\n  return x\n\n# trailing\n");
        assert_eq!(a, b);
    }

    #[test]
    fn brackets_suppress_newlines() {
        let t = toks("table t(a,\n        b)\n");
        let newlines = t.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1, "only the final newline is significant");
    }

    #[test]
    fn nested_dedents_unwind_fully() {
        let t = toks("a:\n  b:\n    c\n");
        let dedents = t.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn assign_vs_colon() {
        assert_eq!(
            toks("x := 1\n")[1],
            Tok::Assign,
            ":= lexes as a single token"
        );
        assert_eq!(toks("x : int\n")[1], Tok::Colon);
    }

    #[test]
    fn decimal_literals_are_milli_exact() {
        assert_eq!(toks("0.01\n")[0], Tok::Decimal(0, 10));
        assert_eq!(toks("1.5\n")[0], Tok::Decimal(1, 500));
        assert_eq!(toks("2.125\n")[0], Tok::Decimal(2, 125));
    }

    #[test]
    fn dot_after_int_is_projection_not_decimal() {
        // `x[0].f` — the dot must not glue onto the 0.
        let t = toks("x[0].f\n");
        assert!(t.contains(&Tok::Dot));
        assert!(t.contains(&Tok::Int(0)));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks("\"a\\\"b\\n\"\n")[0], Tok::Str("a\"b\n".into()));
    }

    #[test]
    fn tab_indent_rejected() {
        let e = lex("on f(x):\n\treturn x\n").unwrap_err();
        assert!(e.message.contains("tab"));
    }

    #[test]
    fn bad_dedent_rejected() {
        let e = lex("a:\n    b\n  c\n").unwrap_err();
        assert!(e.message.contains("dedent"));
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(lex("\"abc\n").is_err());
    }

    #[test]
    fn positions_are_one_based() {
        let s = lex("var x\n").unwrap();
        assert_eq!((s[0].line, s[0].col), (1, 1));
        assert_eq!((s[1].line, s[1].col), (1, 5));
    }

    #[test]
    fn missing_final_newline_is_tolerated() {
        assert_eq!(toks("var x = 1"), toks("var x = 1\n"));
    }

    #[test]
    fn bang_requires_equals() {
        assert!(lex("x ! y\n").is_err());
    }
}
