//! Recursive-descent parser for textual HydroLogic.
//!
//! The grammar is the "Pythonic HydroLogic" of Figure 3, line-oriented with
//! indentation blocks (see [`crate::token`] for the lexical layer):
//!
//! ```text
//! program      := { decl }
//! decl         := table | var | mailbox | import | query | handler | module
//!               | availability-block | consistency-block | target-block
//! module       := "module" NAME ":" INDENT { decl } DEDENT
//!                 — purely syntactic sugar (§3.1): erased by qualifying
//!                 every declared name with "NAME::" (see crate::modules)
//! table        := "table" NAME "(" col ("," col)* ("," "key" "=" keyspec)?
//!                  ("," "partition" "=" NAME)? ")"
//! col          := NAME (":" kind)?
//! kind         := "atom" | "set" | "flag" | "max" | "min" | "lww"
//!               | "counter" | "map" "(" kind ")"
//! var          := "var" NAME (":" kind)? ("=" literal)?
//! mailbox      := "mailbox" NAME "(" NAME ("," NAME)* ")"
//! import       := "import" NAME ("," NAME)*
//! query        := "query" NAME "(" exprs? ")" ("=" AGG "(" expr ")")? ":" atoms-block
//! atom         := "for" NAME "in" expr          — flatten
//!               | "for" REL "(" terms ")"       — scan
//!               | "if" expr                     — guard
//!               | "let" NAME "=" expr           — binding
//!               | "not" REL "(" exprs ")"       — stratified negation
//! handler      := "on" NAME "(" params? ")" ("with" level ("require" inv ("," inv)*)?)? ":" stmts
//!               | "on" NAME "when" expr ":" stmts
//! stmt         := "insert" TABLE "(" exprs ")"
//!               | "delete" TABLE "[" expr "]"
//!               | "send" MAILBOX ( "(" exprs ")" | comprehension )
//!               | "return" expr | "clear" MAILBOX
//!               | "if" expr ":" stmts ("else" ":" stmts)?
//!               | "for" atom ("," atom)* ":" stmts
//!               | lvalue ".merge(" expr ")" | lvalue ":=" expr
//! ```
//!
//! Expressions use conventional precedence (`or` < `and` < `not` <
//! comparison/`in` < `+ -` < `* / %` < unary minus < postfix). Postfix
//! forms are table-aware: `people[pid]` is a row reference when `people`
//! is a declared table and a tuple projection (`e[0]`) otherwise.
//!
//! Identifier resolution (bound variable vs. scalar read) and arity/shape
//! checking run as a separate pass in [`crate::resolve`].

use crate::token::{lex, LexError, Spanned, Tok};
use hydro_core::ast::{
    AggFun, AggRule, BodyAtom, Column, ColumnKind, Expr, Handler, MailboxDecl, Program, Rule,
    ScalarDecl, Select, Stmt, TableDecl, Term, Trigger,
};
use hydro_core::facets::{
    AvailReq, ConsistencyLevel, ConsistencyReq, FailureDomain, Invariant, Processor, TargetReq,
};
use hydro_core::value::{LatticeKind, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A parse failure with its position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse a HydroLogic source text into an (unresolved) [`Program`].
///
/// Prefer [`crate::parse_program`], which also runs the resolution pass.
pub fn parse_unresolved(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    Parser::new(toks).program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    program: Program,
    /// Declared table names, for `table[key]` disambiguation.
    tables: BTreeSet<String>,
    /// Imported UDF names, for call-expression checking.
    udfs: BTreeSet<String>,
}

impl Parser {
    fn new(toks: Vec<Spanned>) -> Self {
        Parser {
            toks,
            pos: 0,
            program: Program::default(),
            tables: BTreeSet::new(),
            udfs: BTreeSet::new(),
        }
    }

    // ------------------------------------------------------- token plumbing

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.toks[self.pos.min(self.toks.len() - 1)];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    /// Is the current token the given (contextual) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(_) => match self.bump() {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!("peeked Ident"),
            },
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn newline(&mut self) -> Result<(), ParseError> {
        self.expect(&Tok::Newline)
    }

    // ----------------------------------------------------------- top level

    fn program(mut self) -> Result<Program, ParseError> {
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Newline => {
                    self.bump();
                }
                _ => self.decl()?,
            }
        }
        Ok(self.program)
    }

    /// Dispatch one top-level (or module-local) declaration.
    fn decl(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(kw) => match kw.as_str() {
                "table" => self.table_decl(),
                "var" => self.var_decl(),
                "mailbox" => self.mailbox_decl(),
                "import" => self.import_decl(),
                "query" => self.query_decl(),
                "on" => self.handler_decl(),
                "module" => self.module_decl(),
                "availability" => self.availability_block(),
                "consistency" => self.consistency_block(),
                "target" => self.target_block(),
                other => Err(self.err(format!(
                    "expected a declaration (table/var/mailbox/import/query/on/module/\
                     availability/consistency/target), found `{other}`"
                ))),
            },
            other => Err(self.err(format!("expected a declaration, found {other}"))),
        }
    }

    /// `module NAME:` — an indented block of ordinary declarations whose
    /// names are qualified with `NAME::` when the block closes. §3.1 calls
    /// blocks/modules "purely syntactic sugar" for scoped naming and reuse;
    /// accordingly the program that leaves the parser has no module nodes,
    /// only qualified names (which print and re-parse as plain
    /// identifiers, preserving the printer round-trip).
    fn module_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw("module")?;
        let name = self.ident()?;
        if name.contains("::") {
            return Err(self.err("module names must be unqualified (nest blocks instead)"));
        }
        self.expect(&Tok::Colon)?;
        self.newline()?;
        self.expect(&Tok::Indent)?;

        let mark = crate::modules::Mark::of(&self.program);
        let tables_before = self.tables.clone();
        let udfs_before = self.udfs.clone();

        while !self.eat(&Tok::Dedent) {
            if self.eat(&Tok::Newline) {
                continue;
            }
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err(format!("unterminated `module {name}` block")));
            }
            self.decl()?;
        }

        let renamed = crate::modules::qualify(&mut self.program, &mark, &name);

        // Update the parse-time disambiguation sets: names the module
        // declared are now only visible in qualified form. Short names
        // that shadowed an outer declaration become the outer name again.
        for (short, qualified) in &renamed {
            if self.tables.remove(short) {
                self.tables.insert(qualified.clone());
                if tables_before.contains(short) {
                    self.tables.insert(short.clone());
                }
            }
            if self.udfs.remove(short) {
                self.udfs.insert(qualified.clone());
                if udfs_before.contains(short) {
                    self.udfs.insert(short.clone());
                }
            }
        }
        Ok(())
    }

    // --------------------------------------------------------- declarations

    fn lattice_kind(&mut self) -> Result<Option<LatticeKind>, ParseError> {
        let name = self.ident()?;
        let kind = match name.as_str() {
            "atom" => None,
            "set" | "set_union" => Some(LatticeKind::SetUnion),
            "flag" | "bool_or" => Some(LatticeKind::BoolOr),
            "max" | "max_int" => Some(LatticeKind::MaxInt),
            "min" | "min_int" => Some(LatticeKind::MinInt),
            "lww" => Some(LatticeKind::Lww),
            "counter" | "gcounter" => Some(LatticeKind::GCounter),
            "map" => {
                self.expect(&Tok::LParen)?;
                let inner = self
                    .lattice_kind()?
                    .ok_or_else(|| self.err("map value kind must be a lattice, not `atom`"))?;
                self.expect(&Tok::RParen)?;
                Some(LatticeKind::MapUnion(Box::new(inner)))
            }
            other => {
                return Err(self.err(format!(
                    "unknown column kind `{other}` (expected atom/set/flag/max/min/lww/counter/map)"
                )))
            }
        };
        Ok(kind)
    }

    fn table_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut columns = Vec::new();
        let mut key_names: Vec<String> = Vec::new();
        let mut partition: Option<String> = None;
        let mut fd_names: Vec<(Vec<String>, Vec<String>)> = Vec::new();
        loop {
            if self.at_kw("key") {
                self.bump();
                self.expect(&Tok::Eq)?;
                if self.eat(&Tok::LParen) {
                    loop {
                        key_names.push(self.ident()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                } else {
                    key_names.push(self.ident()?);
                }
            } else if self.at_kw("partition") {
                self.bump();
                self.expect(&Tok::Eq)?;
                partition = Some(self.ident()?);
            } else if self.at_kw("fd") {
                // `fd=(det, … -> dep, …)` — §5 relational constraints.
                self.bump();
                self.expect(&Tok::Eq)?;
                self.expect(&Tok::LParen)?;
                let mut determinant = Vec::new();
                loop {
                    determinant.push(self.ident()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Minus)?;
                self.expect(&Tok::Gt)?;
                let mut dependent = Vec::new();
                loop {
                    dependent.push(self.ident()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                fd_names.push((determinant, dependent));
            } else {
                let col = self.ident()?;
                let kind = if self.eat(&Tok::Colon) {
                    match self.lattice_kind()? {
                        Some(k) => ColumnKind::Lattice(k),
                        None => ColumnKind::Atom,
                    }
                } else {
                    ColumnKind::Atom
                };
                columns.push(Column { name: col, kind });
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        self.newline()?;

        if key_names.is_empty() {
            // Default key: the first column, mirroring "the class's unique
            // id" default of §5.
            key_names.push(
                columns
                    .first()
                    .ok_or_else(|| self.err(format!("table `{name}` has no columns")))?
                    .name
                    .clone(),
            );
        }
        let col_index = |n: &str| columns.iter().position(|c| c.name == n);
        let key = key_names
            .iter()
            .map(|k| {
                col_index(k)
                    .ok_or_else(|| self.err(format!("key column `{k}` not declared in `{name}`")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let partition_by = partition
            .map(|p| {
                col_index(&p).ok_or_else(|| {
                    self.err(format!("partition column `{p}` not declared in `{name}`"))
                })
            })
            .transpose()?;
        let mut fds = Vec::new();
        for (det, dep) in fd_names {
            let resolve = |cols: Vec<String>| {
                cols.into_iter()
                    .map(|c| {
                        col_index(&c).ok_or_else(|| {
                            self.err(format!("fd column `{c}` not declared in `{name}`"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
            };
            fds.push(hydro_core::ast::Fd {
                determinant: resolve(det)?,
                dependent: resolve(dep)?,
            });
        }
        if self.tables.contains(&name) {
            return Err(self.err(format!("table `{name}` declared twice")));
        }
        self.tables.insert(name.clone());
        self.program.tables.push(TableDecl {
            name,
            columns,
            key,
            partition_by,
            fds,
        });
        Ok(())
    }

    fn var_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw("var")?;
        let name = self.ident()?;
        let lattice = if self.eat(&Tok::Colon) {
            let k = self
                .lattice_kind()?
                .ok_or_else(|| self.err("scalar kind must be a lattice; omit `: atom`"))?;
            Some(k)
        } else {
            None
        };
        let init = if self.eat(&Tok::Eq) {
            self.literal()?
        } else {
            match &lattice {
                Some(k) => k.bottom(),
                None => Value::Null,
            }
        };
        self.newline()?;
        self.program.scalars.push(ScalarDecl {
            name,
            lattice,
            init,
        });
        Ok(())
    }

    fn mailbox_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw("mailbox")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut arity = 0;
        if self.peek() != &Tok::RParen {
            loop {
                self.ident()?; // field names are documentation only
                arity += 1;
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.newline()?;
        self.program.mailboxes.push(MailboxDecl { name, arity });
        Ok(())
    }

    fn import_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw("import")?;
        loop {
            let name = self.ident()?;
            self.udfs.insert(name.clone());
            self.program.udfs.push(name);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.newline()
    }

    fn query_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw("query")?;
        let head = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut head_exprs = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                head_exprs.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;

        let agg = if self.eat(&Tok::Eq) {
            let fun = match self.ident()?.as_str() {
                "count" => AggFun::Count,
                "sum" => AggFun::Sum,
                "min" => AggFun::Min,
                "max" => AggFun::Max,
                "collect_set" => AggFun::CollectSet,
                other => {
                    return Err(self.err(format!(
                        "unknown aggregate `{other}` (expected count/sum/min/max/collect_set)"
                    )))
                }
            };
            self.expect(&Tok::LParen)?;
            let over = self.expr()?;
            self.expect(&Tok::RParen)?;
            Some((fun, over))
        } else {
            None
        };

        self.expect(&Tok::Colon)?;
        self.newline()?;
        self.expect(&Tok::Indent)?;
        let mut body = Vec::new();
        while !self.eat(&Tok::Dedent) {
            body.push(self.body_atom()?);
            self.newline()?;
        }
        if body.is_empty() {
            return Err(self.err(format!("query `{head}` has an empty body")));
        }

        match agg {
            None => self.program.rules.push(Rule {
                head,
                head_exprs,
                body,
            }),
            Some((fun, over)) => self.program.agg_rules.push(AggRule {
                head,
                group_exprs: head_exprs,
                agg: fun,
                over,
                body,
            }),
        }
        Ok(())
    }

    // ----------------------------------------------------------- body atoms

    /// One comprehension/rule-body conjunct.
    fn body_atom(&mut self) -> Result<BodyAtom, ParseError> {
        if self.eat_kw("for") {
            // `for x in e` (flatten) vs `for rel(terms)` (scan).
            if matches!(self.peek(), Tok::Ident(_)) && matches!(self.peek_at(1), Tok::Ident(k) if k == "in")
            {
                let var = self.ident()?;
                self.expect_kw("in")?;
                let set = self.expr()?;
                return Ok(BodyAtom::Flatten { var, set });
            }
            let rel = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut terms = Vec::new();
            if self.peek() != &Tok::RParen {
                loop {
                    terms.push(self.term()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            return Ok(BodyAtom::Scan { rel, terms });
        }
        if self.eat_kw("if") {
            return Ok(BodyAtom::Guard(self.expr()?));
        }
        if self.eat_kw("let") {
            let var = self.ident()?;
            self.expect(&Tok::Eq)?;
            let expr = self.expr()?;
            return Ok(BodyAtom::Let { var, expr });
        }
        if self.eat_kw("not") {
            let rel = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut args = Vec::new();
            if self.peek() != &Tok::RParen {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            return Ok(BodyAtom::Neg { rel, args });
        }
        Err(self.err(format!(
            "expected a body atom (`for`/`if`/`let`/`not`), found {}",
            self.peek()
        )))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if s == "_" => {
                self.bump();
                Ok(Term::Wildcard)
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Term::Var(s))
            }
            Tok::Int(_) | Tok::Str(_) | Tok::Minus => Ok(Term::Const(self.literal()?)),
            Tok::LBrace | Tok::LParen => Ok(Term::Const(self.literal()?)),
            other => Err(self.err(format!("expected a term (variable/`_`/literal), found {other}"))),
        }
    }

    // ------------------------------------------------------------- handlers

    fn handler_decl(&mut self) -> Result<(), ParseError> {
        self.expect_kw("on")?;
        let name = self.ident()?;

        // Condition-triggered form: `on name when expr:`.
        if self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect(&Tok::Colon)?;
            let body = self.stmt_block()?;
            self.program.handlers.push(Handler {
                name,
                params: Vec::new(),
                trigger: Trigger::OnCondition(cond),
                body,
                consistency: None,
            });
            return Ok(());
        }

        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;

        let consistency = if self.eat_kw("with") {
            Some(self.consistency_spec()?)
        } else {
            None
        };

        self.expect(&Tok::Colon)?;
        let body = self.stmt_block()?;
        self.program.handlers.push(Handler {
            name,
            params,
            trigger: Trigger::OnMessage,
            body,
            consistency,
        });
        Ok(())
    }

    fn consistency_spec(&mut self) -> Result<ConsistencyReq, ParseError> {
        let level = match self.ident()?.as_str() {
            "eventual" => ConsistencyLevel::Eventual,
            "causal" => ConsistencyLevel::Causal,
            "snapshot" => ConsistencyLevel::Snapshot,
            "sequential" => ConsistencyLevel::Sequential,
            "serializable" => ConsistencyLevel::Serializable,
            other => {
                return Err(self.err(format!(
                    "unknown consistency level `{other}` \
                     (expected eventual/causal/snapshot/sequential/serializable)"
                )))
            }
        };
        let mut invariants = Vec::new();
        if self.eat_kw("require") {
            loop {
                invariants.push(self.invariant()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(ConsistencyReq { level, invariants })
    }

    /// `scalar >= 0` or `table.has_key(param)`.
    fn invariant(&mut self) -> Result<Invariant, ParseError> {
        let name = self.ident()?;
        if self.eat(&Tok::Ge) {
            match self.bump() {
                Tok::Int(0) => Ok(Invariant::NonNegative(name)),
                other => Err(self.err(format!(
                    "only `>= 0` invariants are supported, found {other}"
                ))),
            }
        } else if self.eat(&Tok::Dot) {
            self.expect_kw("has_key")?;
            self.expect(&Tok::LParen)?;
            let key_param = self.ident()?;
            self.expect(&Tok::RParen)?;
            Ok(Invariant::HasKey {
                table: name,
                key_param,
            })
        } else {
            Err(self.err(format!(
                "expected an invariant (`{name} >= 0` or `{name}.has_key(param)`), found {}",
                self.peek()
            )))
        }
    }

    // ------------------------------------------------------------ statements

    fn stmt_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.newline()?;
        self.expect(&Tok::Indent)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::Dedent) {
            stmts.push(self.stmt()?);
        }
        if stmts.is_empty() {
            return Err(self.err("empty statement block"));
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("insert") {
            let table = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut values = Vec::new();
            if self.peek() != &Tok::RParen {
                loop {
                    values.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            self.newline()?;
            return Ok(Stmt::Insert { table, values });
        }
        if self.eat_kw("delete") {
            let table = self.ident()?;
            self.expect(&Tok::LBracket)?;
            let key = self.expr()?;
            self.expect(&Tok::RBracket)?;
            self.newline()?;
            return Ok(Stmt::Delete { table, key });
        }
        if self.eat_kw("send") {
            let mailbox = self.ident()?;
            let select = if self.eat(&Tok::LParen) {
                let mut projection = Vec::new();
                if self.peek() != &Tok::RParen {
                    loop {
                        projection.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Select {
                    body: Vec::new(),
                    projection,
                }
            } else if self.peek() == &Tok::LBrace {
                self.comprehension()?
            } else {
                return Err(self.err(format!(
                    "expected `(row)` or `{{comprehension}}` after `send {mailbox}`, found {}",
                    self.peek()
                )));
            };
            self.newline()?;
            return Ok(Stmt::Send { mailbox, select });
        }
        if self.eat_kw("return") {
            let e = self.expr()?;
            self.newline()?;
            return Ok(Stmt::Return(e));
        }
        if self.eat_kw("clear") {
            let name = self.ident()?;
            self.newline()?;
            return Ok(Stmt::ClearMailbox(name));
        }
        if self.eat_kw("if") {
            let cond = self.expr()?;
            self.expect(&Tok::Colon)?;
            let then = self.stmt_block()?;
            let els = if self.at_kw("else") {
                self.bump();
                self.expect(&Tok::Colon)?;
                self.stmt_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.at_kw("for") {
            // `for atom (, atom)* :` — statement-level quantification.
            let mut body = Vec::new();
            self.bump();
            loop {
                body.push(self.body_atom_after_for(body.is_empty())?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
                // Subsequent atoms may start with their own keyword; a bare
                // `rel(...)` continues the scan list.
            }
            self.expect(&Tok::Colon)?;
            let stmts = self.stmt_block()?;
            return Ok(Stmt::ForEach {
                select: Select {
                    body,
                    projection: Vec::new(),
                },
                stmts,
            });
        }

        // Mutation statements: `lvalue := e`, `lvalue.merge(e)`.
        self.mutation_stmt()
    }

    /// Parse one atom inside a `for …:` statement head. The first atom has
    /// already consumed the `for` keyword, so a scan is written bare
    /// (`carts(s, items)`); later atoms use the regular keyworded forms.
    fn body_atom_after_for(&mut self, first: bool) -> Result<BodyAtom, ParseError> {
        if first {
            // Either `x in e` (flatten) or `rel(terms)` (scan).
            if matches!(self.peek(), Tok::Ident(_)) && matches!(self.peek_at(1), Tok::Ident(k) if k == "in")
            {
                let var = self.ident()?;
                self.expect_kw("in")?;
                let set = self.expr()?;
                return Ok(BodyAtom::Flatten { var, set });
            }
            let rel = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut terms = Vec::new();
            if self.peek() != &Tok::RParen {
                loop {
                    terms.push(self.term()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
            Ok(BodyAtom::Scan { rel, terms })
        } else {
            self.body_atom()
        }
    }

    fn mutation_stmt(&mut self) -> Result<Stmt, ParseError> {
        let name = match self.peek() {
            Tok::Ident(_) => self.ident()?,
            other => return Err(self.err(format!("expected a statement, found {other}"))),
        };

        if self.eat(&Tok::LBracket) {
            // table[key].field := e  |  table[key].field.merge(e)
            if !self.tables.contains(&name) {
                return Err(self.err(format!("`{name}` is not a declared table")));
            }
            let key = self.expr()?;
            self.expect(&Tok::RBracket)?;
            self.expect(&Tok::Dot)?;
            let field = self.ident()?;
            if self.eat(&Tok::Assign) {
                let e = self.expr()?;
                self.newline()?;
                return Ok(Stmt::Assign(
                    hydro_core::ast::AssignTarget::TableField {
                        table: name,
                        key,
                        field,
                    },
                    e,
                ));
            }
            self.expect(&Tok::Dot)?;
            self.expect_kw("merge")?;
            self.expect(&Tok::LParen)?;
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            self.newline()?;
            return Ok(Stmt::Merge(
                hydro_core::ast::MergeTarget::TableField {
                    table: name,
                    key,
                    field,
                },
                e,
            ));
        }

        if self.eat(&Tok::Assign) {
            let e = self.expr()?;
            self.newline()?;
            return Ok(Stmt::Assign(
                hydro_core::ast::AssignTarget::Scalar(name),
                e,
            ));
        }

        if self.eat(&Tok::Dot) {
            self.expect_kw("merge")?;
            self.expect(&Tok::LParen)?;
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            self.newline()?;
            return Ok(Stmt::Merge(hydro_core::ast::MergeTarget::Scalar(name), e));
        }

        Err(self.err(format!(
            "expected `:=` or `.merge(…)` after `{name}`, found {}",
            self.peek()
        )))
    }

    // ------------------------------------------------------------ facet blocks

    /// Parse an indented block of `name: …` entries, applying `entry` to
    /// each.
    fn facet_entries(
        &mut self,
        mut entry: impl FnMut(&mut Self, String) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        self.expect(&Tok::Colon)?;
        self.newline()?;
        self.expect(&Tok::Indent)?;
        while !self.eat(&Tok::Dedent) {
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            entry(self, name)?;
            self.newline()?;
        }
        Ok(())
    }

    fn availability_block(&mut self) -> Result<(), ParseError> {
        self.expect_kw("availability")?;
        self.facet_entries(|p, name| {
            let req = p.avail_req()?;
            if name == "default" {
                p.program.availability.default = req;
            } else {
                p.program.availability.per_handler.insert(name, req);
            }
            Ok(())
        })
    }

    /// `domain=az, failures=2` (either order, both required).
    fn avail_req(&mut self) -> Result<AvailReq, ParseError> {
        let mut domain = None;
        let mut failures = None;
        loop {
            let key = self.ident()?;
            self.expect(&Tok::Eq)?;
            match key.as_str() {
                "domain" => {
                    domain = Some(match self.ident()?.as_str() {
                        "vm" => FailureDomain::Vm,
                        "rack" => FailureDomain::Rack,
                        "dc" | "datacenter" => FailureDomain::DataCenter,
                        "az" => FailureDomain::Az,
                        other => {
                            return Err(
                                self.err(format!("unknown failure domain `{other}`"))
                            )
                        }
                    })
                }
                "failures" => match self.bump() {
                    Tok::Int(n) if n >= 0 => failures = Some(n as u32),
                    other => return Err(self.err(format!("expected failure count, found {other}"))),
                },
                other => {
                    return Err(self.err(format!(
                        "unknown availability key `{other}` (expected domain/failures)"
                    )))
                }
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        match (domain, failures) {
            (Some(domain), Some(failures)) => Ok(AvailReq { domain, failures }),
            _ => Err(self.err("availability entries need both `domain=` and `failures=`")),
        }
    }

    fn consistency_block(&mut self) -> Result<(), ParseError> {
        self.expect_kw("consistency")?;
        // Collect into a temporary to avoid borrowing program inside closure.
        let mut defaults: Option<ConsistencyReq> = None;
        let mut per_handler: Vec<(String, ConsistencyReq)> = Vec::new();
        self.facet_entries(|p, name| {
            let req = p.consistency_spec()?;
            if name == "default" {
                defaults = Some(req);
            } else {
                per_handler.push((name, req));
            }
            Ok(())
        })?;
        if let Some(d) = defaults {
            self.program.default_consistency = d;
        }
        for (name, req) in per_handler {
            let (line, col) = self.here();
            let handler = self
                .program
                .handlers
                .iter_mut()
                .find(|h| h.name == name)
                .ok_or(ParseError {
                    message: format!("consistency block names unknown handler `{name}`"),
                    line,
                    col,
                })?;
            if handler.consistency.is_some() {
                return Err(ParseError {
                    message: format!(
                        "handler `{name}` already has an inline consistency spec"
                    ),
                    line,
                    col,
                });
            }
            handler.consistency = Some(req);
        }
        Ok(())
    }

    fn target_block(&mut self) -> Result<(), ParseError> {
        self.expect_kw("target")?;
        self.facet_entries(|p, name| {
            let req = p.target_req()?;
            if name == "default" {
                p.program.targets.default = req;
            } else {
                p.program.targets.per_handler.insert(name, req);
            }
            Ok(())
        })
    }

    /// `latency=100ms, cost=0.01, processor=gpu` (any subset, any order).
    fn target_req(&mut self) -> Result<TargetReq, ParseError> {
        let mut req = TargetReq::default();
        loop {
            let key = self.ident()?;
            self.expect(&Tok::Eq)?;
            match key.as_str() {
                "latency" => match self.bump() {
                    Tok::Int(ms) if ms >= 0 => {
                        // Tolerate a trailing `ms` unit.
                        self.eat_kw("ms");
                        req.latency_ms = Some(ms as u64);
                    }
                    other => {
                        return Err(self.err(format!("expected latency in ms, found {other}")))
                    }
                },
                "cost" => match self.bump() {
                    Tok::Decimal(whole, frac) if whole >= 0 => {
                        req.cost_milli = Some(whole as u64 * 1000 + frac as u64);
                    }
                    Tok::Int(units) if units >= 0 => {
                        req.cost_milli = Some(units as u64 * 1000);
                    }
                    other => {
                        return Err(self.err(format!("expected cost in units, found {other}")))
                    }
                },
                "processor" => {
                    req.processor = Some(match self.ident()?.as_str() {
                        "cpu" => Processor::Cpu,
                        "gpu" => Processor::Gpu,
                        other => return Err(self.err(format!("unknown processor `{other}`"))),
                    })
                }
                other => {
                    return Err(self.err(format!(
                        "unknown target key `{other}` (expected latency/cost/processor)"
                    )))
                }
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(req)
    }

    // ------------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(hydro_core::ast::CmpOp::Eq),
            Tok::Ne => Some(hydro_core::ast::CmpOp::Ne),
            Tok::Lt => Some(hydro_core::ast::CmpOp::Lt),
            Tok::Le => Some(hydro_core::ast::CmpOp::Le),
            Tok::Gt => Some(hydro_core::ast::CmpOp::Gt),
            Tok::Ge => Some(hydro_core::ast::CmpOp::Ge),
            Tok::Ident(k) if k == "in" => {
                self.bump();
                let set = self.add_expr()?;
                return Ok(Expr::Contains(Box::new(set), Box::new(lhs)));
            }
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.bump();
                let rhs = self.add_expr()?;
                Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
            }
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => hydro_core::ast::ArithOp::Add,
                Tok::Minus => hydro_core::ast::ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => hydro_core::ast::ArithOp::Mul,
                Tok::Slash => hydro_core::ast::ArithOp::Div,
                Tok::Percent => hydro_core::ast::ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            // Fold literal negation so `-3` round-trips as a constant.
            if let Expr::Const(Value::Int(n)) = e {
                return Ok(Expr::Const(Value::Int(-n)));
            }
            return Ok(Expr::Arith(
                hydro_core::ast::ArithOp::Sub,
                Box::new(Expr::int(0)),
                Box::new(e),
            ));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    // `people[k]` row reference vs `t[0]` tuple projection.
                    if let Expr::Var(name) = &e {
                        if self.tables.contains(name) {
                            let table = name.clone();
                            let key = self.expr()?;
                            self.expect(&Tok::RBracket)?;
                            e = Expr::RowOf {
                                table,
                                key: Box::new(key),
                            };
                            continue;
                        }
                    }
                    match self.bump() {
                        Tok::Int(i) if i >= 0 => {
                            self.expect(&Tok::RBracket)?;
                            e = Expr::Index(Box::new(e), i as usize);
                        }
                        other => {
                            return Err(self.err(format!(
                                "tuple projection needs a constant index, found {other}"
                            )))
                        }
                    }
                }
                Tok::Dot => {
                    self.bump();
                    let name = self.ident()?;
                    match name.as_str() {
                        "len" => {
                            self.expect(&Tok::LParen)?;
                            self.expect(&Tok::RParen)?;
                            e = Expr::Len(Box::new(e));
                        }
                        "contains" => {
                            self.expect(&Tok::LParen)?;
                            let item = self.expr()?;
                            self.expect(&Tok::RParen)?;
                            e = Expr::Contains(Box::new(e), Box::new(item));
                        }
                        "has_key" => {
                            let Expr::Var(table) = &e else {
                                return Err(
                                    self.err("`.has_key(…)` applies to a table name")
                                );
                            };
                            if !self.tables.contains(table) {
                                return Err(self.err(format!(
                                    "`{table}` is not a declared table"
                                )));
                            }
                            let table = table.clone();
                            self.expect(&Tok::LParen)?;
                            let key = self.expr()?;
                            self.expect(&Tok::RParen)?;
                            e = Expr::HasKey {
                                table,
                                key: Box::new(key),
                            };
                        }
                        field => {
                            // `people[pid].field` — field of a row reference.
                            if let Expr::RowOf { table, key } = e {
                                e = Expr::FieldOf {
                                    table,
                                    key,
                                    field: field.to_string(),
                                };
                            } else {
                                return Err(self.err(format!(
                                    "unknown method `.{field}` \
                                     (expected len/contains/has_key, or a field of a row reference)"
                                )));
                            }
                        }
                    }
                }
                Tok::LParen => {
                    // UDF call: `covid_predict(args)`.
                    let Expr::Var(name) = &e else {
                        return Err(self.err("only named functions can be called"));
                    };
                    if !self.udfs.contains(name) {
                        return Err(self.err(format!(
                            "unknown function `{name}` (declare it with `import {name}`)"
                        )));
                    }
                    let name = name.clone();
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    e = Expr::Call(name, args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Const(Value::Int(n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::Str(s)))
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Const(Value::Bool(true)))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Const(Value::Bool(false)))
                }
                "null" => {
                    self.bump();
                    Ok(Expr::Const(Value::Null))
                }
                _ => {
                    self.bump();
                    Ok(Expr::Var(id))
                }
            },
            Tok::LParen => {
                self.bump();
                let first = self.expr()?;
                if self.eat(&Tok::Comma) {
                    let mut items = vec![first];
                    if self.peek() != &Tok::RParen {
                        loop {
                            items.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(fold_const_tuple(items))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBrace => {
                let sel = self.set_or_comprehension()?;
                Ok(sel)
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }

    /// `{}`, `{e1, e2}`, or `{proj for … if …}`.
    fn set_or_comprehension(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Tok::LBrace)?;
        if self.eat(&Tok::RBrace) {
            return Ok(Expr::Const(Value::empty_set()));
        }
        let first = self.expr()?;
        if self.at_kw("for") || self.at_kw("if") || self.at_kw("let") || self.at_kw("not") {
            let body = self.comprehension_body()?;
            self.expect(&Tok::RBrace)?;
            return Ok(Expr::CollectSet(Box::new(Select {
                body,
                projection: flatten_projection(first),
            })));
        }
        let mut items = vec![first];
        while self.eat(&Tok::Comma) {
            items.push(self.expr()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(fold_const_set(items))
    }

    /// Parse a full `{proj for …}` comprehension into a [`Select`]
    /// (entered at the `{`).
    fn comprehension(&mut self) -> Result<Select, ParseError> {
        self.expect(&Tok::LBrace)?;
        let proj = self.expr()?;
        let body = if self.at_kw("for") || self.at_kw("if") || self.at_kw("let") || self.at_kw("not")
        {
            self.comprehension_body()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::RBrace)?;
        Ok(Select {
            body,
            projection: flatten_projection(proj),
        })
    }

    fn comprehension_body(&mut self) -> Result<Vec<BodyAtom>, ParseError> {
        let mut body = Vec::new();
        while self.at_kw("for") || self.at_kw("if") || self.at_kw("let") || self.at_kw("not") {
            body.push(self.body_atom()?);
        }
        Ok(body)
    }

    // --------------------------------------------------------------- literals

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Value::Int(n))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(n) => Ok(Value::Int(-n)),
                    other => Err(self.err(format!("expected integer after `-`, found {other}"))),
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => {
                    self.bump();
                    Ok(Value::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Value::Bool(false))
                }
                "null" => {
                    self.bump();
                    Ok(Value::Null)
                }
                other => Err(self.err(format!("expected a literal, found `{other}`"))),
            },
            Tok::LBrace => {
                self.bump();
                let mut items = BTreeSet::new();
                if self.peek() != &Tok::RBrace {
                    loop {
                        items.insert(self.literal()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Value::Set(items))
            }
            Tok::LParen => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::RParen {
                    loop {
                        items.push(self.literal()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Value::Tuple(items))
            }
            other => Err(self.err(format!("expected a literal, found {other}"))),
        }
    }
}

/// A paren-tuple head `{(a, b) for …}` projects multiple row columns; any
/// other head projects one.
fn flatten_projection(head: Expr) -> Vec<Expr> {
    match head {
        Expr::Tuple(items) => items,
        Expr::Const(Value::Tuple(items)) => {
            items.into_iter().map(Expr::Const).collect()
        }
        single => vec![single],
    }
}

/// Canonicalize all-constant tuples to a constant (so printing and parsing
/// are mutually inverse on constants).
fn fold_const_tuple(items: Vec<Expr>) -> Expr {
    if items.iter().all(|e| matches!(e, Expr::Const(_))) {
        Expr::Const(Value::Tuple(
            items
                .into_iter()
                .map(|e| match e {
                    Expr::Const(v) => v,
                    _ => unreachable!("all-const checked"),
                })
                .collect(),
        ))
    } else {
        Expr::Tuple(items)
    }
}

/// Canonicalize all-constant set literals to a constant.
fn fold_const_set(items: Vec<Expr>) -> Expr {
    if items.iter().all(|e| matches!(e, Expr::Const(_))) {
        Expr::Const(Value::Set(
            items
                .into_iter()
                .map(|e| match e {
                    Expr::Const(v) => v,
                    _ => unreachable!("all-const checked"),
                })
                .collect(),
        ))
    } else {
        Expr::SetBuild(items)
    }
}
