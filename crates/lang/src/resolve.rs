//! Name resolution and static checking for parsed programs.
//!
//! The parser leaves every identifier as [`Expr::Var`]; this pass walks the
//! program with a scope of *bound* variables (handler parameters, scan
//! bindings, `let`/`for … in` bindings) and
//!
//! * rewrites free occurrences of declared scalars to [`Expr::Scalar`],
//! * rejects unbound identifiers (the classic "silent empty result" Datalog
//!   pitfall becomes a compile error),
//! * rejects handler parameters that shadow scalars (ambiguous reads),
//! * checks scan/negation arity against the declared relations, and
//! * checks that mutation targets exist and that `merge` targets are
//!   lattice-typed while `:=` targets are not (the monotone/non-monotone
//!   split of §3.1 is enforced syntactically).
//!
//! The pass mutates the program in place; errors carry the offending name
//! and context rather than source positions (the parser has already
//! discarded spans — a production front-end would thread them through).

use hydro_core::ast::{
    AssignTarget, BodyAtom, ColumnKind, Expr, MergeTarget, Program, Select, Stmt, Term, Trigger,
};
use hydro_core::facets::Invariant;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A resolution failure.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolveError {
    /// Human-readable description, naming the context (handler/query).
    pub message: String,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ResolveError {}

fn err(message: impl Into<String>) -> ResolveError {
    ResolveError {
        message: message.into(),
    }
}

struct Resolver {
    scalars: BTreeSet<String>,
    /// Lattice-typed scalars (merge targets).
    lattice_scalars: BTreeSet<String>,
    /// Relation name → arity, for scan checking. Derived heads included.
    arities: BTreeMap<String, usize>,
    /// Table name → (column name → lattice?) for mutation checking.
    tables: BTreeMap<String, BTreeMap<String, bool>>,
    udfs: BTreeSet<String>,
    /// Context string for error messages.
    context: String,
}

/// Resolve identifiers and statically check `program` in place.
pub fn resolve_program(program: &mut Program) -> Result<(), ResolveError> {
    let scalars: BTreeSet<String> = program.scalars.iter().map(|s| s.name.clone()).collect();
    let lattice_scalars = program
        .scalars
        .iter()
        .filter(|s| s.lattice.is_some())
        .map(|s| s.name.clone())
        .collect();
    let arities: BTreeMap<String, usize> = program.relation_arities();
    let tables = program
        .tables
        .iter()
        .map(|t| {
            (
                t.name.clone(),
                t.columns
                    .iter()
                    .map(|c| (c.name.clone(), matches!(c.kind, ColumnKind::Lattice(_))))
                    .collect(),
            )
        })
        .collect();
    let udfs = program.udfs.iter().cloned().collect();
    let mut r = Resolver {
        scalars,
        lattice_scalars,
        arities,
        tables,
        udfs,
        context: String::new(),
    };

    let mut rules = std::mem::take(&mut program.rules);
    for rule in &mut rules {
        r.context = format!("query `{}`", rule.head);
        let mut bound = BTreeSet::new();
        r.body(&mut rule.body, &mut bound)?;
        for e in &mut rule.head_exprs {
            r.expr(e, &bound)?;
        }
    }
    program.rules = rules;

    let mut agg_rules = std::mem::take(&mut program.agg_rules);
    for rule in &mut agg_rules {
        r.context = format!("query `{}`", rule.head);
        let mut bound = BTreeSet::new();
        r.body(&mut rule.body, &mut bound)?;
        for e in &mut rule.group_exprs {
            r.expr(e, &bound)?;
        }
        r.expr(&mut rule.over, &bound)?;
    }
    program.agg_rules = agg_rules;

    let mut handlers = std::mem::take(&mut program.handlers);
    for handler in &mut handlers {
        r.context = format!("handler `{}`", handler.name);
        let mut bound: BTreeSet<String> = handler.params.iter().cloned().collect();
        for p in &handler.params {
            if r.scalars.contains(p) {
                return Err(err(format!(
                    "{}: parameter `{p}` shadows a declared scalar",
                    r.context
                )));
            }
        }
        if let Trigger::OnCondition(cond) = &mut handler.trigger {
            r.expr(cond, &bound)?;
        }
        r.stmts(&mut handler.body, &mut bound)?;
        if let Some(req) = &handler.consistency {
            for inv in &req.invariants {
                r.invariant(inv, &handler.params)?;
            }
        }
    }
    program.handlers = handlers;

    r.context = "default consistency".to_string();
    for inv in &program.default_consistency.invariants.clone() {
        r.invariant(inv, &[])?;
    }
    Ok(())
}

impl Resolver {
    fn body(
        &mut self,
        body: &mut [BodyAtom],
        bound: &mut BTreeSet<String>,
    ) -> Result<(), ResolveError> {
        for atom in body {
            match atom {
                BodyAtom::Scan { rel, terms } => {
                    match self.arities.get(rel.as_str()) {
                        None => {
                            return Err(err(format!(
                                "{}: scan of undeclared relation `{rel}`",
                                self.context
                            )))
                        }
                        Some(&a) if a != terms.len() => {
                            return Err(err(format!(
                                "{}: relation `{rel}` has arity {a}, scanned with {} terms",
                                self.context,
                                terms.len()
                            )))
                        }
                        Some(_) => {}
                    }
                    for t in terms.iter() {
                        if let Term::Var(v) = t {
                            bound.insert(v.clone());
                        }
                    }
                }
                BodyAtom::Neg { rel, args } => {
                    match self.arities.get(rel.as_str()) {
                        None => {
                            return Err(err(format!(
                                "{}: negation of undeclared relation `{rel}`",
                                self.context
                            )))
                        }
                        Some(&a) if a != args.len() => {
                            return Err(err(format!(
                                "{}: relation `{rel}` has arity {a}, negated with {} args",
                                self.context,
                                args.len()
                            )))
                        }
                        Some(_) => {}
                    }
                    for e in args.iter_mut() {
                        self.expr(e, bound)?;
                    }
                }
                BodyAtom::Guard(e) => self.expr(e, bound)?,
                BodyAtom::Let { var, expr } => {
                    self.expr(expr, bound)?;
                    bound.insert(var.clone());
                }
                BodyAtom::Flatten { var, set } => {
                    self.expr(set, bound)?;
                    bound.insert(var.clone());
                }
            }
        }
        Ok(())
    }

    fn select(&mut self, sel: &mut Select, outer: &BTreeSet<String>) -> Result<(), ResolveError> {
        let mut bound = outer.clone();
        self.body(&mut sel.body, &mut bound)?;
        for e in &mut sel.projection {
            self.expr(e, &bound)?;
        }
        Ok(())
    }

    fn stmts(
        &mut self,
        stmts: &mut [Stmt],
        bound: &mut BTreeSet<String>,
    ) -> Result<(), ResolveError> {
        for stmt in stmts {
            match stmt {
                Stmt::Merge(target, e) => {
                    self.expr(e, bound)?;
                    match target {
                        MergeTarget::Scalar(name) => {
                            if !self.scalars.contains(name.as_str()) {
                                return Err(err(format!(
                                    "{}: merge into undeclared scalar `{name}`",
                                    self.context
                                )));
                            }
                            if !self.lattice_scalars.contains(name.as_str()) {
                                return Err(err(format!(
                                    "{}: scalar `{name}` is not lattice-typed; \
                                     use `:=` (and accept non-monotonicity) or declare a kind",
                                    self.context
                                )));
                            }
                        }
                        MergeTarget::TableField { table, key, field } => {
                            self.expr(key, bound)?;
                            self.check_field(table, field, true)?;
                        }
                    }
                }
                Stmt::Assign(target, e) => {
                    self.expr(e, bound)?;
                    match target {
                        AssignTarget::Scalar(name) => {
                            if !self.scalars.contains(name.as_str()) {
                                return Err(err(format!(
                                    "{}: assignment to undeclared scalar `{name}`",
                                    self.context
                                )));
                            }
                            if self.lattice_scalars.contains(name.as_str()) {
                                return Err(err(format!(
                                    "{}: scalar `{name}` is lattice-typed; use `.merge(…)`",
                                    self.context
                                )));
                            }
                        }
                        AssignTarget::TableField { table, key, field } => {
                            self.expr(key, bound)?;
                            self.check_field(table, field, false)?;
                        }
                    }
                }
                Stmt::Insert { table, values } => {
                    let Some(cols) = self.tables.get(table.as_str()) else {
                        return Err(err(format!(
                            "{}: insert into undeclared table `{table}`",
                            self.context
                        )));
                    };
                    if cols.len() != values.len() {
                        return Err(err(format!(
                            "{}: table `{table}` has {} columns, insert provides {}",
                            self.context,
                            cols.len(),
                            values.len()
                        )));
                    }
                    for e in values.iter_mut() {
                        self.expr(e, bound)?;
                    }
                }
                Stmt::Delete { table, key } => {
                    if !self.tables.contains_key(table.as_str()) {
                        return Err(err(format!(
                            "{}: delete from undeclared table `{table}`",
                            self.context
                        )));
                    }
                    self.expr(key, bound)?;
                }
                Stmt::Send { select, .. } => self.select(select, bound)?,
                Stmt::Return(e) => self.expr(e, bound)?,
                Stmt::If { cond, then, els } => {
                    self.expr(cond, bound)?;
                    // Branch bindings do not leak: each branch resolves
                    // under a copy of the current scope.
                    let mut then_scope = bound.clone();
                    self.stmts(then, &mut then_scope)?;
                    let mut else_scope = bound.clone();
                    self.stmts(els, &mut else_scope)?;
                }
                Stmt::ForEach { select, stmts } => {
                    let mut inner = bound.clone();
                    self.body(&mut select.body, &mut inner)?;
                    for e in &mut select.projection {
                        self.expr(e, &inner)?;
                    }
                    self.stmts(stmts, &mut inner)?;
                }
                Stmt::ClearMailbox(_) => {}
            }
        }
        Ok(())
    }

    fn check_field(
        &self,
        table: &str,
        field: &str,
        needs_lattice: bool,
    ) -> Result<(), ResolveError> {
        let Some(cols) = self.tables.get(table) else {
            return Err(err(format!(
                "{}: mutation of undeclared table `{table}`",
                self.context
            )));
        };
        match cols.get(field) {
            None => Err(err(format!(
                "{}: table `{table}` has no column `{field}`",
                self.context
            ))),
            Some(true) if !needs_lattice => Err(err(format!(
                "{}: column `{table}.{field}` is lattice-typed; use `.merge(…)`",
                self.context
            ))),
            Some(false) if needs_lattice => Err(err(format!(
                "{}: column `{table}.{field}` is not lattice-typed; use `:=`",
                self.context
            ))),
            Some(_) => Ok(()),
        }
    }

    fn invariant(&self, inv: &Invariant, params: &[String]) -> Result<(), ResolveError> {
        match inv {
            Invariant::NonNegative(name) => {
                if !self.scalars.contains(name.as_str()) {
                    return Err(err(format!(
                        "{}: invariant references undeclared scalar `{name}`",
                        self.context
                    )));
                }
            }
            Invariant::HasKey { table, key_param } => {
                if !self.tables.contains_key(table.as_str()) {
                    return Err(err(format!(
                        "{}: invariant references undeclared table `{table}`",
                        self.context
                    )));
                }
                if !params.contains(key_param) {
                    return Err(err(format!(
                        "{}: has_key invariant needs a handler parameter, \
                         `{key_param}` is not one",
                        self.context
                    )));
                }
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &mut Expr, bound: &BTreeSet<String>) -> Result<(), ResolveError> {
        match e {
            Expr::Var(name) => {
                if bound.contains(name.as_str()) {
                    return Ok(());
                }
                if self.scalars.contains(name.as_str()) {
                    *e = Expr::Scalar(name.clone());
                    return Ok(());
                }
                Err(err(format!(
                    "{}: unbound identifier `{name}` \
                     (not a parameter, binding, or declared scalar)",
                    self.context
                )))
            }
            Expr::Scalar(name) => {
                if self.scalars.contains(name.as_str()) {
                    Ok(())
                } else {
                    Err(err(format!(
                        "{}: read of undeclared scalar `{name}`",
                        self.context
                    )))
                }
            }
            Expr::Const(_) => Ok(()),
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                self.expr(l, bound)?;
                self.expr(r, bound)
            }
            Expr::Contains(l, r) => {
                self.expr(l, bound)?;
                self.expr(r, bound)
            }
            Expr::Not(inner) | Expr::Len(inner) | Expr::Index(inner, _) => self.expr(inner, bound),
            Expr::Tuple(items) | Expr::SetBuild(items) => {
                for i in items {
                    self.expr(i, bound)?;
                }
                Ok(())
            }
            Expr::FieldOf { table, key, field } => {
                if !self
                    .tables
                    .get(table.as_str())
                    .is_some_and(|cols| cols.contains_key(field.as_str()))
                {
                    return Err(err(format!(
                        "{}: `{table}[…].{field}` does not name a declared column",
                        self.context
                    )));
                }
                self.expr(key, bound)
            }
            Expr::RowOf { table, key } => {
                if !self.tables.contains_key(table.as_str()) {
                    return Err(err(format!(
                        "{}: row reference to undeclared table `{table}`",
                        self.context
                    )));
                }
                self.expr(key, bound)
            }
            Expr::HasKey { table, key } => {
                if !self.tables.contains_key(table.as_str()) {
                    return Err(err(format!(
                        "{}: has_key on undeclared table `{table}`",
                        self.context
                    )));
                }
                self.expr(key, bound)
            }
            Expr::Call(name, args) => {
                if !self.udfs.contains(name.as_str()) {
                    return Err(err(format!(
                        "{}: call of unimported function `{name}`",
                        self.context
                    )));
                }
                for a in args {
                    self.expr(a, bound)?;
                }
                Ok(())
            }
            Expr::CollectSet(sel) => {
                let mut inner = bound.clone();
                self.body(&mut sel.body, &mut inner)?;
                for p in &mut sel.projection {
                    self.expr(p, &inner)?;
                }
                Ok(())
            }
        }
    }
}
