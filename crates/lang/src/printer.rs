//! Pretty-printer: [`Program`] → textual HydroLogic.
//!
//! The printer is the inverse of the parser up to canonicalization:
//! all-constant tuple/set literals print as literals and re-parse as
//! [`Expr::Const`], and multi-column comprehension heads print as a
//! parenthesized tuple. `print ∘ parse ∘ print = print` (property-tested in
//! the crate tests), and for programs produced by the parser,
//! `parse ∘ print` is the identity.
//!
//! Programs containing constructs with no surface syntax (e.g. a bare
//! scalar initialized to a `Map` value) are rejected with [`PrintError`]
//! rather than printed unparsably.

use hydro_core::ast::{
    AggFun, AggRule, ArithOp, AssignTarget, BodyAtom, CmpOp, ColumnKind, Expr, Handler,
    MergeTarget, Program, Rule, Select, Stmt, TableDecl, Term, Trigger,
};
use hydro_core::facets::{
    AvailReq, ConsistencyLevel, ConsistencyReq, FailureDomain, Invariant, Processor, TargetReq,
};
use hydro_core::value::{LatticeKind, Value};
use std::fmt;
use std::fmt::Write as _;

/// A printing failure: the program uses a construct with no surface syntax.
#[derive(Clone, Debug, PartialEq)]
pub struct PrintError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PrintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PrintError {}

fn perr(message: impl Into<String>) -> PrintError {
    PrintError {
        message: message.into(),
    }
}

/// Render a program as parsable HydroLogic text.
pub fn print_program(p: &Program) -> Result<String, PrintError> {
    let mut out = String::new();
    for t in &p.tables {
        table_decl(&mut out, t)?;
    }
    for s in &p.scalars {
        match &s.lattice {
            Some(kind) => {
                if s.init == kind.bottom() {
                    wl(&mut out, format!("var {}: {}", s.name, kind_name(kind)));
                } else {
                    wl(
                        &mut out,
                        format!(
                            "var {}: {} = {}",
                            s.name,
                            kind_name(kind),
                            literal(&s.init)?
                        ),
                    );
                }
            }
            None => {
                if s.init == Value::Null {
                    wl(&mut out, format!("var {}", s.name));
                } else {
                    wl(&mut out, format!("var {} = {}", s.name, literal(&s.init)?));
                }
            }
        }
    }
    for m in &p.mailboxes {
        let fields: Vec<String> = (0..m.arity).map(|i| format!("f{i}")).collect();
        wl(&mut out, format!("mailbox {}({})", m.name, fields.join(", ")));
    }
    if !p.udfs.is_empty() {
        wl(&mut out, format!("import {}", p.udfs.join(", ")));
    }
    for r in &p.rules {
        rule_decl(&mut out, r)?;
    }
    for r in &p.agg_rules {
        agg_rule_decl(&mut out, r)?;
    }
    for h in &p.handlers {
        handler_decl(&mut out, h)?;
    }
    availability_block(&mut out, p);
    consistency_block(&mut out, p)?;
    target_block(&mut out, p);
    Ok(out)
}

fn wl(out: &mut String, line: impl AsRef<str>) {
    out.push_str(line.as_ref());
    out.push('\n');
}

fn kind_name(kind: &LatticeKind) -> String {
    match kind {
        LatticeKind::MaxInt => "max".into(),
        LatticeKind::MinInt => "min".into(),
        LatticeKind::BoolOr => "flag".into(),
        LatticeKind::SetUnion => "set".into(),
        LatticeKind::MapUnion(inner) => format!("map({})", kind_name(inner)),
        LatticeKind::Lww => "lww".into(),
        LatticeKind::GCounter => "counter".into(),
    }
}

fn table_decl(out: &mut String, t: &TableDecl) -> Result<(), PrintError> {
    let mut parts: Vec<String> = Vec::new();
    for c in &t.columns {
        match &c.kind {
            ColumnKind::Atom => parts.push(c.name.clone()),
            ColumnKind::Lattice(k) => parts.push(format!("{}: {}", c.name, kind_name(k))),
        }
    }
    let key_names: Vec<&str> = t.key.iter().map(|&i| t.columns[i].name.as_str()).collect();
    // The parser defaults the key to the first column; print explicitly
    // whenever it differs, and also for multi-column keys.
    if key_names.len() != 1 || t.key != vec![0] {
        if key_names.len() == 1 {
            parts.push(format!("key={}", key_names[0]));
        } else {
            parts.push(format!("key=({})", key_names.join(", ")));
        }
    } else {
        parts.push(format!("key={}", key_names[0]));
    }
    if let Some(pix) = t.partition_by {
        parts.push(format!("partition={}", t.columns[pix].name));
    }
    for fd in &t.fds {
        let names = |cols: &[usize]| {
            cols.iter()
                .map(|&i| t.columns[i].name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        };
        parts.push(format!(
            "fd=({} -> {})",
            names(&fd.determinant),
            names(&fd.dependent)
        ));
    }
    wl(out, format!("table {}({})", t.name, parts.join(", ")));
    Ok(())
}

fn rule_decl(out: &mut String, r: &Rule) -> Result<(), PrintError> {
    let heads: Vec<String> = r.head_exprs.iter().map(expr).collect::<Result<_, _>>()?;
    wl(out, format!("query {}({}):", r.head, heads.join(", ")));
    for atom in &r.body {
        wl(out, format!("  {}", body_atom(atom)?));
    }
    wl(out, "");
    Ok(())
}

fn agg_rule_decl(out: &mut String, r: &AggRule) -> Result<(), PrintError> {
    let heads: Vec<String> = r.group_exprs.iter().map(expr).collect::<Result<_, _>>()?;
    let fun = match r.agg {
        AggFun::Count => "count",
        AggFun::Sum => "sum",
        AggFun::Min => "min",
        AggFun::Max => "max",
        AggFun::CollectSet => "collect_set",
    };
    wl(
        out,
        format!(
            "query {}({}) = {fun}({}):",
            r.head,
            heads.join(", "),
            expr(&r.over)?
        ),
    );
    for atom in &r.body {
        wl(out, format!("  {}", body_atom(atom)?));
    }
    wl(out, "");
    Ok(())
}

fn body_atom(atom: &BodyAtom) -> Result<String, PrintError> {
    Ok(match atom {
        BodyAtom::Scan { rel, terms } => {
            let ts: Vec<String> = terms.iter().map(term).collect::<Result<_, _>>()?;
            format!("for {rel}({})", ts.join(", "))
        }
        BodyAtom::Neg { rel, args } => {
            let es: Vec<String> = args.iter().map(expr).collect::<Result<_, _>>()?;
            format!("not {rel}({})", es.join(", "))
        }
        BodyAtom::Guard(e) => format!("if {}", expr(e)?),
        BodyAtom::Let { var, expr: e } => format!("let {var} = {}", expr(e)?),
        BodyAtom::Flatten { var, set } => format!("for {var} in {}", expr(set)?),
    })
}

fn term(t: &Term) -> Result<String, PrintError> {
    Ok(match t {
        Term::Var(v) => v.clone(),
        Term::Wildcard => "_".to_string(),
        Term::Const(v) => literal(v)?,
    })
}

fn handler_decl(out: &mut String, h: &Handler) -> Result<(), PrintError> {
    match &h.trigger {
        Trigger::OnMessage => {
            let mut header = format!("on {}({})", h.name, h.params.join(", "));
            if let Some(req) = &h.consistency {
                let _ = write!(header, " with {}", consistency_spec(req)?);
            }
            header.push(':');
            wl(out, header);
        }
        Trigger::OnCondition(cond) => {
            if h.consistency.is_some() {
                return Err(perr(format!(
                    "handler `{}`: condition handlers take their consistency \
                     from a `consistency:` block",
                    h.name
                )));
            }
            wl(out, format!("on {} when {}:", h.name, expr(cond)?));
        }
    }
    stmts(out, &h.body, 1)?;
    wl(out, "");
    Ok(())
}

fn consistency_spec(req: &ConsistencyReq) -> Result<String, PrintError> {
    let level = match req.level {
        ConsistencyLevel::Eventual => "eventual",
        ConsistencyLevel::Causal => "causal",
        ConsistencyLevel::Snapshot => "snapshot",
        ConsistencyLevel::Sequential => "sequential",
        ConsistencyLevel::Serializable => "serializable",
    };
    if req.invariants.is_empty() {
        return Ok(level.to_string());
    }
    let invs: Vec<String> = req
        .invariants
        .iter()
        .map(|inv| match inv {
            Invariant::NonNegative(name) => format!("{name} >= 0"),
            Invariant::HasKey { table, key_param } => format!("{table}.has_key({key_param})"),
        })
        .collect();
    Ok(format!("{level} require {}", invs.join(", ")))
}

fn stmts(out: &mut String, body: &[Stmt], depth: usize) -> Result<(), PrintError> {
    let pad = "  ".repeat(depth);
    for s in body {
        match s {
            Stmt::Merge(target, e) => match target {
                MergeTarget::Scalar(name) => {
                    wl(out, format!("{pad}{name}.merge({})", expr(e)?))
                }
                MergeTarget::TableField { table, key, field } => wl(
                    out,
                    format!("{pad}{table}[{}].{field}.merge({})", expr(key)?, expr(e)?),
                ),
            },
            Stmt::Assign(target, e) => match target {
                AssignTarget::Scalar(name) => {
                    wl(out, format!("{pad}{name} := {}", expr(e)?))
                }
                AssignTarget::TableField { table, key, field } => wl(
                    out,
                    format!("{pad}{table}[{}].{field} := {}", expr(key)?, expr(e)?),
                ),
            },
            Stmt::Insert { table, values } => {
                let es: Vec<String> = values.iter().map(expr).collect::<Result<_, _>>()?;
                wl(out, format!("{pad}insert {table}({})", es.join(", ")));
            }
            Stmt::Delete { table, key } => {
                wl(out, format!("{pad}delete {table}[{}]", expr(key)?))
            }
            Stmt::Send { mailbox, select } => {
                if select.body.is_empty() {
                    let es: Vec<String> =
                        select.projection.iter().map(expr).collect::<Result<_, _>>()?;
                    wl(out, format!("{pad}send {mailbox}({})", es.join(", ")));
                } else {
                    wl(out, format!("{pad}send {mailbox} {}", comprehension(select)?));
                }
            }
            Stmt::Return(e) => wl(out, format!("{pad}return {}", expr(e)?)),
            Stmt::If { cond, then, els } => {
                wl(out, format!("{pad}if {}:", expr(cond)?));
                stmts(out, then, depth + 1)?;
                if !els.is_empty() {
                    wl(out, format!("{pad}else:"));
                    stmts(out, els, depth + 1)?;
                }
            }
            Stmt::ForEach { select, stmts: inner } => {
                if select.body.is_empty() {
                    return Err(perr("`for` statement with empty comprehension body"));
                }
                let atoms: Vec<String> = select
                    .body
                    .iter()
                    .map(body_atom)
                    .collect::<Result<_, _>>()?;
                // The leading `for` of the first atom doubles as the
                // statement keyword.
                let first = atoms[0]
                    .strip_prefix("for ")
                    .ok_or_else(|| {
                        perr("`for` statement must start with a scan or flatten atom")
                    })?
                    .to_string();
                let rest = atoms[1..].join(", ");
                if rest.is_empty() {
                    wl(out, format!("{pad}for {first}:"));
                } else {
                    wl(out, format!("{pad}for {first}, {rest}:"));
                }
                stmts(out, inner, depth + 1)?;
            }
            Stmt::ClearMailbox(name) => wl(out, format!("{pad}clear {name}")),
        }
    }
    Ok(())
}

fn comprehension(sel: &Select) -> Result<String, PrintError> {
    let head = match sel.projection.len() {
        0 => return Err(perr("comprehension with empty projection")),
        1 => expr(&sel.projection[0])?,
        _ => {
            let es: Vec<String> = sel.projection.iter().map(expr).collect::<Result<_, _>>()?;
            format!("({})", es.join(", "))
        }
    };
    let atoms: Vec<String> = sel.body.iter().map(body_atom).collect::<Result<_, _>>()?;
    if atoms.is_empty() {
        Ok(format!("{{{head}}}"))
    } else {
        Ok(format!("{{{head} {}}}", atoms.join(" ")))
    }
}

// --------------------------------------------------------------- expressions

/// Operator precedence levels, mirroring the parser's grammar.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Not(..) => 3,
        Expr::Cmp(..) => 4,
        Expr::Arith(ArithOp::Add | ArithOp::Sub, ..) => 5,
        Expr::Arith(..) => 6,
        // A negative literal prints with a leading `-`, which binds like
        // unary minus (tighter than `*`, looser than postfix): `(-1).len()`,
        // not `-1.len()`.
        Expr::Const(Value::Int(n)) if *n < 0 => 7,
        _ => 10,
    }
}

fn sub_expr(e: &Expr, parent: u8) -> Result<String, PrintError> {
    let s = expr(e)?;
    if prec(e) < parent {
        Ok(format!("({s})"))
    } else {
        Ok(s)
    }
}

fn expr(e: &Expr) -> Result<String, PrintError> {
    Ok(match e {
        Expr::Const(v) => literal(v)?,
        Expr::Var(name) | Expr::Scalar(name) => name.clone(),
        Expr::Cmp(op, l, r) => {
            let ops = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {ops} {}", sub_expr(l, 5)?, sub_expr(r, 5)?)
        }
        Expr::Arith(op, l, r) => match op {
            ArithOp::Add => format!("{} + {}", sub_expr(l, 5)?, sub_expr(r, 6)?),
            ArithOp::Sub => format!("{} - {}", sub_expr(l, 5)?, sub_expr(r, 6)?),
            ArithOp::Mul => format!("{} * {}", sub_expr(l, 6)?, sub_expr(r, 10)?),
            ArithOp::Div => format!("{} / {}", sub_expr(l, 6)?, sub_expr(r, 10)?),
            ArithOp::Mod => format!("{} % {}", sub_expr(l, 6)?, sub_expr(r, 10)?),
        },
        Expr::Not(inner) => format!("not {}", sub_expr(inner, 3)?),
        Expr::And(l, r) => format!("{} and {}", sub_expr(l, 2)?, sub_expr(r, 3)?),
        Expr::Or(l, r) => format!("{} or {}", sub_expr(l, 1)?, sub_expr(r, 2)?),
        Expr::Tuple(items) => {
            let es: Vec<String> = items.iter().map(expr).collect::<Result<_, _>>()?;
            format!("({})", es.join(", "))
        }
        Expr::Index(inner, i) => format!("{}[{i}]", sub_expr(inner, 10)?),
        Expr::SetBuild(items) => {
            let es: Vec<String> = items.iter().map(expr).collect::<Result<_, _>>()?;
            format!("{{{}}}", es.join(", "))
        }
        Expr::Contains(set, item) => {
            format!("{}.contains({})", sub_expr(set, 10)?, expr(item)?)
        }
        Expr::Len(inner) => format!("{}.len()", sub_expr(inner, 10)?),
        Expr::FieldOf { table, key, field } => {
            format!("{table}[{}].{field}", expr(key)?)
        }
        Expr::RowOf { table, key } => format!("{table}[{}]", expr(key)?),
        Expr::HasKey { table, key } => format!("{table}.has_key({})", expr(key)?),
        Expr::Call(name, args) => {
            let es: Vec<String> = args.iter().map(expr).collect::<Result<_, _>>()?;
            format!("{name}({})", es.join(", "))
        }
        Expr::CollectSet(sel) => comprehension(sel)?,
    })
}

fn literal(v: &Value) -> Result<String, PrintError> {
    Ok(match v {
        Value::Null => "null".to_string(),
        Value::Bool(true) => "true".to_string(),
        Value::Bool(false) => "false".to_string(),
        Value::Int(i) => {
            if *i == i64::MIN {
                return Err(perr("i64::MIN literal has no surface syntax"));
            }
            i.to_string()
        }
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        Value::Tuple(items) => {
            let es: Vec<String> = items.iter().map(literal).collect::<Result<_, _>>()?;
            format!("({})", es.join(", "))
        }
        Value::Set(items) => {
            let es: Vec<String> = items.iter().map(literal).collect::<Result<_, _>>()?;
            format!("{{{}}}", es.join(", "))
        }
        Value::Map(_) => return Err(perr("map values have no literal syntax")),
    })
}

// --------------------------------------------------------------- facet blocks

fn domain_name(d: FailureDomain) -> &'static str {
    match d {
        FailureDomain::Vm => "vm",
        FailureDomain::Rack => "rack",
        FailureDomain::DataCenter => "dc",
        FailureDomain::Az => "az",
    }
}

fn avail_req(r: &AvailReq) -> String {
    format!("domain={}, failures={}", domain_name(r.domain), r.failures)
}

fn availability_block(out: &mut String, p: &Program) {
    let spec = &p.availability;
    let is_default = spec.default == AvailReq::default() && spec.per_handler.is_empty();
    if is_default {
        return;
    }
    wl(out, "availability:");
    wl(out, format!("  default: {}", avail_req(&spec.default)));
    for (name, req) in &spec.per_handler {
        wl(out, format!("  {name}: {}", avail_req(req)));
    }
    wl(out, "");
}

fn consistency_block(out: &mut String, p: &Program) -> Result<(), PrintError> {
    // Per-handler consistency prints inline on the handlers; only a
    // non-default program default needs a block.
    if p.default_consistency == ConsistencyReq::default() {
        return Ok(());
    }
    wl(out, "consistency:");
    wl(
        out,
        format!("  default: {}", consistency_spec(&p.default_consistency)?),
    );
    wl(out, "");
    Ok(())
}

fn target_req(r: &TargetReq) -> String {
    let mut parts = Vec::new();
    if let Some(ms) = r.latency_ms {
        parts.push(format!("latency={ms}ms"));
    }
    if let Some(m) = r.cost_milli {
        parts.push(format!("cost={}.{:03}", m / 1000, m % 1000));
    }
    if let Some(proc) = r.processor {
        parts.push(format!(
            "processor={}",
            match proc {
                Processor::Cpu => "cpu",
                Processor::Gpu => "gpu",
            }
        ));
    }
    parts.join(", ")
}

fn target_block(out: &mut String, p: &Program) {
    let spec = &p.targets;
    let default_empty = spec.default == TargetReq::default();
    if default_empty && spec.per_handler.is_empty() {
        return;
    }
    wl(out, "target:");
    if !default_empty {
        wl(out, format!("  default: {}", target_req(&spec.default)));
    }
    for (name, req) in &spec.per_handler {
        if *req == TargetReq::default() {
            continue;
        }
        wl(out, format!("  {name}: {}", target_req(req)));
    }
    wl(out, "");
}
