//! # hydro-lang
//!
//! The textual front-end for HydroLogic — the "Pythonic HydroLogic" syntax
//! that Figure 3 of the paper presents its running example in. The paper
//! leaves "the full design of HydroLogic syntax for future work" (§3); this
//! crate implements the exposition syntax faithfully enough that the whole
//! Figure 3 program parses from text into the exact same [`Program`] the
//! builder API constructs.
//!
//! Pipeline: [`token::lex`] (indentation-aware lexing) →
//! [`parser`] (recursive descent → IR, erasing `module` blocks into
//! `::`-qualified names — §3.1 calls modules "purely syntactic sugar") →
//! [`resolve`] (identifier resolution and static checks).
//! [`printer::print_program`] inverts the pipeline, and `print ∘ parse`
//! is idempotent.
//!
//! ```
//! use hydro_lang::{parse_program, print_program};
//!
//! let src = "
//! table carts(session, items: set, key=session)
//!
//! on add_item(session, item):
//!   insert carts(session, {item})
//!   return \"OK\"
//! ";
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.handlers.len(), 1);
//! let printed = print_program(&program).unwrap();
//! assert_eq!(parse_program(&printed).unwrap(), program);
//! ```

#![warn(missing_docs)]

pub(crate) mod modules;
pub mod parser;
pub mod printer;
pub mod resolve;
pub mod token;

pub use parser::ParseError;
pub use printer::{print_program, PrintError};
pub use resolve::ResolveError;

use hydro_core::ast::Program;
use std::fmt;

/// Any failure turning text into a checked program.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// Lexing or parsing failed (carries position info).
    Parse(ParseError),
    /// Name resolution / static checking failed.
    Resolve(ResolveError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "parse error: {e}"),
            LangError::Resolve(e) => write!(f, "resolve error: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<ResolveError> for LangError {
    fn from(e: ResolveError) -> Self {
        LangError::Resolve(e)
    }
}

/// Parse, resolve and check a HydroLogic source text.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let mut program = parser::parse_unresolved(src)?;
    resolve::resolve_program(&mut program)?;
    Ok(program)
}
