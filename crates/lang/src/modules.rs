//! Module desugaring: scoped-name qualification (§3.1).
//!
//! The paper's program-semantics facet says "Blocks can be declared as
//! object-like modules with methods to scope naming and allow reuse.
//! Blocks and modules are purely syntactic sugar". We honor that by
//! erasing `module m:` blocks at parse time: every name the block declares
//! (tables, scalars, mailboxes, query heads, handlers, imported UDFs) is
//! rewritten to `m::name`, and every *free* reference to such a name from
//! within the block is rewritten to match. The program that leaves the
//! parser contains no module construct — only qualified identifiers, which
//! the lexer treats as single tokens, so printing and re-parsing round-trip.
//!
//! Scoping rules, chosen to match the resolution pass exactly:
//!
//! * Binder occurrences — handler parameters, scan terms, `let` and
//!   `for … in` bindings — shadow module declarations, so a bound variable
//!   named like a module scalar stays local (the same precedence
//!   [`crate::resolve`] applies when classifying `Expr::Var`).
//! * A module declaration shadows an outer declaration of the same name
//!   for the remainder of the block; outer names not shadowed remain
//!   reachable unqualified.
//! * Nesting composes by repeated qualification: when `module a:` closes
//!   around an already-closed `module b:`, names `b::x` become `a::b::x`.

use hydro_core::ast::{
    AssignTarget, BodyAtom, Expr, MergeTarget, Program, Select, Stmt, Term, Trigger,
};
use hydro_core::facets::Invariant;
use std::collections::{BTreeMap, BTreeSet};

/// Snapshot of how many declarations a [`Program`] held when a module
/// block opened, so [`qualify`] can confine the rename to items the block
/// added.
pub(crate) struct Mark {
    tables: usize,
    scalars: usize,
    mailboxes: usize,
    rules: usize,
    agg_rules: usize,
    handlers: usize,
    udfs: usize,
    avail_keys: BTreeSet<String>,
    target_keys: BTreeSet<String>,
}

impl Mark {
    /// Capture the current extent of `program`.
    pub(crate) fn of(program: &Program) -> Self {
        Mark {
            tables: program.tables.len(),
            scalars: program.scalars.len(),
            mailboxes: program.mailboxes.len(),
            rules: program.rules.len(),
            agg_rules: program.agg_rules.len(),
            handlers: program.handlers.len(),
            udfs: program.udfs.len(),
            avail_keys: program.availability.per_handler.keys().cloned().collect(),
            target_keys: program.targets.per_handler.keys().cloned().collect(),
        }
    }
}

/// Qualify every name declared after `mark` with `module::`, rewriting
/// free references within those same declarations. Returns the
/// `(short, qualified)` pairs applied, for the parser to update its
/// disambiguation sets.
pub(crate) fn qualify(
    program: &mut Program,
    mark: &Mark,
    module: &str,
) -> Vec<(String, String)> {
    let mut map: BTreeMap<String, String> = BTreeMap::new();
    let mut declare = |name: &str| {
        map.insert(name.to_string(), format!("{module}::{name}"));
    };
    for t in &program.tables[mark.tables..] {
        declare(&t.name);
    }
    for s in &program.scalars[mark.scalars..] {
        declare(&s.name);
    }
    for m in &program.mailboxes[mark.mailboxes..] {
        declare(&m.name);
    }
    for r in &program.rules[mark.rules..] {
        declare(&r.head);
    }
    for r in &program.agg_rules[mark.agg_rules..] {
        declare(&r.head);
    }
    for h in &program.handlers[mark.handlers..] {
        declare(&h.name);
    }
    for u in &program.udfs[mark.udfs..] {
        declare(u);
    }

    let renamer = Renamer { map: &map };

    for t in &mut program.tables[mark.tables..] {
        t.name = renamer.name(&t.name);
    }
    for s in &mut program.scalars[mark.scalars..] {
        s.name = renamer.name(&s.name);
    }
    for m in &mut program.mailboxes[mark.mailboxes..] {
        m.name = renamer.name(&m.name);
    }
    for rule in &mut program.rules[mark.rules..] {
        rule.head = renamer.name(&rule.head);
        let mut bound = BTreeSet::new();
        renamer.body(&mut rule.body, &mut bound);
        for e in &mut rule.head_exprs {
            renamer.expr(e, &bound);
        }
    }
    for rule in &mut program.agg_rules[mark.agg_rules..] {
        rule.head = renamer.name(&rule.head);
        let mut bound = BTreeSet::new();
        renamer.body(&mut rule.body, &mut bound);
        for e in &mut rule.group_exprs {
            renamer.expr(e, &bound);
        }
        renamer.expr(&mut rule.over, &bound);
    }
    for handler in &mut program.handlers[mark.handlers..] {
        handler.name = renamer.name(&handler.name);
        let bound: BTreeSet<String> = handler.params.iter().cloned().collect();
        if let Trigger::OnCondition(cond) = &mut handler.trigger {
            renamer.expr(cond, &bound);
        }
        renamer.stmts(&mut handler.body, &bound);
        if let Some(req) = &mut handler.consistency {
            for inv in &mut req.invariants {
                renamer.invariant(inv);
            }
        }
    }
    for u in &mut program.udfs[mark.udfs..] {
        *u = renamer.name(u);
    }

    // Facet entries added inside the block refer to module handlers by
    // their short names; re-key them.
    fn rekey<V>(
        per_handler: &mut BTreeMap<String, V>,
        before: &BTreeSet<String>,
        map: &BTreeMap<String, String>,
    ) {
        let new_keys: Vec<String> = per_handler
            .keys()
            .filter(|k| !before.contains(*k) && map.contains_key(*k))
            .cloned()
            .collect();
        for k in new_keys {
            if let Some(v) = per_handler.remove(&k) {
                per_handler.insert(map[&k].clone(), v);
            }
        }
    }
    rekey(&mut program.availability.per_handler, &mark.avail_keys, &map);
    rekey(&mut program.targets.per_handler, &mark.target_keys, &map);

    map.into_iter().collect()
}

/// The binder-aware rewriting walk. `bound` carries the variables
/// currently shadowing module names, mirroring the resolver's scoping.
struct Renamer<'a> {
    map: &'a BTreeMap<String, String>,
}

impl Renamer<'_> {
    fn name(&self, n: &str) -> String {
        self.map.get(n).cloned().unwrap_or_else(|| n.to_string())
    }

    fn rename_in_place(&self, n: &mut String) {
        if let Some(q) = self.map.get(n.as_str()) {
            *n = q.clone();
        }
    }

    fn body(&self, body: &mut [BodyAtom], bound: &mut BTreeSet<String>) {
        for atom in body {
            match atom {
                BodyAtom::Scan { rel, terms } => {
                    self.rename_in_place(rel);
                    for t in terms.iter() {
                        if let Term::Var(v) = t {
                            bound.insert(v.clone());
                        }
                    }
                }
                BodyAtom::Neg { rel, args } => {
                    self.rename_in_place(rel);
                    for e in args {
                        self.expr(e, bound);
                    }
                }
                BodyAtom::Guard(e) => self.expr(e, bound),
                BodyAtom::Let { var, expr } => {
                    self.expr(expr, bound);
                    bound.insert(var.clone());
                }
                BodyAtom::Flatten { var, set } => {
                    self.expr(set, bound);
                    bound.insert(var.clone());
                }
            }
        }
    }

    fn select(&self, sel: &mut Select, outer: &BTreeSet<String>) {
        let mut bound = outer.clone();
        self.body(&mut sel.body, &mut bound);
        for e in &mut sel.projection {
            self.expr(e, &bound);
        }
    }

    fn stmts(&self, stmts: &mut [Stmt], bound: &BTreeSet<String>) {
        for stmt in stmts {
            match stmt {
                Stmt::Merge(target, e) => {
                    self.expr(e, bound);
                    match target {
                        MergeTarget::Scalar(name) => self.rename_in_place(name),
                        MergeTarget::TableField { table, key, .. } => {
                            self.rename_in_place(table);
                            self.expr(key, bound);
                        }
                    }
                }
                Stmt::Assign(target, e) => {
                    self.expr(e, bound);
                    match target {
                        AssignTarget::Scalar(name) => self.rename_in_place(name),
                        AssignTarget::TableField { table, key, .. } => {
                            self.rename_in_place(table);
                            self.expr(key, bound);
                        }
                    }
                }
                Stmt::Insert { table, values } => {
                    self.rename_in_place(table);
                    for e in values {
                        self.expr(e, bound);
                    }
                }
                Stmt::Delete { table, key } => {
                    self.rename_in_place(table);
                    self.expr(key, bound);
                }
                Stmt::Send { mailbox, select } => {
                    self.rename_in_place(mailbox);
                    self.select(select, bound);
                }
                Stmt::Return(e) => self.expr(e, bound),
                Stmt::If { cond, then, els } => {
                    self.expr(cond, bound);
                    self.stmts(then, bound);
                    self.stmts(els, bound);
                }
                Stmt::ForEach { select, stmts } => {
                    let mut inner = bound.clone();
                    self.body(&mut select.body, &mut inner);
                    for e in &mut select.projection {
                        self.expr(e, &inner);
                    }
                    self.stmts(stmts, &inner);
                }
                Stmt::ClearMailbox(name) => self.rename_in_place(name),
            }
        }
    }

    fn invariant(&self, inv: &mut Invariant) {
        match inv {
            Invariant::NonNegative(name) => self.rename_in_place(name),
            Invariant::HasKey { table, .. } => self.rename_in_place(table),
        }
    }

    fn expr(&self, e: &mut Expr, bound: &BTreeSet<String>) {
        match e {
            Expr::Var(name) => {
                // A bound variable shadows the module declaration, exactly
                // as the resolver will later prefer `bound` over scalars.
                if !bound.contains(name.as_str()) {
                    self.rename_in_place(name);
                }
            }
            Expr::Scalar(name) => self.rename_in_place(name),
            Expr::Const(_) => {}
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                self.expr(l, bound);
                self.expr(r, bound);
            }
            Expr::Contains(l, r) => {
                self.expr(l, bound);
                self.expr(r, bound);
            }
            Expr::Not(inner) | Expr::Len(inner) | Expr::Index(inner, _) => {
                self.expr(inner, bound)
            }
            Expr::Tuple(items) | Expr::SetBuild(items) => {
                for i in items {
                    self.expr(i, bound);
                }
            }
            Expr::FieldOf { table, key, .. }
            | Expr::RowOf { table, key }
            | Expr::HasKey { table, key } => {
                self.rename_in_place(table);
                self.expr(key, bound);
            }
            Expr::Call(name, args) => {
                self.rename_in_place(name);
                for a in args {
                    self.expr(a, bound);
                }
            }
            Expr::CollectSet(sel) => self.select(sel, bound),
        }
    }
}
