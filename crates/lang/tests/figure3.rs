//! The flagship front-end test: Figure 3 of the paper, written in textual
//! HydroLogic, parses to *exactly* the `Program` the builder API constructs
//! (`hydro_core::examples::covid_program`) — tables, rules, handlers and
//! all three declarative facets included.

use hydro_core::examples::{cart_program, covid_program_with_vaccines};
use hydro_core::Value;
use hydro_lang::{parse_program, print_program};

/// Figure 3, transliterated. Kept in sync with
/// `hydro_core::examples::covid_program_with_vaccines(100)`.
const FIGURE_3: &str = r#"
# Simple COVID-19 Tracker App in Pythonic HydroLogic (Figure 3)
table people(pid, country, contacts: set, covid: flag, vaccinated: flag,
             key=pid, partition=country)
var vaccine_count = 100
import covid_predict

# query transitive: the recursive contact closure (monotone).
query contact_pairs(p, p1):
  for people(p, _, cs, _, _)
  for p1 in cs

query transitive(p, p1):
  for contact_pairs(p, p1)

query transitive(p, p2):
  for transitive(p, p1)
  for contact_pairs(p1, p2)

on add_person(pid):
  insert people(pid, "", {}, false, false)
  return "OK"

on add_contact(id1, id2):
  people[id1].contacts.merge(id2)
  people[id2].contacts.merge(id1)
  return "OK"

on trace(pid):
  return {p2 for transitive(pid, p2)}

on diagnosed(pid):
  people[pid].covid.merge(true)
  send alert {p2 for transitive(pid, p2)}
  return "OK"

on likelihood(pid):
  return covid_predict(people[pid])

on vaccinate(pid) with serializable require vaccine_count >= 0, people.has_key(pid):
  people[pid].vaccinated.merge(true)
  vaccine_count := vaccine_count - 1
  return "OK"

availability:
  default: domain=az, failures=2
  likelihood: domain=az, failures=1

target:
  default: latency=100ms, cost=0.01
  likelihood: cost=0.1, processor=gpu
"#;

#[test]
fn figure_3_parses_to_the_builder_program() {
    let parsed = parse_program(FIGURE_3).unwrap_or_else(|e| panic!("{e}"));
    let built = covid_program_with_vaccines(100);
    assert_eq!(parsed.tables, built.tables, "data model");
    assert_eq!(parsed.scalars, built.scalars, "scalars");
    assert_eq!(parsed.rules, built.rules, "queries");
    assert_eq!(parsed.handlers, built.handlers, "handlers");
    assert_eq!(parsed.availability, built.availability, "A facet");
    assert_eq!(parsed.targets, built.targets, "T facet");
    assert_eq!(parsed.udfs, built.udfs, "udf imports");
    assert_eq!(parsed, built, "whole program");
}

#[test]
fn figure_3_round_trips_through_the_printer() {
    let parsed = parse_program(FIGURE_3).unwrap();
    let printed = print_program(&parsed).unwrap();
    let reparsed = parse_program(&printed)
        .unwrap_or_else(|e| panic!("printed program failed to reparse: {e}\n---\n{printed}"));
    assert_eq!(reparsed, parsed);
    // And the printer is a fixpoint.
    assert_eq!(print_program(&reparsed).unwrap(), printed);
}

#[test]
fn parsed_figure_3_runs_end_to_end() {
    use hydro_core::interp::Transducer;
    let program = parse_program(FIGURE_3).unwrap();
    let mut app = Transducer::new(program).unwrap();
    for pid in 1..=4 {
        app.enqueue_ok("add_person", vec![Value::Int(pid)]);
    }
    app.tick().unwrap();
    app.enqueue_ok("add_contact", vec![Value::Int(1), Value::Int(2)]);
    app.enqueue_ok("add_contact", vec![Value::Int(2), Value::Int(3)]);
    app.tick().unwrap();
    app.enqueue_ok("diagnosed", vec![Value::Int(1)]);
    let out = app.tick().unwrap();
    let alerted: std::collections::BTreeSet<i64> = out
        .sends
        .iter()
        .filter(|s| s.mailbox == "alert")
        .filter_map(|s| s.row[0].as_int())
        .collect();
    assert!(alerted.contains(&2) && alerted.contains(&3));
    assert!(!alerted.contains(&4));
}

#[test]
fn cart_program_prints_and_reparses_identically() {
    let built = cart_program();
    let printed = print_program(&built).unwrap();
    let parsed = parse_program(&printed)
        .unwrap_or_else(|e| panic!("printed cart program failed to reparse: {e}\n---\n{printed}"));
    assert_eq!(parsed, built);
}

#[test]
fn monotonicity_classification_survives_the_text_pipeline() {
    // The analysis stack must see the same facts whether the program came
    // from the builder or from text: vaccinate stays non-monotone (the
    // counter decrement), add_contact stays monotone.
    let program = parse_program(FIGURE_3).unwrap();
    let report = hydro_analysis::classify(&program);
    let vaccinate = report.for_handler("vaccinate").expect("classified");
    assert!(
        !vaccinate.coordination_free(),
        "counter decrement is non-monotone"
    );
    let add_contact = report.for_handler("add_contact").expect("classified");
    assert!(
        add_contact.coordination_free(),
        "set merges are monotone"
    );
}
