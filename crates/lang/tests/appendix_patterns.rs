//! Appendix A.2 (promises/futures) in *textual* HydroLogic.
//!
//! The paper's listing waits across ticks with a condition handler over a
//! futures mailbox. This test writes that pattern in the surface syntax —
//! exercising handler-less mailboxes, `when` triggers, aggregation
//! queries, comprehensions over mailboxes, and `clear` — then runs it on
//! the transducer with a loop that routes sends back as next-tick
//! messages (the "unbounded delay" of §3.1, minimized to one tick).

use hydro_core::interp::Transducer;
use hydro_core::Value;
use hydro_lang::{parse_program, print_program};

const PROMISES: &str = r#"
# Ray-style promises/futures (Appendix A.2), textual HydroLogic.
# (`result` needs no declaration: like Fig. 3's `alert`, it is an
# external endpoint reached only by `send`.)
mailbox futures(h, r)
var waiting = false
import f

# total() folds the resolved futures.
query total() = sum(r):
  for futures(h, r)

on start():
  send spawn(0)
  send spawn(1)
  send spawn(2)
  send spawn(3)
  waiting := true

# Each promise resolves remotely and lands in the futures mailbox.
on spawn(i):
  send futures(i, f(i))

# `on futures(...).len() >= 4` of the paper, as a condition trigger.
on gather when waiting == true and {h for futures(h, r)}.len() >= 4:
  send result {t for total(t)}
  clear futures
  waiting := false
"#;

/// Route every tick's sends back into the transducer's mailboxes,
/// delivering them at the next tick.
fn pump(app: &mut Transducer, max_ticks: usize) -> Vec<(String, Vec<Value>)> {
    let mut externals = Vec::new();
    for _ in 0..max_ticks {
        let out = app.tick().expect("tick");
        let mut quiescent = out.sends.is_empty();
        for send in out.sends {
            if app.has_mailbox(&send.mailbox) {
                app.enqueue_ok(&send.mailbox, send.row);
            } else {
                externals.push((send.mailbox, send.row));
                quiescent = false;
            }
        }
        if quiescent && app.pending("start") == 0 {
            break;
        }
    }
    externals
}

#[test]
fn promises_fan_out_and_gather_in_text() {
    let program = parse_program(PROMISES).unwrap_or_else(|e| panic!("{e}"));
    let mut app = Transducer::new(program).unwrap();
    app.register_udf("f", |args| {
        Value::Int(args[0].as_int().unwrap() * 10)
    });
    app.enqueue_ok("start", vec![]);
    let externals = pump(&mut app, 12);

    // The gather handler fired exactly once, with sum 0+10+20+30.
    let results: Vec<_> = externals
        .iter()
        .filter(|(mb, _)| mb == "result")
        .collect();
    assert_eq!(results.len(), 1, "gather fires once: {externals:?}");
    assert_eq!(results[0].1[0], Value::Int(60));
    // The barrier reset: futures cleared, waiting false.
    assert_eq!(app.scalar("waiting"), Some(&Value::Bool(false)));
}

#[test]
fn promises_gather_waits_for_full_fanout() {
    // Resolve only 3 of 4 promises: the condition handler must not fire.
    let program = parse_program(PROMISES).unwrap();
    let mut app = Transducer::new(program).unwrap();
    app.register_udf("f", |args| Value::Int(args[0].as_int().unwrap()));
    for h in 0..3i64 {
        app.enqueue_ok("futures", vec![Value::Int(h), Value::Int(h)]);
    }
    // Set waiting via start's assignment but strip the spawns by never
    // routing sends.
    app.enqueue_ok("start", vec![]);
    for _ in 0..4 {
        app.tick().unwrap();
    }
    assert_eq!(
        app.scalar("waiting"),
        Some(&Value::Bool(true)),
        "3 < 4 resolved futures: the barrier holds"
    );
}

#[test]
fn promises_program_round_trips() {
    let program = parse_program(PROMISES).unwrap();
    let printed = print_program(&program).unwrap();
    let reparsed = parse_program(&printed)
        .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
    assert_eq!(reparsed, program);
}
