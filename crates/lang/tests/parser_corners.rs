//! Grammar-corner and diagnostics tests for the textual front-end.
//!
//! Each test exercises one syntactic form or one class of error; error
//! tests assert on the message content so diagnostics stay useful.

use hydro_core::ast::{
    AggFun, BodyAtom, ColumnKind, Expr, Stmt, Term, Trigger,
};
use hydro_core::facets::{ConsistencyLevel, FailureDomain, Processor};
use hydro_core::value::{LatticeKind, Value};
use hydro_lang::{parse_program, print_program, LangError};

fn parse_err(src: &str) -> String {
    match parse_program(src) {
        Ok(_) => panic!("expected a parse/resolve error for:\n{src}"),
        Err(e) => e.to_string(),
    }
}

// ---------------------------------------------------------------- data model

#[test]
fn default_key_is_first_column() {
    let p = parse_program("table t(a, b)\n").unwrap();
    assert_eq!(p.tables[0].key, vec![0]);
}

#[test]
fn composite_keys_parse() {
    let p = parse_program("table t(a, b, c, key=(a, b))\n").unwrap();
    assert_eq!(p.tables[0].key, vec![0, 1]);
}

#[test]
fn all_lattice_kinds_parse() {
    let p = parse_program(
        "table t(k, a: set, b: flag, c: max, d: min, e: lww, f: counter, g: map(max))\n",
    )
    .unwrap();
    let kinds: Vec<&ColumnKind> = p.tables[0].columns.iter().map(|c| &c.kind).collect();
    assert_eq!(kinds[0], &ColumnKind::Atom);
    assert_eq!(kinds[1], &ColumnKind::Lattice(LatticeKind::SetUnion));
    assert_eq!(kinds[2], &ColumnKind::Lattice(LatticeKind::BoolOr));
    assert_eq!(kinds[3], &ColumnKind::Lattice(LatticeKind::MaxInt));
    assert_eq!(kinds[4], &ColumnKind::Lattice(LatticeKind::MinInt));
    assert_eq!(kinds[5], &ColumnKind::Lattice(LatticeKind::Lww));
    assert_eq!(kinds[6], &ColumnKind::Lattice(LatticeKind::GCounter));
    assert_eq!(
        kinds[7],
        &ColumnKind::Lattice(LatticeKind::MapUnion(Box::new(LatticeKind::MaxInt)))
    );
}

#[test]
fn long_kind_aliases_parse() {
    let p = parse_program("table t(k, a: set_union, b: bool_or, c: max_int, d: gcounter)\n")
        .unwrap();
    assert!(matches!(
        p.tables[0].columns[1].kind,
        ColumnKind::Lattice(LatticeKind::SetUnion)
    ));
}

#[test]
fn unknown_kind_is_an_error() {
    let e = parse_err("table t(k, a: zorp)\n");
    assert!(e.contains("unknown column kind"), "{e}");
}

#[test]
fn duplicate_table_is_an_error() {
    let e = parse_err("table t(a)\ntable t(b)\n");
    assert!(e.contains("declared twice"), "{e}");
}

#[test]
fn bad_key_column_is_an_error() {
    let e = parse_err("table t(a, key=nope)\n");
    assert!(e.contains("key column"), "{e}");
}

#[test]
fn lattice_var_gets_bottom_init() {
    let p = parse_program("var hi: max\n").unwrap();
    assert_eq!(p.scalars[0].lattice, Some(LatticeKind::MaxInt));
    assert_eq!(p.scalars[0].init, Value::Int(i64::MIN));
}

#[test]
fn var_literals_parse() {
    let p = parse_program(
        "var a = 3\nvar b = -7\nvar c = \"x\"\nvar d = true\nvar e = {1, 2}\nvar f = (1, \"a\")\n",
    )
    .unwrap();
    assert_eq!(p.scalars[1].init, Value::Int(-7));
    assert_eq!(
        p.scalars[4].init,
        Value::set_of([Value::Int(1), Value::Int(2)])
    );
    assert_eq!(
        p.scalars[5].init,
        Value::tuple([Value::Int(1), Value::from("a")])
    );
}

#[test]
fn mailbox_arity_from_fields() {
    let p = parse_program("mailbox results(req, ix, val)\n").unwrap();
    assert_eq!(p.mailboxes[0].arity, 3);
}

// ------------------------------------------------------------------- queries

#[test]
fn aggregation_queries_parse() {
    let p = parse_program(
        "table agents(aid)\nquery acount() = count(a):\n  for agents(a)\n",
    )
    .unwrap();
    assert_eq!(p.agg_rules.len(), 1);
    assert_eq!(p.agg_rules[0].agg, AggFun::Count);
    assert!(p.agg_rules[0].group_exprs.is_empty());
}

#[test]
fn negation_and_guards_parse() {
    let p = parse_program(
        "table e(a, b)\nquery only_a(x):\n  for e(x, y)\n  not e(y, x)\n  if x != y\n",
    )
    .unwrap();
    let body = &p.rules[0].body;
    assert!(matches!(body[0], BodyAtom::Scan { .. }));
    assert!(matches!(body[1], BodyAtom::Neg { .. }));
    assert!(matches!(body[2], BodyAtom::Guard(_)));
}

#[test]
fn let_bindings_parse() {
    let p = parse_program("table e(a)\nquery q(y):\n  for e(x)\n  let y = x + 1\n").unwrap();
    assert!(matches!(p.rules[0].body[1], BodyAtom::Let { .. }));
}

#[test]
fn constant_terms_parse() {
    let p = parse_program("table e(a, b)\nquery q(x):\n  for e(x, 3)\n").unwrap();
    let BodyAtom::Scan { terms, .. } = &p.rules[0].body[0] else {
        panic!("expected scan");
    };
    assert_eq!(terms[1], Term::Const(Value::Int(3)));
}

#[test]
fn scan_arity_is_checked() {
    let e = parse_err("table e(a, b)\nquery q(x):\n  for e(x)\n");
    assert!(e.contains("arity 2"), "{e}");
}

#[test]
fn scan_of_unknown_relation_is_an_error() {
    let e = parse_err("query q(x):\n  for nothing(x)\n");
    assert!(e.contains("undeclared relation"), "{e}");
}

#[test]
fn unbound_head_variable_is_an_error() {
    let e = parse_err("table e(a)\nquery q(zz):\n  for e(x)\n");
    assert!(e.contains("unbound identifier `zz`"), "{e}");
}

#[test]
fn empty_query_body_is_an_error() {
    let e = parse_err("query q(x):\n");
    assert!(e.contains("expected"), "{e}");
}

// ------------------------------------------------------------------ handlers

#[test]
fn condition_handlers_parse() {
    let p = parse_program(
        "mailbox futures(h, r)\nvar waiting = false\n\
         on gather when waiting == true and {h for futures(h, r)}.len() >= 4:\n  clear futures\n",
    )
    .unwrap();
    let h = &p.handlers[0];
    assert!(matches!(h.trigger, Trigger::OnCondition(_)));
    assert!(h.params.is_empty());
    assert_eq!(h.body, vec![Stmt::ClearMailbox("futures".into())]);
}

#[test]
fn consistency_levels_parse_inline() {
    for (txt, level) in [
        ("eventual", ConsistencyLevel::Eventual),
        ("causal", ConsistencyLevel::Causal),
        ("snapshot", ConsistencyLevel::Snapshot),
        ("sequential", ConsistencyLevel::Sequential),
        ("serializable", ConsistencyLevel::Serializable),
    ] {
        let src = format!("var n = 0\non f(x) with {txt}:\n  n := x\n");
        let p = parse_program(&src).unwrap();
        assert_eq!(p.handlers[0].consistency.as_ref().unwrap().level, level);
    }
}

#[test]
fn consistency_block_applies_to_handlers() {
    let p = parse_program(
        "var n = 0\non f(x):\n  n := x\n\nconsistency:\n  default: causal\n  f: serializable\n",
    )
    .unwrap();
    assert_eq!(p.default_consistency.level, ConsistencyLevel::Causal);
    assert_eq!(
        p.handlers[0].consistency.as_ref().unwrap().level,
        ConsistencyLevel::Serializable
    );
}

#[test]
fn consistency_block_rejects_unknown_handler() {
    let e = parse_err("consistency:\n  ghost: causal\n");
    assert!(e.contains("unknown handler"), "{e}");
}

#[test]
fn double_consistency_spec_is_an_error() {
    let e = parse_err(
        "var n = 0\non f(x) with causal:\n  n := x\n\nconsistency:\n  f: serializable\n",
    );
    assert!(e.contains("already has"), "{e}");
}

#[test]
fn invariant_requires_handler_param() {
    let e = parse_err(
        "table t(k)\nvar n = 0\n\
         on f(x) with serializable require t.has_key(zz):\n  n := x\n",
    );
    assert!(e.contains("`zz` is not one"), "{e}");
}

#[test]
fn param_shadowing_scalar_is_an_error() {
    let e = parse_err("var n = 0\non f(n):\n  return n\n");
    assert!(e.contains("shadows"), "{e}");
}

// ---------------------------------------------------------------- statements

#[test]
fn foreach_statements_parse() {
    let p = parse_program(
        "table carts(s, items: set)\nmailbox out(s)\n\
         on sweep(x):\n  for carts(s, items), if s != x:\n    send out(s)\n",
    )
    .unwrap();
    let Stmt::ForEach { select, stmts } = &p.handlers[0].body[0] else {
        panic!("expected ForEach, got {:?}", p.handlers[0].body[0]);
    };
    assert_eq!(select.body.len(), 2);
    assert_eq!(stmts.len(), 1);
}

#[test]
fn foreach_flatten_form_parses() {
    let p = parse_program(
        "table t(k, items: set)\nmailbox out(v)\n\
         on fan(k):\n  for x in t[k].items:\n    send out(x)\n",
    )
    .unwrap();
    let Stmt::ForEach { select, .. } = &p.handlers[0].body[0] else {
        panic!("expected ForEach");
    };
    assert!(matches!(select.body[0], BodyAtom::Flatten { .. }));
}

#[test]
fn delete_and_clear_parse() {
    let p = parse_program(
        "table t(k)\nmailbox mb(x)\non gc(k):\n  delete t[k]\n  clear mb\n",
    )
    .unwrap();
    assert!(matches!(p.handlers[0].body[0], Stmt::Delete { .. }));
    assert!(matches!(p.handlers[0].body[1], Stmt::ClearMailbox(_)));
}

#[test]
fn if_else_parses() {
    let p = parse_program(
        "var n = 0\non f(x):\n  if x > 0:\n    n := x\n  else:\n    n := 0 - x\n",
    )
    .unwrap();
    let Stmt::If { then, els, .. } = &p.handlers[0].body[0] else {
        panic!("expected If");
    };
    assert_eq!((then.len(), els.len()), (1, 1));
}

#[test]
fn merge_into_atom_column_is_an_error() {
    let e = parse_err("table t(k, v)\non f(k):\n  t[k].v.merge(1)\n");
    assert!(e.contains("not lattice-typed"), "{e}");
}

#[test]
fn assign_to_lattice_column_is_an_error() {
    let e = parse_err("table t(k, v: set)\non f(k):\n  t[k].v := {}\n");
    assert!(e.contains("use `.merge"), "{e}");
}

#[test]
fn merge_into_bare_scalar_is_an_error() {
    let e = parse_err("var n = 0\non f(x):\n  n.merge(x)\n");
    assert!(e.contains("not lattice-typed"), "{e}");
}

#[test]
fn assign_to_lattice_scalar_is_an_error() {
    let e = parse_err("var hi: max\non f(x):\n  hi := x\n");
    assert!(e.contains("use `.merge"), "{e}");
}

#[test]
fn insert_arity_is_checked() {
    let e = parse_err("table t(a, b)\non f(x):\n  insert t(x)\n");
    assert!(e.contains("2 columns"), "{e}");
}

#[test]
fn unknown_udf_call_is_an_error() {
    let e = parse_err("on f(x):\n  return mystery(x)\n");
    assert!(e.contains("unknown function"), "{e}");
}

#[test]
fn imported_udf_call_parses() {
    let p = parse_program("import predict\non f(x):\n  return predict(x)\n").unwrap();
    assert!(matches!(&p.handlers[0].body[0], Stmt::Return(Expr::Call(n, _)) if n == "predict"));
}

// --------------------------------------------------------------- expressions

#[test]
fn precedence_is_conventional() {
    let p = parse_program("var r = 0\non f(a, b, c):\n  r := a + b * c\n").unwrap();
    let Stmt::Assign(_, e) = &p.handlers[0].body[0] else {
        panic!();
    };
    // a + (b * c), not (a + b) * c.
    let printed = format!("{e:?}");
    assert!(printed.starts_with("Arith(Add"), "{printed}");
}

#[test]
fn parens_override_precedence() {
    let p = parse_program("var r = 0\non f(a, b, c):\n  r := (a + b) * c\n").unwrap();
    let Stmt::Assign(_, e) = &p.handlers[0].body[0] else {
        panic!();
    };
    assert!(format!("{e:?}").starts_with("Arith(Mul"), "{e:?}");
}

#[test]
fn in_operator_becomes_contains() {
    let p = parse_program("table t(k, s: set)\nvar r = false\non f(k, x):\n  r := x in t[k].s\n")
        .unwrap();
    let Stmt::Assign(_, Expr::Contains(set, item)) = &p.handlers[0].body[0] else {
        panic!("expected Contains, got {:?}", p.handlers[0].body[0]);
    };
    assert!(matches!(**set, Expr::FieldOf { .. }));
    assert!(matches!(**item, Expr::Var(_)));
}

#[test]
fn row_and_field_references_need_declared_tables() {
    let e = parse_err("var r = 0\non f(x):\n  r := ghost[x].v\n");
    assert!(e.contains("constant index"), "{e}");
}

#[test]
fn tuple_projection_parses() {
    let p = parse_program("var r = 0\non f(pair):\n  r := pair[1]\n").unwrap();
    assert!(matches!(
        &p.handlers[0].body[0],
        Stmt::Assign(_, Expr::Index(_, 1))
    ));
}

#[test]
fn scalar_reads_resolve_to_scalar_nodes() {
    let p = parse_program("var n = 0\non f(x):\n  n := n + x\n").unwrap();
    let Stmt::Assign(_, Expr::Arith(_, l, r)) = &p.handlers[0].body[0] else {
        panic!();
    };
    assert_eq!(**l, Expr::Scalar("n".into()), "free `n` reads the scalar");
    assert_eq!(**r, Expr::Var("x".into()), "bound `x` stays a variable");
}

#[test]
fn scan_bindings_shadow_scalars() {
    // Inside the comprehension, `n` is bound by the scan and must NOT
    // resolve to the scalar.
    let p = parse_program(
        "table t(n)\nvar n = 0\nmailbox out(v)\non f(x):\n  send out {n for t(n)}\n",
    )
    .unwrap();
    let Stmt::Send { select, .. } = &p.handlers[0].body[0] else {
        panic!();
    };
    assert_eq!(select.projection[0], Expr::Var("n".into()));
}

#[test]
fn unbound_identifier_is_an_error() {
    let e = parse_err("var r = 0\non f(x):\n  r := mystery\n");
    assert!(e.contains("unbound identifier `mystery`"), "{e}");
}

#[test]
fn empty_set_is_a_constant() {
    let p = parse_program("var r = {}\n").unwrap();
    assert_eq!(p.scalars[0].init, Value::empty_set());
}

#[test]
fn nonconst_set_builds_setbuild() {
    let p = parse_program("table t(k, s: set)\non f(k, x):\n  t[k].s.merge({x})\n").unwrap();
    let Stmt::Merge(_, e) = &p.handlers[0].body[0] else {
        panic!();
    };
    assert_eq!(*e, Expr::SetBuild(vec![Expr::Var("x".into())]));
}

#[test]
fn comprehension_with_guard_parses() {
    let p = parse_program(
        "table e(a, b)\nmailbox out(x)\non f(y):\n  send out {a for e(a, b) if b == y}\n",
    )
    .unwrap();
    let Stmt::Send { select, .. } = &p.handlers[0].body[0] else {
        panic!();
    };
    assert_eq!(select.body.len(), 2);
}

#[test]
fn multi_column_comprehension_head_flattens() {
    let p = parse_program(
        "table e(a, b)\nmailbox out(x, y)\non f(k):\n  send out {(a, b) for e(a, b)}\n",
    )
    .unwrap();
    let Stmt::Send { select, .. } = &p.handlers[0].body[0] else {
        panic!();
    };
    assert_eq!(select.projection.len(), 2, "tuple head → two row columns");
}

// -------------------------------------------------------------- facet blocks

#[test]
fn availability_domains_parse() {
    for (txt, dom) in [
        ("vm", FailureDomain::Vm),
        ("rack", FailureDomain::Rack),
        ("dc", FailureDomain::DataCenter),
        ("az", FailureDomain::Az),
    ] {
        let src = format!("availability:\n  default: domain={txt}, failures=1\n");
        let p = parse_program(&src).unwrap();
        assert_eq!(p.availability.default.domain, dom);
    }
}

#[test]
fn availability_requires_both_keys() {
    let e = parse_err("availability:\n  default: domain=az\n");
    assert!(e.contains("both"), "{e}");
}

#[test]
fn target_costs_convert_to_milli_units() {
    let p = parse_program("target:\n  default: cost=0.01\n  a: cost=2\n  b: cost=1.5\n").unwrap();
    assert_eq!(p.targets.default.cost_milli, Some(10));
    assert_eq!(p.targets.per_handler["a"].cost_milli, Some(2000));
    assert_eq!(p.targets.per_handler["b"].cost_milli, Some(1500));
}

#[test]
fn latency_accepts_ms_suffix() {
    let p = parse_program("target:\n  default: latency=250ms\n").unwrap();
    assert_eq!(p.targets.default.latency_ms, Some(250));
}

#[test]
fn processor_classes_parse() {
    let p = parse_program("target:\n  x: processor=gpu\n  y: processor=cpu\n").unwrap();
    assert_eq!(p.targets.per_handler["x"].processor, Some(Processor::Gpu));
    assert_eq!(p.targets.per_handler["y"].processor, Some(Processor::Cpu));
}

// ------------------------------------------------------------ print inverses

#[test]
fn printer_is_idempotent_on_fixtures() {
    for src in [
        "table t(a, b, key=b)\nvar n = 3\non f(x):\n  n := n + x\n",
        "table e(a, b)\nquery tc(x, y):\n  for e(x, y)\nquery tc(x, z):\n  for tc(x, y)\n  for e(y, z)\n",
        "mailbox mb(a)\nvar w = false\non g when w == false:\n  clear mb\n",
    ] {
        let p = parse_program(src).unwrap();
        let once = print_program(&p).unwrap();
        let twice = print_program(&parse_program(&once).unwrap()).unwrap();
        assert_eq!(once, twice, "printer fixpoint for:\n{src}");
    }
}

#[test]
fn errors_carry_positions() {
    let LangError::Parse(e) = parse_program("var x = @\n").unwrap_err() else {
        panic!("expected parse error");
    };
    assert_eq!(e.line, 1);
    assert!(e.col >= 8, "col {} points at the offending token", e.col);
}

// -------------------------------------------------- functional dependencies

#[test]
fn fd_entries_parse_to_column_indexes() {
    let p = parse_program("table emp(id, dept, region, fd=(dept -> region))\n").unwrap();
    let fds = &p.tables[0].fds;
    assert_eq!(fds.len(), 1);
    assert_eq!(fds[0].determinant, vec![1]);
    assert_eq!(fds[0].dependent, vec![2]);
}

#[test]
fn multi_column_fds_parse() {
    let p = parse_program("table t(a, b, c, d, fd=(a, b -> c, d))\n").unwrap();
    assert_eq!(p.tables[0].fds[0].determinant, vec![0, 1]);
    assert_eq!(p.tables[0].fds[0].dependent, vec![2, 3]);
}

#[test]
fn several_fds_accumulate() {
    let p = parse_program("table t(a, b, c, fd=(a -> b), fd=(b -> c))\n").unwrap();
    assert_eq!(p.tables[0].fds.len(), 2);
}

#[test]
fn fds_round_trip_through_the_printer() {
    let src = "table emp(id, dept, region, key=id, fd=(dept -> region))\n";
    let p = parse_program(src).unwrap();
    let printed = print_program(&p).unwrap();
    assert_eq!(parse_program(&printed).unwrap(), p);
    assert!(printed.contains("fd=(dept -> region)"));
}

#[test]
fn unknown_fd_column_is_rejected() {
    let msg = parse_err("table t(a, b, fd=(a -> nope))\n");
    assert!(msg.contains("fd column"), "{msg}");
}
