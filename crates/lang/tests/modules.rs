//! Module (scoped-block) desugaring tests (§3.1: "blocks and modules are
//! purely syntactic sugar").
//!
//! Each test pins one scoping rule: qualification of declarations, free
//! references, binder shadowing, outer-name reachability, nesting, facet
//! re-keying, printer round-trips, and end-to-end execution of a program
//! whose handlers live inside a module.

use hydro_core::interp::Transducer;
use hydro_core::Value;
use hydro_lang::{parse_program, print_program};

#[test]
fn module_qualifies_declarations_and_internal_references() {
    let p = parse_program(
        "
module inv:
  table stock(item, count)
  var issued = 0

  on take(item):
    issued := issued + 1
    return stock[item].count
",
    )
    .unwrap();
    assert_eq!(p.tables[0].name, "inv::stock");
    assert_eq!(p.scalars[0].name, "inv::issued");
    assert_eq!(p.handlers[0].name, "inv::take");
    // Internal references were rewritten to the qualified names.
    let printed = print_program(&p).unwrap();
    assert!(printed.contains("inv::issued := inv::issued + 1"));
    assert!(printed.contains("inv::stock["));
}

#[test]
fn binders_shadow_module_declarations() {
    let p = parse_program(
        "
module m:
  table t(a, b)
  var b = 7

  query q(a, b):
    for t(a, b)
",
    )
    .unwrap();
    // The scan binds `b`, shadowing the module scalar: the head projects
    // the *binding*, not `m::b`.
    let printed = print_program(&p).unwrap();
    assert!(printed.contains("query m::q(a, b)"));
    assert!(printed.contains("for m::t(a, b)"));
    assert!(!printed.contains("m::q(a, m::b)"));
}

#[test]
fn outer_names_stay_reachable_inside_modules() {
    let p = parse_program(
        "
var total = 0

module m:
  on bump():
    total := total + 1
    return total
",
    )
    .unwrap();
    // `total` is declared outside the module, so the handler mutates the
    // program-global scalar, unqualified.
    let printed = print_program(&p).unwrap();
    assert!(printed.contains("total := total + 1"));
    assert!(!printed.contains("m::total"));
}

#[test]
fn module_declarations_shadow_outer_names() {
    let p = parse_program(
        "
var total = 0

module m:
  var total = 100

  on bump():
    total := total + 1
    return total

on outer_read():
  return total
",
    )
    .unwrap();
    let printed = print_program(&p).unwrap();
    // Inside the module the shadowing declaration wins…
    assert!(printed.contains("m::total := m::total + 1"));
    // …and after the block the outer name is itself again.
    assert!(printed.contains("on outer_read()"));
    let outer = printed.split("on outer_read").nth(1).unwrap();
    assert!(outer.contains("return total"));
    assert!(!outer.contains("m::total"));
}

#[test]
fn qualified_names_reach_into_modules_from_outside() {
    let p = parse_program(
        "
module m:
  table t(k, v)

  query pairs(k, v):
    for t(k, v)

on read(k):
  return {v for m::pairs(k, v)}
",
    )
    .unwrap();
    assert_eq!(p.rules[0].head, "m::pairs");
    // The outer handler's scan resolved against the qualified head.
    let printed = print_program(&p).unwrap();
    assert!(printed.contains("for m::pairs(k, v)}"));
}

#[test]
fn nested_modules_compose_qualification() {
    let p = parse_program(
        "
module a:
  module b:
    var x = 1

  on get():
    return b::x
",
    )
    .unwrap();
    assert_eq!(p.scalars[0].name, "a::b::x");
    let printed = print_program(&p).unwrap();
    assert!(printed.contains("return a::b::x"));
}

#[test]
fn facet_entries_inside_modules_rekey_to_qualified_handlers() {
    let p = parse_program(
        "
module svc:
  on ping():
    return \"pong\"

  availability:
    ping: domain=az, failures=1

  target:
    ping: latency=5ms
",
    )
    .unwrap();
    assert!(p.availability.per_handler.contains_key("svc::ping"));
    assert!(p.targets.per_handler.contains_key("svc::ping"));
    assert!(!p.availability.per_handler.contains_key("ping"));
}

#[test]
fn consistency_with_clause_invariants_qualify() {
    let p = parse_program(
        "
module inv:
  table stock(item, taken: flag)
  var count = 3

  on take(item) with serializable require count >= 0, stock.has_key(item):
    stock[item].taken.merge(true)
    count := count - 1
    return \"OK\"
",
    )
    .unwrap();
    let req = p.handlers[0].consistency.as_ref().unwrap();
    let rendered = format!("{req:?}");
    assert!(rendered.contains("inv::count"), "{rendered}");
    assert!(rendered.contains("inv::stock"), "{rendered}");
}

#[test]
fn module_programs_round_trip_through_the_printer() {
    let src = "
module inv:
  table stock(item, count)
  var issued = 0

  query low(item):
    for stock(item, c)
    if c < 3

  on take(item):
    issued := issued + 1
    return stock[item].count

on audit():
  return inv::issued
";
    let p = parse_program(src).unwrap();
    let printed = print_program(&p).unwrap();
    assert_eq!(parse_program(&printed).unwrap(), p);
}

#[test]
fn module_handlers_execute_end_to_end() {
    let p = parse_program(
        "
module counter:
  var n = 0

  on bump(by):
    n := n + by
    return n
",
    )
    .unwrap();
    let mut app = Transducer::new(p).unwrap();
    app.enqueue_ok("counter::bump", vec![Value::Int(5)]);
    app.tick().unwrap();
    app.enqueue_ok("counter::bump", vec![Value::Int(2)]);
    app.tick().unwrap();
    assert_eq!(app.scalar("counter::n"), Some(&Value::Int(7)));
}

#[test]
fn module_send_targets_qualify() {
    let p = parse_program(
        "
module m:
  mailbox box(x)

  on go():
    send box(1)
    return \"OK\"
",
    )
    .unwrap();
    let mut app = Transducer::new(p).unwrap();
    app.enqueue_ok("m::go", vec![]);
    let out = app.tick().unwrap();
    // One explicit send to the qualified mailbox (plus the handler's
    // implicit `<response>` send, addressed by the qualified handler name).
    let boxed: Vec<_> = out.sends.iter().filter(|s| s.mailbox == "m::box").collect();
    assert_eq!(boxed.len(), 1);
    assert!(out.sends.iter().any(|s| s.mailbox == "m::go@response"));
}

#[test]
fn udf_imports_inside_modules_qualify() {
    let p = parse_program(
        "
module ml:
  import predict

  on score(x):
    return predict(x)
",
    )
    .unwrap();
    assert_eq!(p.udfs, vec!["ml::predict".to_string()]);
    let mut app = Transducer::new(p).unwrap();
    app.register_udf("ml::predict", |args: &[Value]| {
        Value::Int(args[0].as_int().unwrap_or(0) * 2)
    });
    app.enqueue_ok("ml::score", vec![Value::Int(21)]);
    let out = app.tick().unwrap();
    assert_eq!(out.responses[0].value, Value::Int(42));
}

#[test]
fn qualified_module_names_are_rejected() {
    let err = parse_program("module a::b:\n  var x = 1\n").unwrap_err();
    assert!(err.to_string().contains("unqualified"), "{err}");
}

#[test]
fn unknown_declaration_inside_module_reports_module_keywords() {
    let err = parse_program("module m:\n  bogus x\n").unwrap_err();
    assert!(err.to_string().contains("module"), "{err}");
}
