//! Property tests: the printer and parser are mutually inverse.
//!
//! Programs are generated directly as IR (over a fixed data model, so the
//! static checks hold by construction), printed, reparsed, and compared.
//! Because the printer canonicalizes all-constant tuple/set literals, the
//! asserted property is the standard pair:
//!
//! * `parse(print(p))` succeeds for every generated program, and
//! * `print(parse(print(p))) == print(p)` (printer fixpoint).
//!
//! For generated programs (which avoid the canonicalized corner) we also
//! get full structural identity `parse(print(p)) == p`.

use hydro_core::ast::{
    AssignTarget, BodyAtom, CmpOp, Expr, MergeTarget, Program, Rule, Select, Stmt, Term,
};
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::value::{LatticeKind, Value};
use hydro_lang::{parse_program, print_program};
use proptest::prelude::*;

/// The fixed data model every generated program shares.
fn base_builder() -> ProgramBuilder {
    ProgramBuilder::new()
        .table(
            "t",
            vec![
                ("k", atom()),
                ("s", lat(LatticeKind::SetUnion)),
                ("f", lat(LatticeKind::BoolOr)),
                ("v", atom()),
            ],
            &["k"],
            None,
        )
        .table("e", vec![("a", atom()), ("b", atom())], &["a"], None)
        .var("n", Value::Int(0))
        .lattice_var("m", LatticeKind::MaxInt)
        .mailbox("out", 2)
}

/// Leaf expressions valid in a handler with params `x`, `y`.
fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-100i64..100).prop_map(|n| Expr::Const(Value::Int(n))),
        Just(Expr::Const(Value::Bool(true))),
        Just(Expr::Const(Value::Bool(false))),
        Just(Expr::Const(Value::Null)),
        "[a-z]{1,4}".prop_map(|s| Expr::Const(Value::Str(s))),
        Just(Expr::Var("x".into())),
        Just(Expr::Var("y".into())),
        Just(Expr::Scalar("n".into())),
        Just(Expr::Scalar("m".into())),
        Just(Expr::FieldOf {
            table: "t".into(),
            key: Box::new(Expr::Var("x".into())),
            field: "v".into(),
        }),
        Just(Expr::HasKey {
            table: "t".into(),
            key: Box::new(Expr::Var("y".into())),
        }),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Cmp(
                CmpOp::Le,
                Box::new(l),
                Box::new(r)
            )),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Arith(
                hydro_core::ast::ArithOp::Add,
                Box::new(l),
                Box::new(r)
            )),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Arith(
                hydro_core::ast::ArithOp::Mul,
                Box::new(l),
                Box::new(r)
            )),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Len(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(s, i)| Expr::Contains(Box::new(s), Box::new(i))),
            // A non-constant element keeps SetBuild from canonicalizing.
            inner
                .clone()
                .prop_map(|e| Expr::SetBuild(vec![Expr::Var("x".into()), e])),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        arb_expr().prop_map(|e| Stmt::Assign(AssignTarget::Scalar("n".into()), e)),
        arb_expr().prop_map(|e| Stmt::Merge(MergeTarget::Scalar("m".into()), e)),
        arb_expr().prop_map(|e| Stmt::Merge(
            MergeTarget::TableField {
                table: "t".into(),
                key: Expr::Var("x".into()),
                field: "s".into(),
            },
            e
        )),
        arb_expr().prop_map(|e| Stmt::Assign(
            AssignTarget::TableField {
                table: "t".into(),
                key: Expr::Var("y".into()),
                field: "v".into(),
            },
            e
        )),
        (arb_expr(), arb_expr()).prop_map(|(a, b)| Stmt::Insert {
            table: "e".into(),
            values: vec![a, b],
        }),
        arb_expr().prop_map(|key| Stmt::Delete {
            table: "t".into(),
            key,
        }),
        arb_expr().prop_map(Stmt::Return),
        (arb_expr(), arb_expr()).prop_map(|(a, b)| Stmt::Send {
            mailbox: "out".into(),
            select: Select {
                body: vec![],
                projection: vec![a, b],
            },
        }),
        Just(Stmt::Send {
            mailbox: "out".into(),
            select: Select {
                body: vec![
                    BodyAtom::Scan {
                        rel: "e".into(),
                        terms: vec![Term::Var("a".into()), Term::Var("b".into())],
                    },
                    BodyAtom::Guard(Expr::Cmp(
                        CmpOp::Ne,
                        Box::new(Expr::Var("a".into())),
                        Box::new(Expr::Var("x".into()))
                    )),
                ],
                projection: vec![Expr::Var("a".into()), Expr::Var("b".into())],
            },
        }),
        Just(Stmt::ClearMailbox("out".into())),
    ];
    simple.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(cond, then, els)| Stmt::If { cond, then, els }),
            prop::collection::vec(inner, 1..3).prop_map(|stmts| Stmt::ForEach {
                select: Select {
                    body: vec![BodyAtom::Scan {
                        rel: "e".into(),
                        terms: vec![Term::Var("a".into()), Term::Wildcard],
                    }],
                    projection: vec![],
                },
                stmts,
            }),
        ]
    })
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    prop_oneof![
        Just(Rule {
            head: "q1".into(),
            head_exprs: vec![Expr::Var("a".into())],
            body: vec![BodyAtom::Scan {
                rel: "e".into(),
                terms: vec![Term::Var("a".into()), Term::Wildcard],
            }],
        }),
        Just(Rule {
            head: "q2".into(),
            head_exprs: vec![Expr::Var("a".into()), Expr::Var("c".into())],
            body: vec![
                BodyAtom::Scan {
                    rel: "e".into(),
                    terms: vec![Term::Var("a".into()), Term::Var("b".into())],
                },
                BodyAtom::Scan {
                    rel: "e".into(),
                    terms: vec![Term::Var("b".into()), Term::Var("c".into())],
                },
                BodyAtom::Guard(Expr::Cmp(
                    CmpOp::Ne,
                    Box::new(Expr::Var("a".into())),
                    Box::new(Expr::Var("c".into()))
                )),
            ],
        }),
        Just(Rule {
            head: "q3".into(),
            head_exprs: vec![Expr::Var("w".into())],
            body: vec![
                BodyAtom::Scan {
                    rel: "t".into(),
                    terms: vec![
                        Term::Var("k".into()),
                        Term::Var("ss".into()),
                        Term::Wildcard,
                        Term::Wildcard,
                    ],
                },
                BodyAtom::Flatten {
                    var: "w".into(),
                    set: Expr::Var("ss".into()),
                },
                BodyAtom::Let {
                    var: "z".into(),
                    expr: Expr::Var("k".into()),
                },
                BodyAtom::Neg {
                    rel: "e".into(),
                    args: vec![Expr::Var("z".into()), Expr::Var("w".into())],
                },
            ],
        }),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_rule(), 0..3),
        prop::collection::vec(prop::collection::vec(arb_stmt(), 1..4), 1..3),
    )
        .prop_map(|(rules, handler_bodies)| {
            let mut b = base_builder();
            for (i, rule) in rules.into_iter().enumerate() {
                // Unique head per rule keeps arities consistent.
                let head = format!("{}_{i}", rule.head);
                b = b.rule(
                    &head,
                    rule.head_exprs,
                    rule.body,
                );
            }
            for (i, body) in handler_bodies.into_iter().enumerate() {
                b = b.on(&format!("h{i}"), &["x", "y"], body);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn print_then_parse_is_identity(program in arb_program()) {
        let printed = print_program(&program).unwrap();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(&reparsed, &program);
    }

    #[test]
    fn printer_is_a_fixpoint(program in arb_program()) {
        let once = print_program(&program).unwrap();
        let twice = print_program(&parse_program(&once).unwrap()).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn printed_expressions_preserve_precedence(e in arb_expr()) {
        // Wrap the expression in a canonical one-statement program.
        let program = base_builder()
            .on("h", &["x", "y"], vec![Stmt::Return(e)])
            .build();
        let printed = print_program(&program).unwrap();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n---\n{printed}"));
        prop_assert_eq!(&reparsed.handlers[0].body, &program.handlers[0].body);
    }
}
