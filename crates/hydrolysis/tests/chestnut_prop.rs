//! Property tests for the Chestnut-style layout synthesizer (§5.2):
//! whatever container/access-path combination is synthesized, query
//! answers must equal the row-list scan baseline — speed may differ,
//! semantics may not.

use hydro_core::Value;
use hydrolysis::chestnut::{synthesize, OpPattern, Store, Workload};
use hydrolysis::LayoutPlan;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn rows_of(triples: &[(i64, i64, i64)]) -> Vec<Vec<Value>> {
    triples
        .iter()
        .map(|&(a, b, c)| vec![Value::Int(a), Value::Int(b), Value::Int(c)])
        .collect()
}

fn as_set(rows: Vec<&Vec<Value>>) -> BTreeSet<Vec<Value>> {
    rows.into_iter().cloned().collect()
}

/// Workloads with different hot ops steer the synthesizer toward
/// different layouts; all must answer identically.
fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            ops: vec![(OpPattern::LookupEq(0), 90.0), (OpPattern::Insert, 10.0)],
            expected_rows: 10_000,
        },
        Workload {
            ops: vec![(OpPattern::LookupEq(1), 50.0), (OpPattern::Range(2), 40.0), (OpPattern::Insert, 10.0)],
            expected_rows: 10_000,
        },
        Workload {
            ops: vec![(OpPattern::Range(0), 70.0), (OpPattern::LookupEq(2), 20.0), (OpPattern::Insert, 10.0)],
            expected_rows: 10_000,
        },
        Workload {
            ops: vec![(OpPattern::FullScan, 80.0), (OpPattern::Insert, 20.0)],
            expected_rows: 100,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn synthesized_layouts_answer_like_the_scan_baseline(
        triples in prop::collection::vec((0i64..20, 0i64..20, 0i64..20), 0..60),
        probe in 0i64..20,
        lo in 0i64..10,
        span in 0i64..10,
    ) {
        let rows = rows_of(&triples);
        let hi = lo + span;
        for workload in workloads() {
            let plan = synthesize(3, &workload, 2).plan;
            let mut fast = Store::new(plan.clone());
            let mut slow = Store::new(LayoutPlan::row_list());
            for row in &rows {
                fast.insert(row.clone());
                slow.insert(row.clone());
            }
            prop_assert_eq!(fast.len(), slow.len());
            for col in 0..3 {
                prop_assert_eq!(
                    as_set(fast.lookup_eq(col, &Value::Int(probe))),
                    as_set(slow.lookup_eq(col, &Value::Int(probe))),
                    "lookup_eq col {} plan {:?}", col, plan
                );
                prop_assert_eq!(
                    as_set(fast.range(col, &Value::Int(lo), &Value::Int(hi))),
                    as_set(slow.range(col, &Value::Int(lo), &Value::Int(hi))),
                    "range col {} plan {:?}", col, plan
                );
            }
            prop_assert_eq!(
                as_set(fast.scan(|r| r[0] >= Value::Int(probe))),
                as_set(slow.scan(|r| r[0] >= Value::Int(probe)))
            );
        }
    }

    #[test]
    fn synthesis_never_models_slower_than_the_baseline(
        eq_weight in 0.0f64..100.0,
        range_weight in 0.0f64..100.0,
        rows in 1u64..1_000_000,
    ) {
        let workload = Workload {
            ops: vec![
                (OpPattern::LookupEq(0), eq_weight),
                (OpPattern::Range(1), range_weight),
                (OpPattern::Insert, 5.0),
            ],
            expected_rows: rows,
        };
        let synthesis = synthesize(3, &workload, 2);
        prop_assert!(
            synthesis.modeled_speedup() >= 1.0,
            "the baseline is always in the search space, speedup {}",
            synthesis.modeled_speedup()
        );
    }
}
