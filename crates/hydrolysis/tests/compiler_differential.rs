//! Differential testing: the compiled Hydroflow plans must agree with the
//! naive interpreter on every query, for every input.
//!
//! This is the classic compiler-correctness harness (DESIGN.md's
//! "semi-naive ≡ naive evaluation" property): a family of query shapes —
//! joins, unions, guards, negation, recursion, let-bindings, aggregation —
//! is evaluated over random fact sets by both engines and the view
//! contents compared exactly.

use hydro_core::ast::AggFun;
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::eval::{evaluate_views, Database, Relation, UdfHost};
use hydro_core::{Program, Value};
use hydrolysis::compile_queries;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Evaluate `program`'s views with both engines over the same base facts
/// and compare every compiled view against the interpreter's relation.
fn engines_agree(program: &Program, base_facts: &BTreeMap<String, Vec<Vec<Value>>>) {
    // Interpreter.
    let mut db: Database = Database::default();
    for (rel, rows) in base_facts {
        db.insert(rel.clone(), Relation::from_rows(rows.iter().cloned()));
    }
    let interpreted =
        evaluate_views(program, &db, &Default::default(), &mut UdfHost::new()).expect("evaluates");

    // Compiler.
    let mut compiled = compile_queries(program).expect("compiles");
    let compiled_views = compiled.run(base_facts);

    for (view, rows) in &compiled_views {
        let interp_rows: BTreeSet<Vec<Value>> = interpreted
            .get(view)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default();
        assert_eq!(
            rows, &interp_rows,
            "view {view:?} disagrees between engines"
        );
    }
}

fn edge_facts(edges: &[(i64, i64)]) -> BTreeMap<String, Vec<Vec<Value>>> {
    BTreeMap::from([(
        "e".to_string(),
        edges
            .iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect(),
    )])
}

fn two_rel_facts(
    es: &[(i64, i64)],
    fs: &[(i64, i64)],
) -> BTreeMap<String, Vec<Vec<Value>>> {
    let mut m = edge_facts(es);
    m.insert(
        "f".to_string(),
        fs.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect(),
    );
    m
}

fn base_two() -> ProgramBuilder {
    ProgramBuilder::new().mailbox("e", 2).mailbox("f", 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn join_agrees(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..18),
        fs in prop::collection::vec((0i64..6, 0i64..6), 0..18),
    ) {
        let program = base_two()
            .rule(
                "j",
                vec![v("a"), v("c")],
                vec![scan("e", &["a", "b"]), scan("f", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &two_rel_facts(&es, &fs));
    }

    #[test]
    fn union_and_guard_agree(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..18),
        fs in prop::collection::vec((0i64..6, 0i64..6), 0..18),
        bound in 0i64..6,
    ) {
        let program = base_two()
            .rule("u", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule("u", vec![v("a"), v("b")], vec![scan("f", &["a", "b"])])
            .rule(
                "big",
                vec![v("a")],
                vec![scan("u", &["a", "b"]), guard(ge(v("b"), i(bound)))],
            )
            .build();
        engines_agree(&program, &two_rel_facts(&es, &fs));
    }

    #[test]
    fn negation_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        // Stratified difference: pairs in e but not in f.
        let program = base_two()
            .rule(
                "only_e",
                vec![v("a"), v("b")],
                vec![scan("e", &["a", "b"]), neg("f", vec![v("a"), v("b")])],
            )
            .build();
        engines_agree(&program, &two_rel_facts(&es, &fs));
    }

    #[test]
    fn recursion_agrees(
        es in prop::collection::vec((0i64..7, 0i64..7), 0..20),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &edge_facts(&es));
    }

    #[test]
    fn recursion_with_negation_head_start_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        // Negation feeding a recursive stratum: tc over (e − f).
        let program = base_two()
            .rule(
                "live",
                vec![v("a"), v("b")],
                vec![scan("e", &["a", "b"]), neg("f", vec![v("a"), v("b")])],
            )
            .rule("tc", vec![v("a"), v("b")], vec![scan("live", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("live", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &two_rel_facts(&es, &fs));
    }

    #[test]
    fn let_bindings_agree(
        es in prop::collection::vec((0i64..8, 0i64..8), 0..20),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule(
                "sums",
                vec![v("a"), v("s")],
                vec![
                    scan("e", &["a", "b"]),
                    let_("s", add(v("a"), v("b"))),
                ],
            )
            .build();
        engines_agree(&program, &edge_facts(&es));
    }

    #[test]
    fn aggregation_agrees(
        es in prop::collection::vec((0i64..5, 0i64..20), 0..24),
    ) {
        for agg in [AggFun::Count, AggFun::Sum, AggFun::Min, AggFun::Max] {
            let program = ProgramBuilder::new()
                .mailbox("e", 2)
                .agg_rule(
                    "per_key",
                    vec![v("a")],
                    agg,
                    v("b"),
                    vec![scan("e", &["a", "b"])],
                )
                .build();
            engines_agree(&program, &edge_facts(&es));
        }
    }

    #[test]
    fn global_aggregation_over_repeated_values_agrees(
        es in prop::collection::vec((0i64..6, 0i64..4), 0..24),
    ) {
        // Distinct bindings projecting the SAME `over` value: (1, 3) and
        // (2, 3) both contribute 3 to the global sum. This is the case
        // that separates per-binding dedup (correct) from per-projection
        // dedup (drops one of them) and from no dedup (double-counts
        // duplicated base facts).
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .agg_rule(
                "grand_total",
                vec![],
                AggFun::Sum,
                v("b"),
                vec![scan("e", &["a", "b"])],
            )
            .agg_rule(
                "row_count",
                vec![],
                AggFun::Count,
                v("a"),
                vec![scan("e", &["a", "b"])],
            )
            .build();
        engines_agree(&program, &edge_facts(&es));
    }

    #[test]
    fn wildcards_and_constants_agree(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..18),
        k in 0i64..6,
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule(
                "from_k",
                vec![v("b")],
                vec![scan_terms(
                    "e",
                    vec![
                        hydro_core::ast::Term::Const(Value::Int(k)),
                        hydro_core::ast::Term::Var("b".into()),
                    ],
                )],
            )
            .rule(
                "all_sources",
                vec![v("a")],
                vec![scan("e", &["a", "_"])],
            )
            .build();
        engines_agree(&program, &edge_facts(&es));
    }
}
