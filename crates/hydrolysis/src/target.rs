//! The target facet's deployment optimizer (§9).
//!
//! §9.1 formulates runtime mapping as an integer program: choose instance
//! counts `n_i` per machine type subject to per-handler latency and cost
//! constraints (`latency(h, n_i) ≤ L`, `cost(h, n_i) ≤ C`, `Σ n_i > 0`),
//! minimizing total spend. This module implements that optimizer with an
//! exact search (the catalogs in the paper's examples are small), plus the
//! two dynamics the section calls out:
//!
//! * **Backtracking** (§9.1 "ask previous components to choose other
//!   implementations and reiterate"): each handler may carry several
//!   *implementation variants* (e.g. interpreted vs. compiled plan, scan
//!   vs. synthesized layout from [`crate::chestnut`]) with different
//!   service times; if no allocation satisfies the targets under one
//!   variant, the solver backtracks to the next.
//! * **Adaptive re-optimization** (§9.2): [`solve`] is a pure function of
//!   the demand vector, so a monitoring loop re-invokes it as workloads
//!   shift; [`reoptimize`] shows the delta between two demand levels.
//!
//! The queueing model is deliberately simple and documented: a handler with
//! arrival rate λ on `n` instances of a machine whose service time is `s`
//! ms sees latency `s / (1 - ρ)` with utilization `ρ = λ·s / (1000·n)`
//! (M/M/1 with perfectly split load); infeasible when `ρ ≥ 1`.

use hydro_core::facets::{Processor, TargetReq, TargetSpec};
use std::collections::BTreeMap;

/// A machine type in the catalog.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineType {
    /// Catalog name (e.g. `c5.large`, `g4dn`).
    pub name: String,
    /// Hourly price in milli-units.
    pub hourly_milli: u64,
    /// Whether the machine has a GPU.
    pub gpu: bool,
    /// Relative speed factor (1.0 = reference machine).
    pub speed: f64,
}

/// One implementation variant of a handler (the compiler's backtracking
/// lever): a name plus the service time on the reference machine.
#[derive(Clone, Debug, PartialEq)]
pub struct ImplVariant {
    /// Variant label (e.g. `"compiled+hash-index"`).
    pub name: String,
    /// Service time on a speed-1.0 CPU machine, in milliseconds.
    pub service_ms: f64,
    /// Whether this variant requires a GPU.
    pub needs_gpu: bool,
}

/// Per-handler optimizer input.
#[derive(Clone, Debug)]
pub struct HandlerLoad {
    /// Handler name.
    pub handler: String,
    /// Expected arrival rate (requests/second).
    pub demand_rps: f64,
    /// Implementation variants, in the order the compiler prefers them.
    pub variants: Vec<ImplVariant>,
}

/// The chosen deployment for one handler.
#[derive(Clone, Debug, PartialEq)]
pub struct HandlerAlloc {
    /// Handler name.
    pub handler: String,
    /// Chosen machine type name.
    pub machine: String,
    /// Instance count (`n_i`).
    pub instances: u32,
    /// Chosen implementation variant.
    pub variant: String,
    /// Modeled steady-state latency (ms).
    pub est_latency_ms: f64,
    /// Modeled cost per call (milli-units).
    pub est_cost_milli: f64,
    /// How many variants were rejected before this one (backtracking
    /// depth).
    pub backtracks: u32,
}

/// A complete allocation.
#[derive(Clone, Debug, Default)]
pub struct Allocation {
    /// Per-handler choices.
    pub handlers: Vec<HandlerAlloc>,
    /// Total hourly spend (milli-units).
    pub total_hourly_milli: u64,
    /// Total machine count.
    pub total_machines: u32,
}

/// Why the optimizer failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// No machine/variant/count combination meets a handler's targets.
    Infeasible {
        /// The handler that cannot be placed.
        handler: String,
        /// Human-readable diagnosis per rejected option.
        reasons: Vec<String>,
    },
    /// The global machine budget is exceeded even by minimal allocations.
    MachineBudget {
        /// Machines needed.
        needed: u32,
        /// Budget given.
        budget: u32,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible { handler, reasons } => {
                write!(f, "no feasible deployment for {handler:?}: {}", reasons.join("; "))
            }
            SolveError::MachineBudget { needed, budget } => {
                write!(f, "needs {needed} machines, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Modeled latency for `demand_rps` split over `n` instances with per-call
/// service time `service_ms`.
pub fn modeled_latency_ms(service_ms: f64, demand_rps: f64, n: u32) -> Option<f64> {
    let capacity_rps = f64::from(n) * 1000.0 / service_ms;
    let rho = demand_rps / capacity_rps;
    if rho >= 1.0 {
        return None; // saturated
    }
    Some(service_ms / (1.0 - rho))
}

/// Modeled per-call cost in milli-units: instance-hours divided by calls.
pub fn modeled_cost_milli(hourly_milli: u64, demand_rps: f64, n: u32) -> f64 {
    (f64::from(n) * hourly_milli as f64) / (demand_rps.max(1e-9) * 3600.0)
}

/// Solve the allocation problem for every handler.
///
/// `max_instances_per_handler` bounds the search; `machine_budget` (if any)
/// caps Σ n_i across handlers.
pub fn solve(
    catalog: &[MachineType],
    loads: &[HandlerLoad],
    targets: &TargetSpec,
    max_instances_per_handler: u32,
    machine_budget: Option<u32>,
) -> Result<Allocation, SolveError> {
    let mut allocation = Allocation::default();
    for load in loads {
        let req = targets.for_handler(&load.handler);
        let choice = solve_handler(catalog, load, &req, max_instances_per_handler)?;
        allocation.total_hourly_milli += u64::from(choice.instances)
            * catalog
                .iter()
                .find(|m| m.name == choice.machine)
                .map(|m| m.hourly_milli)
                .unwrap_or(0);
        allocation.total_machines += choice.instances;
        allocation.handlers.push(choice);
    }
    if let Some(budget) = machine_budget {
        if allocation.total_machines > budget {
            return Err(SolveError::MachineBudget {
                needed: allocation.total_machines,
                budget,
            });
        }
    }
    Ok(allocation)
}

/// Pick the cheapest feasible (variant, machine, n) for one handler,
/// backtracking across variants in preference order.
fn solve_handler(
    catalog: &[MachineType],
    load: &HandlerLoad,
    req: &TargetReq,
    max_n: u32,
) -> Result<HandlerAlloc, SolveError> {
    let mut reasons = Vec::new();
    for (variant_ix, variant) in load.variants.iter().enumerate() {
        let mut best: Option<HandlerAlloc> = None;
        for machine in catalog {
            // Capability matching (Fig. 3's processor=GPU).
            if variant.needs_gpu && !machine.gpu {
                continue;
            }
            if req.processor == Some(Processor::Gpu) && !machine.gpu {
                continue;
            }
            if req.processor == Some(Processor::Cpu) && machine.gpu {
                continue; // don't waste GPU machines on CPU-pinned handlers
            }
            let service_ms = variant.service_ms / machine.speed;
            for n in 1..=max_n {
                let Some(latency) = modeled_latency_ms(service_ms, load.demand_rps, n) else {
                    continue;
                };
                if let Some(bound) = req.latency_ms {
                    if latency > bound as f64 {
                        continue;
                    }
                }
                let cost = modeled_cost_milli(machine.hourly_milli, load.demand_rps, n);
                if let Some(bound) = req.cost_milli {
                    if cost > bound as f64 {
                        // More machines only cost more; stop raising n.
                        break;
                    }
                }
                let candidate = HandlerAlloc {
                    handler: load.handler.clone(),
                    machine: machine.name.clone(),
                    instances: n,
                    variant: variant.name.clone(),
                    est_latency_ms: latency,
                    est_cost_milli: cost,
                    backtracks: variant_ix as u32,
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (candidate.est_cost_milli, candidate.instances)
                            < (b.est_cost_milli, b.instances)
                    }
                };
                if better {
                    best = Some(candidate);
                }
                break; // smallest feasible n for this machine is cheapest
            }
        }
        match best {
            Some(choice) => return Ok(choice),
            None => reasons.push(format!(
                "variant {:?} (s={}ms): no machine/count meets latency≤{:?}ms cost≤{:?}m",
                variant.name, variant.service_ms, req.latency_ms, req.cost_milli
            )),
        }
    }
    Err(SolveError::Infeasible {
        handler: load.handler.clone(),
        reasons,
    })
}

/// Re-solve under a new demand vector and report per-handler instance
/// deltas — the adaptive-reoptimization loop of §9.2.
pub fn reoptimize(
    catalog: &[MachineType],
    old: &Allocation,
    new_loads: &[HandlerLoad],
    targets: &TargetSpec,
    max_instances_per_handler: u32,
) -> Result<(Allocation, BTreeMap<String, i64>), SolveError> {
    let new = solve(catalog, new_loads, targets, max_instances_per_handler, None)?;
    let mut deltas = BTreeMap::new();
    for h in &new.handlers {
        let before = old
            .handlers
            .iter()
            .find(|o| o.handler == h.handler)
            .map_or(0, |o| i64::from(o.instances));
        deltas.insert(h.handler.clone(), i64::from(h.instances) - before);
    }
    Ok((new, deltas))
}

/// The demo catalog used by examples and benches: two CPU shapes and a GPU
/// shape, standing in for Fig. 3's "GPU-class machines with a higher
/// budget".
pub fn demo_catalog() -> Vec<MachineType> {
    vec![
        MachineType {
            name: "cpu.small".into(),
            hourly_milli: 100, // 0.1 units/hour
            gpu: false,
            speed: 1.0,
        },
        MachineType {
            name: "cpu.large".into(),
            hourly_milli: 380,
            gpu: false,
            speed: 4.0,
        },
        MachineType {
            name: "gpu.large".into(),
            hourly_milli: 2500,
            gpu: true,
            speed: 6.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydro_core::examples::covid_program;

    fn covid_loads(rps: f64) -> Vec<HandlerLoad> {
        let cpu = |name: &str, service_ms: f64| HandlerLoad {
            handler: name.to_string(),
            demand_rps: rps,
            variants: vec![ImplVariant {
                name: "default".into(),
                service_ms,
                needs_gpu: false,
            }],
        };
        vec![
            cpu("add_person", 2.0),
            cpu("add_contact", 2.0),
            cpu("diagnosed", 8.0),
            HandlerLoad {
                handler: "likelihood".into(),
                demand_rps: rps / 10.0,
                variants: vec![ImplVariant {
                    name: "ml-model".into(),
                    service_ms: 60.0,
                    needs_gpu: true,
                }],
            },
        ]
    }

    #[test]
    fn covid_targets_are_satisfiable() {
        let program = covid_program();
        let alloc = solve(
            &demo_catalog(),
            &covid_loads(50.0),
            &program.targets,
            64,
            None,
        )
        .unwrap();
        assert_eq!(alloc.handlers.len(), 4);
        for h in &alloc.handlers {
            let req = program.targets.for_handler(&h.handler);
            if let Some(bound) = req.latency_ms {
                assert!(h.est_latency_ms <= bound as f64, "{h:?}");
            }
        }
        // likelihood must land on the GPU machine (Fig. 3 line 43).
        let ml = alloc.handlers.iter().find(|h| h.handler == "likelihood").unwrap();
        assert_eq!(ml.machine, "gpu.large");
    }

    #[test]
    fn infeasible_targets_are_reported() {
        let mut targets = covid_program().targets;
        // 1 ms latency at 1 milli-cost: nothing qualifies.
        targets.default.latency_ms = Some(1);
        targets.default.cost_milli = Some(1);
        let err = solve(&demo_catalog(), &covid_loads(500.0), &targets, 64, None).unwrap_err();
        assert!(matches!(err, SolveError::Infeasible { .. }));
    }

    #[test]
    fn backtracking_falls_through_to_cheaper_variant() {
        let targets = TargetSpec {
            default: TargetReq {
                latency_ms: Some(20),
                cost_milli: Some(50),
                processor: None,
            },
            per_handler: Default::default(),
        };
        let load = HandlerLoad {
            handler: "query".into(),
            demand_rps: 200.0,
            variants: vec![
                // Preferred but hopeless at this latency bound.
                ImplVariant {
                    name: "interpreted-scan".into(),
                    service_ms: 400.0,
                    needs_gpu: false,
                },
                // The Chestnut-synthesized layout: fast enough.
                ImplVariant {
                    name: "compiled+hash-index".into(),
                    service_ms: 3.0,
                    needs_gpu: false,
                },
            ],
        };
        let alloc = solve(&demo_catalog(), &[load], &targets, 64, None).unwrap();
        let h = &alloc.handlers[0];
        assert_eq!(h.variant, "compiled+hash-index");
        assert_eq!(h.backtracks, 1);
    }

    #[test]
    fn demand_growth_scales_instances_up() {
        let targets = TargetSpec {
            default: TargetReq {
                latency_ms: Some(50),
                cost_milli: None,
                processor: None,
            },
            per_handler: Default::default(),
        };
        let mk = |rps: f64| {
            vec![HandlerLoad {
                handler: "api".into(),
                demand_rps: rps,
                variants: vec![ImplVariant {
                    name: "v1".into(),
                    service_ms: 10.0,
                    needs_gpu: false,
                }],
            }]
        };
        let low = solve(&demo_catalog(), &mk(50.0), &targets, 256, None).unwrap();
        let (high, deltas) =
            reoptimize(&demo_catalog(), &low, &mk(5000.0), &targets, 256).unwrap();
        assert!(high.total_machines > low.total_machines);
        assert!(deltas["api"] > 0);
    }

    #[test]
    fn machine_budget_enforced() {
        let targets = TargetSpec {
            default: TargetReq {
                latency_ms: Some(11),
                cost_milli: None,
                processor: None,
            },
            per_handler: Default::default(),
        };
        let load = HandlerLoad {
            handler: "hot".into(),
            demand_rps: 20_000.0,
            variants: vec![ImplVariant {
                name: "v1".into(),
                service_ms: 10.0,
                needs_gpu: false,
            }],
        };
        let err = solve(&demo_catalog(), &[load], &targets, 4096, Some(2)).unwrap_err();
        assert!(matches!(err, SolveError::MachineBudget { .. }));
    }

    #[test]
    fn queueing_model_sanity() {
        // Near saturation latency blows up; at low load it approaches s.
        assert!(modeled_latency_ms(10.0, 1.0, 1).unwrap() < 10.2);
        assert!(modeled_latency_ms(10.0, 99.0, 1).unwrap() > 500.0);
        assert_eq!(modeled_latency_ms(10.0, 100.0, 1), None);
        // Adding machines reduces latency.
        let one = modeled_latency_ms(10.0, 80.0, 1).unwrap();
        let two = modeled_latency_ms(10.0, 80.0, 2).unwrap();
        assert!(two < one);
    }
}
