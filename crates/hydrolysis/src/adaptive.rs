//! Adaptive re-optimization: the §9.2 monitoring/adaptation loop.
//!
//! §1.1 demands deployments that "redeploy \[themselves\] dynamically —
//! autoscale — to work efficiently as workloads grow and shrink by orders
//! of magnitude", and §9.2 calls for "runtime monitoring and adaptive code
//! generation" with reformulation "periodically … based on the data
//! available. Predicting or detecting when a reformulation is needed" is
//! flagged as the interesting part — this module implements the detection
//! side:
//!
//! * [`WorkloadMonitor`] — the "monitoring hooks inserted into each local
//!   data flow" (§2.2): per-handler request counters aggregated into
//!   windowed rates and smoothed with an EWMA so replanning reacts to
//!   sustained shifts, not noise.
//! * [`Autoscaler`] — wraps the target-facet optimizer ([`crate::target`])
//!   behind a drift detector with hysteresis and a cooldown: it re-solves
//!   the integer program only when some handler's smoothed demand has
//!   drifted beyond a configurable band since the last plan. Without the
//!   band, every monitoring tick would churn the deployment ("flapping") —
//!   experiment E14 quantifies that ablation.

use crate::target::{solve, Allocation, HandlerLoad, ImplVariant, MachineType, SolveError};
use hydro_core::facets::TargetSpec;
use std::collections::BTreeMap;

/// Monitoring and replanning knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher = more reactive.
    pub ewma_alpha: f64,
    /// Relative drift (e.g. `0.3` = ±30%) of any handler's smoothed rate
    /// vs. the rate it was last planned for that triggers a replan.
    pub drift_threshold: f64,
    /// Minimum seconds between replans (cooldown against flapping).
    pub cooldown_s: f64,
    /// Instance-count search bound passed to the solver.
    pub max_instances_per_handler: u32,
    /// Capacity headroom: the plan is solved for `headroom ×` the observed
    /// demand, absorbing growth between replans (standard autoscaling
    /// practice; 1.0 = plan exactly at the observed rate).
    pub headroom: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ewma_alpha: 0.5,
            drift_threshold: 0.3,
            cooldown_s: 120.0,
            max_instances_per_handler: 1024,
            headroom: 1.5,
        }
    }
}

/// Windowed, EWMA-smoothed per-handler arrival rates.
#[derive(Clone, Debug, Default)]
pub struct WorkloadMonitor {
    counts: BTreeMap<String, u64>,
    rates: BTreeMap<String, f64>,
    alpha: f64,
}

impl WorkloadMonitor {
    /// New monitor with the given smoothing factor.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        WorkloadMonitor {
            counts: BTreeMap::new(),
            rates: BTreeMap::new(),
            alpha,
        }
    }

    /// Record `n` requests for `handler` in the current window (the
    /// per-flow monitoring hook).
    pub fn observe(&mut self, handler: &str, n: u64) {
        *self.counts.entry(handler.to_string()).or_insert(0) += n;
    }

    /// Close a window of `window_s` seconds: fold the window's raw rates
    /// into the EWMA and reset the counters. Returns the smoothed rates.
    pub fn roll_window(&mut self, window_s: f64) -> &BTreeMap<String, f64> {
        assert!(window_s > 0.0);
        let alpha = self.alpha;
        for (handler, count) in std::mem::take(&mut self.counts) {
            let raw = count as f64 / window_s;
            self.rates
                .entry(handler)
                .and_modify(|r| *r = alpha * raw + (1.0 - alpha) * *r)
                .or_insert(raw);
        }
        // Handlers silent this window decay toward zero.
        for rate in self.rates.values_mut() {
            if *rate < 1e-9 {
                *rate = 0.0;
            }
        }
        &self.rates
    }

    /// Current smoothed rate for a handler.
    pub fn rate(&self, handler: &str) -> f64 {
        self.rates.get(handler).copied().unwrap_or(0.0)
    }
}

/// One replanning event.
#[derive(Clone, Debug)]
pub struct Replan {
    /// Virtual time of the replan (seconds).
    pub at_s: f64,
    /// Which handler's drift triggered it, and by how much (relative).
    pub trigger: String,
    /// Machine count before → after.
    pub machines: (u32, u32),
    /// Per-handler instance deltas.
    pub deltas: BTreeMap<String, i64>,
}

/// The §9.2 loop: monitor → detect drift → re-solve → redeploy.
pub struct Autoscaler {
    catalog: Vec<MachineType>,
    targets: TargetSpec,
    variants: BTreeMap<String, Vec<ImplVariant>>,
    config: AdaptiveConfig,
    /// Monitoring hooks feed this.
    pub monitor: WorkloadMonitor,
    /// The live deployment (None until first plan).
    current: Option<Allocation>,
    /// Rates the current plan was solved for.
    planned_rates: BTreeMap<String, f64>,
    last_replan_s: f64,
    /// All replans so far (the audit trail E14 reports).
    pub replans: Vec<Replan>,
}

impl Autoscaler {
    /// Build an autoscaler for the given handlers.
    pub fn new(
        catalog: Vec<MachineType>,
        targets: TargetSpec,
        variants: BTreeMap<String, Vec<ImplVariant>>,
        config: AdaptiveConfig,
    ) -> Self {
        let alpha = config.ewma_alpha;
        Autoscaler {
            catalog,
            targets,
            variants,
            config,
            monitor: WorkloadMonitor::new(alpha),
            current: None,
            planned_rates: BTreeMap::new(),
            last_replan_s: f64::NEG_INFINITY,
            replans: Vec::new(),
        }
    }

    /// The live allocation, if planned.
    pub fn allocation(&self) -> Option<&Allocation> {
        self.current.as_ref()
    }

    fn loads_from(&self, rates: &BTreeMap<String, f64>) -> Vec<HandlerLoad> {
        self.variants
            .iter()
            .map(|(handler, variants)| HandlerLoad {
                handler: handler.clone(),
                // The solver needs a strictly positive demand; idle
                // handlers keep a nominal trickle so they stay deployed.
                // Headroom absorbs growth until the next replan.
                demand_rps: (rates.get(handler).copied().unwrap_or(0.0) * self.config.headroom)
                    .max(0.1),
                variants: variants.clone(),
            })
            .collect()
    }

    /// Largest relative drift between smoothed and planned rates, with the
    /// offending handler.
    fn max_drift(&self, rates: &BTreeMap<String, f64>) -> (f64, String) {
        let mut worst = (0.0f64, String::new());
        for (handler, &rate) in rates {
            let planned = self.planned_rates.get(handler).copied().unwrap_or(0.0);
            let base = planned.max(1.0);
            let drift = (rate - planned).abs() / base;
            if drift > worst.0 {
                worst = (drift, handler.clone());
            }
        }
        worst
    }

    /// Close a monitoring window at virtual time `now_s` and replan if the
    /// drift detector fires (or no plan exists yet).
    ///
    /// Returns the replan performed, if any.
    pub fn step(&mut self, now_s: f64, window_s: f64) -> Result<Option<Replan>, SolveError> {
        let rates = self.monitor.roll_window(window_s).clone();
        let (drift, trigger) = self.max_drift(&rates);
        let need_first_plan = self.current.is_none();
        let cooled = now_s - self.last_replan_s >= self.config.cooldown_s;
        if !need_first_plan && (drift < self.config.drift_threshold || !cooled) {
            return Ok(None);
        }

        let loads = self.loads_from(&rates);
        let new = solve(
            &self.catalog,
            &loads,
            &self.targets,
            self.config.max_instances_per_handler,
            None,
        )?;
        let old_machines = self.current.as_ref().map_or(0, |a| a.total_machines);
        let mut deltas = BTreeMap::new();
        for h in &new.handlers {
            let before = self
                .current
                .as_ref()
                .and_then(|a| a.handlers.iter().find(|o| o.handler == h.handler))
                .map_or(0, |o| i64::from(o.instances));
            deltas.insert(h.handler.clone(), i64::from(h.instances) - before);
        }
        let replan = Replan {
            at_s: now_s,
            trigger: if need_first_plan {
                "initial plan".to_string()
            } else {
                format!("{trigger} drifted {:.0}%", drift * 100.0)
            },
            machines: (old_machines, new.total_machines),
            deltas,
        };
        self.planned_rates = rates;
        self.last_replan_s = now_s;
        self.current = Some(new);
        self.replans.push(replan.clone());
        Ok(Some(replan))
    }

    /// Modeled latency of the current plan at the given offered rate —
    /// used to check whether the plan still meets its SLO between replans.
    pub fn modeled_latency_ms(&self, handler: &str, offered_rps: f64) -> Option<f64> {
        let alloc = self.current.as_ref()?;
        let h = alloc.handlers.iter().find(|h| h.handler == handler)?;
        let machine = self.catalog.iter().find(|m| m.name == h.machine)?;
        let variant = self
            .variants
            .get(handler)?
            .iter()
            .find(|v| v.name == h.variant)?;
        crate::target::modeled_latency_ms(
            variant.service_ms / machine.speed,
            offered_rps,
            h.instances,
        )
    }
}

/// A synthetic diurnal demand trace: `steps` windows covering 24 h, demand
/// swinging sinusoidally between `low_rps` and `high_rps`, plus an
/// optional flash-crowd spike multiplying demand by `spike_factor` for the
/// window at `spike_at` (§1.1: "workloads grow and shrink by orders of
/// magnitude").
pub fn diurnal_trace(
    steps: usize,
    low_rps: f64,
    high_rps: f64,
    spike_at: Option<usize>,
    spike_factor: f64,
) -> Vec<f64> {
    (0..steps)
        .map(|i| {
            let phase = i as f64 / steps as f64 * std::f64::consts::TAU;
            // Trough at step 0 (midnight), peak mid-trace.
            let base = low_rps + (high_rps - low_rps) * (0.5 - 0.5 * phase.cos());
            if spike_at == Some(i) {
                base * spike_factor
            } else {
                base
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::demo_catalog;
    use hydro_core::facets::{TargetReq, TargetSpec};

    fn api_variants() -> BTreeMap<String, Vec<ImplVariant>> {
        BTreeMap::from([(
            "api".to_string(),
            vec![ImplVariant {
                name: "v1".into(),
                service_ms: 10.0,
                needs_gpu: false,
            }],
        )])
    }

    fn targets() -> TargetSpec {
        TargetSpec {
            default: TargetReq {
                latency_ms: Some(50),
                cost_milli: None,
                processor: None,
            },
            per_handler: Default::default(),
        }
    }

    fn scaler(config: AdaptiveConfig) -> Autoscaler {
        Autoscaler::new(demo_catalog(), targets(), api_variants(), config)
    }

    #[test]
    fn ewma_smooths_bursts() {
        let mut m = WorkloadMonitor::new(0.5);
        m.observe("api", 1000);
        m.roll_window(1.0);
        assert_eq!(m.rate("api"), 1000.0, "first window seeds the EWMA");
        m.observe("api", 0);
        m.roll_window(1.0);
        assert_eq!(m.rate("api"), 500.0, "decays, not drops");
    }

    #[test]
    fn first_step_always_plans() {
        let mut a = scaler(AdaptiveConfig::default());
        a.monitor.observe("api", 100);
        let replan = a.step(0.0, 1.0).unwrap().expect("initial plan");
        assert_eq!(replan.trigger, "initial plan");
        assert!(a.allocation().unwrap().total_machines >= 1);
    }

    #[test]
    fn steady_load_never_replans() {
        let mut a = scaler(AdaptiveConfig::default());
        for step in 0..20 {
            a.monitor.observe("api", 100);
            a.step(step as f64 * 300.0, 1.0).unwrap();
        }
        assert_eq!(a.replans.len(), 1, "only the initial plan");
    }

    #[test]
    fn order_of_magnitude_growth_scales_out() {
        let mut a = scaler(AdaptiveConfig::default());
        a.monitor.observe("api", 50);
        a.step(0.0, 1.0).unwrap();
        let small = a.allocation().unwrap().total_machines;
        // 100× the demand, past the cooldown.
        for step in 1..6 {
            a.monitor.observe("api", 5000);
            a.step(step as f64 * 300.0, 1.0).unwrap();
        }
        let big = a.allocation().unwrap().total_machines;
        assert!(
            big > small,
            "machines must grow with demand ({small} -> {big})"
        );
        assert!(a.replans.len() >= 2);
    }

    #[test]
    fn shrinking_demand_scales_back_in() {
        let mut a = scaler(AdaptiveConfig::default());
        a.monitor.observe("api", 5000);
        a.step(0.0, 1.0).unwrap();
        let big = a.allocation().unwrap().total_machines;
        for step in 1..8 {
            a.monitor.observe("api", 50);
            a.step(step as f64 * 300.0, 1.0).unwrap();
        }
        let small = a.allocation().unwrap().total_machines;
        assert!(small < big, "scale-in after sustained drop ({big} -> {small})");
        assert!(
            a.replans.iter().any(|r| r.deltas["api"] < 0),
            "some replan released instances: {:?}",
            a.replans
        );
    }

    #[test]
    fn cooldown_prevents_flapping() {
        let mut strict = scaler(AdaptiveConfig {
            cooldown_s: 10_000.0,
            ..AdaptiveConfig::default()
        });
        // Demand alternates every window; cooldown must suppress churn.
        for step in 0..20 {
            let n = if step % 2 == 0 { 100 } else { 3000 };
            strict.monitor.observe("api", n);
            strict.step(step as f64 * 60.0, 1.0).unwrap();
        }
        assert_eq!(strict.replans.len(), 1, "cooldown holds the plan");

        let mut loose = scaler(AdaptiveConfig {
            cooldown_s: 0.0,
            drift_threshold: 0.0,
            ..AdaptiveConfig::default()
        });
        for step in 0..20 {
            let n = if step % 2 == 0 { 100 } else { 3000 };
            loose.monitor.observe("api", n);
            loose.step(step as f64 * 60.0, 1.0).unwrap();
        }
        assert!(
            loose.replans.len() > 10,
            "no hysteresis → flapping ({} replans)",
            loose.replans.len()
        );
    }

    #[test]
    fn diurnal_trace_spans_the_requested_range() {
        let t = diurnal_trace(48, 10.0, 1000.0, Some(30), 3.0);
        assert_eq!(t.len(), 48);
        let min = t.iter().copied().fold(f64::INFINITY, f64::min);
        let max = t.iter().copied().fold(0.0, f64::max);
        assert!((9.9..20.0).contains(&min));
        assert!(max > 1000.0, "spike exceeds the plateau: {max}");
        assert_eq!(t[0], 10.0, "trough at midnight");
    }

    #[test]
    fn modeled_latency_tracks_the_live_plan() {
        let mut a = scaler(AdaptiveConfig::default());
        a.monitor.observe("api", 100);
        a.step(0.0, 1.0).unwrap();
        let at_plan = a.modeled_latency_ms("api", 100.0).unwrap();
        assert!(at_plan <= 50.0, "meets the SLO it was planned for");
        // Overload far beyond the plan saturates the model.
        assert!(a
            .modeled_latency_ms("api", 1e9)
            .is_none_or(|l| l > 50.0));
    }
}
