//! # hydrolysis
//!
//! The **Hydrolysis** compiler (§2.2): takes a HydroLogic specification and
//! generates programs against the Hydroflow runtime's APIs, choosing among
//! the primitive families §2.2 enumerates:
//!
//! * [`lower`] — *"the choice of … concrete physical implementations (e.g.
//!   join algorithm) to implement the semantics facet running as a local
//!   data flow on a single node"*: rule-to-operator-graph lowering with
//!   semi-naive recursion, stratified negation and aggregation, verified by
//!   differential testing against the interpreter.
//! * [`chestnut`] — *"the choice of data structures for collection types"*
//!   (§5): enumeration + cost-model synthesis of physical layouts, plus an
//!   executable [`chestnut::Store`] for every layout so the model can be
//!   validated by measurement (experiment E4's up-to-42× claim).
//! * [`target`] — the §9 integer program mapping handlers onto a machine
//!   catalog under latency/cost/processor constraints, with backtracking
//!   across implementation variants and adaptive re-optimization
//!   (experiment E6).
//!
//! Replication/consistency protocol synthesis — the remaining primitive
//! families of §2.2 — live in `hydro-deploy`, which consumes this crate's
//! allocations.

pub mod adaptive;
pub mod chestnut;
pub mod lower;
pub mod target;

pub use chestnut::{synthesize, LayoutPlan, Store, Workload};
pub use lower::{compile_queries, CompileError, CompiledQueries};
pub use target::{demo_catalog, solve, Allocation, HandlerLoad, ImplVariant, MachineType};
