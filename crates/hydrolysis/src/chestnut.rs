//! Data-structure synthesis for the data-model facet (§5).
//!
//! "A concrete data structure implementation consists of two components:
//! choosing the container(s) to store persistent data, and determining the
//! access path(s) given the choices for containers." Following the Chestnut
//! system the paper cites (§5.2, "up to 42×"), this module enumerates
//! candidate layouts — a primary container plus optional secondary indexes
//! — against a declared workload, scores them with a cost model, and
//! returns the cheapest. [`Store`] then *executes* any layout, so the cost
//! model's choice can be validated with wall-clock measurements
//! (experiment E4).

use hydro_core::eval::Row;
use hydro_core::Value;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;

/// Container choices for the primary copy of the rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Container {
    /// Unordered vector of rows (scan everything).
    RowList,
    /// Hash index keyed on a column.
    HashBy(usize),
    /// Ordered index keyed on a column (supports ranges).
    BTreeBy(usize),
}

/// A synthesized physical layout: primary container plus secondary indexes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayoutPlan {
    /// Primary container.
    pub primary: Container,
    /// Secondary indexes (column, ordered?).
    pub secondary: Vec<Container>,
}

impl LayoutPlan {
    /// The trivial scan-everything layout (the baseline in E4).
    pub fn row_list() -> Self {
        LayoutPlan {
            primary: Container::RowList,
            secondary: Vec::new(),
        }
    }

    fn describes_col(c: &Container) -> Option<(usize, bool)> {
        match c {
            Container::HashBy(col) => Some((*col, false)),
            Container::BTreeBy(col) => Some((*col, true)),
            Container::RowList => None,
        }
    }

    /// Whether some container serves equality lookups on `col`.
    pub fn eq_path(&self, col: usize) -> bool {
        std::iter::once(&self.primary)
            .chain(&self.secondary)
            .any(|c| Self::describes_col(c).is_some_and(|(k, _)| k == col))
    }

    /// Whether some container serves range scans on `col`.
    pub fn range_path(&self, col: usize) -> bool {
        std::iter::once(&self.primary)
            .chain(&self.secondary)
            .any(|c| Self::describes_col(c) == Some((col, true)))
    }
}

/// One operation class with its relative frequency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OpPattern {
    /// Point lookup by equality on a column.
    LookupEq(usize),
    /// Range scan on a column.
    Range(usize),
    /// Full scan with an arbitrary predicate.
    FullScan,
    /// Row insertion.
    Insert,
}

/// A workload: weighted operation mix, plus the expected table size the
/// cost model should plan for.
#[derive(Clone, Debug)]
pub struct Workload {
    /// `(pattern, relative frequency)` pairs.
    pub ops: Vec<(OpPattern, f64)>,
    /// Expected row count.
    pub expected_rows: u64,
}

/// Cost (abstract work units ≈ rows touched) of one op under a layout.
fn op_cost(op: OpPattern, plan: &LayoutPlan, n: f64) -> f64 {
    let log_n = n.max(2.0).log2();
    match op {
        OpPattern::LookupEq(col) => {
            if plan
                .secondary
                .iter()
                .chain(std::iter::once(&plan.primary))
                .any(|c| matches!(c, Container::HashBy(k) if *k == col))
            {
                1.0
            } else if plan.range_path(col) {
                log_n
            } else {
                n / 2.0
            }
        }
        OpPattern::Range(col) => {
            if plan.range_path(col) {
                // Index seek plus a proportional slice of matching rows.
                log_n + n * 0.05
            } else {
                n
            }
        }
        OpPattern::FullScan => n,
        OpPattern::Insert => {
            // One unit for the primary plus maintenance per secondary
            // (ordered indexes pay log n).
            let mut cost = match plan.primary {
                Container::RowList => 1.0,
                Container::HashBy(_) => 1.5,
                Container::BTreeBy(_) => log_n,
            };
            for s in &plan.secondary {
                cost += match s {
                    Container::RowList => 0.0,
                    Container::HashBy(_) => 1.5,
                    Container::BTreeBy(_) => log_n,
                };
            }
            cost
        }
    }
}

/// Expected per-operation cost of a whole workload under a layout.
pub fn workload_cost(workload: &Workload, plan: &LayoutPlan) -> f64 {
    let n = workload.expected_rows as f64;
    let total_weight: f64 = workload.ops.iter().map(|(_, w)| w).sum();
    if total_weight == 0.0 {
        return 0.0;
    }
    workload
        .ops
        .iter()
        .map(|(op, w)| w * op_cost(*op, plan, n))
        .sum::<f64>()
        / total_weight
}

/// Synthesis result.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The chosen layout.
    pub plan: LayoutPlan,
    /// Its modeled per-op cost.
    pub cost: f64,
    /// The scan baseline's modeled cost (for speedup reporting).
    pub baseline_cost: f64,
    /// Number of candidate layouts enumerated.
    pub candidates: usize,
}

impl Synthesis {
    /// Modeled speedup over the row-list baseline.
    pub fn modeled_speedup(&self) -> f64 {
        if self.cost == 0.0 {
            1.0
        } else {
            self.baseline_cost / self.cost
        }
    }
}

/// Enumerate layouts over `columns` columns (primary container on any
/// column, up to `max_secondary` secondary indexes) and pick the cheapest
/// for the workload — the enumeration-plus-cost-model search §5.1 sketches.
pub fn synthesize(columns: usize, workload: &Workload, max_secondary: usize) -> Synthesis {
    let mut containers = vec![Container::RowList];
    for c in 0..columns {
        containers.push(Container::HashBy(c));
        containers.push(Container::BTreeBy(c));
    }

    let baseline = LayoutPlan::row_list();
    let baseline_cost = workload_cost(workload, &baseline);

    let mut best = Synthesis {
        plan: baseline,
        cost: baseline_cost,
        baseline_cost,
        candidates: 0,
    };

    // Secondary candidates: subsets of indexes up to the budget. The space
    // is small (columns ≤ a dozen in practice) so exhaustive enumeration is
    // exact; Chestnut's ILP formulation is only needed at larger scale.
    let index_choices: Vec<Container> = containers
        .iter()
        .copied()
        .filter(|c| !matches!(c, Container::RowList))
        .collect();
    let subsets = subsets_up_to(&index_choices, max_secondary);

    let mut candidates = 0;
    for &primary in &containers {
        for secondary in &subsets {
            // Skip secondaries duplicating the primary's access path.
            if secondary.iter().any(|s| Some(*s) == non_list(primary)) {
                continue;
            }
            let plan = LayoutPlan {
                primary,
                secondary: secondary.clone(),
            };
            candidates += 1;
            let cost = workload_cost(workload, &plan);
            if cost < best.cost {
                best.plan = plan;
                best.cost = cost;
            }
        }
    }
    best.candidates = candidates;
    best
}

fn non_list(c: Container) -> Option<Container> {
    match c {
        Container::RowList => None,
        other => Some(other),
    }
}

fn subsets_up_to(items: &[Container], k: usize) -> Vec<Vec<Container>> {
    let mut out = vec![Vec::new()];
    for &item in items {
        let existing = out.clone();
        for mut subset in existing {
            if subset.len() < k {
                subset.push(item);
                out.push(subset);
            }
        }
    }
    out
}

/// An executable store for any layout: the access paths the synthesizer
/// chose, made real so E4 can time them.
pub struct Store {
    plan: LayoutPlan,
    rows: Vec<Row>,
    hash_indexes: FxHashMap<usize, FxHashMap<Value, Vec<usize>>>,
    btree_indexes: FxHashMap<usize, BTreeMap<Value, Vec<usize>>>,
}

impl Store {
    /// An empty store with the given layout.
    pub fn new(plan: LayoutPlan) -> Self {
        let mut store = Store {
            plan,
            rows: Vec::new(),
            hash_indexes: FxHashMap::default(),
            btree_indexes: FxHashMap::default(),
        };
        let containers: Vec<Container> = std::iter::once(store.plan.primary)
            .chain(store.plan.secondary.iter().copied())
            .collect();
        for c in containers {
            match c {
                Container::HashBy(col) => {
                    store.hash_indexes.entry(col).or_default();
                }
                Container::BTreeBy(col) => {
                    store.btree_indexes.entry(col).or_default();
                }
                Container::RowList => {}
            }
        }
        store
    }

    /// The layout in use.
    pub fn plan(&self) -> &LayoutPlan {
        &self.plan
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row, maintaining every index.
    pub fn insert(&mut self, row: Row) {
        let id = self.rows.len();
        for (col, idx) in &mut self.hash_indexes {
            idx.entry(row[*col].clone()).or_default().push(id);
        }
        for (col, idx) in &mut self.btree_indexes {
            idx.entry(row[*col].clone()).or_default().push(id);
        }
        self.rows.push(row);
    }

    /// Equality lookup on a column, via the best available access path.
    pub fn lookup_eq(&self, col: usize, value: &Value) -> Vec<&Row> {
        if let Some(idx) = self.hash_indexes.get(&col) {
            return idx
                .get(value)
                .map(|ids| ids.iter().map(|&i| &self.rows[i]).collect())
                .unwrap_or_default();
        }
        if let Some(idx) = self.btree_indexes.get(&col) {
            return idx
                .get(value)
                .map(|ids| ids.iter().map(|&i| &self.rows[i]).collect())
                .unwrap_or_default();
        }
        self.rows.iter().filter(|r| &r[col] == value).collect()
    }

    /// Range scan `lo ≤ row[col] ≤ hi`.
    pub fn range(&self, col: usize, lo: &Value, hi: &Value) -> Vec<&Row> {
        if let Some(idx) = self.btree_indexes.get(&col) {
            return idx
                .range(lo.clone()..=hi.clone())
                .flat_map(|(_, ids)| ids.iter().map(|&i| &self.rows[i]))
                .collect();
        }
        self.rows
            .iter()
            .filter(|r| &r[col] >= lo && &r[col] <= hi)
            .collect()
    }

    /// Full scan with a predicate.
    pub fn scan(&self, mut pred: impl FnMut(&Row) -> bool) -> Vec<&Row> {
        self.rows.iter().filter(|r| pred(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_heavy(n: u64) -> Workload {
        Workload {
            ops: vec![
                (OpPattern::LookupEq(0), 90.0),
                (OpPattern::Insert, 9.0),
                (OpPattern::FullScan, 1.0),
            ],
            expected_rows: n,
        }
    }

    #[test]
    fn lookup_heavy_workload_gets_hash_index() {
        let s = synthesize(3, &lookup_heavy(100_000), 2);
        assert!(s.plan.eq_path(0), "plan: {:?}", s.plan);
        assert!(
            matches!(s.plan.primary, Container::HashBy(0))
                || s.plan.secondary.contains(&Container::HashBy(0))
        );
        // Chestnut-style win: the paper quotes "up to 42x"; this mix
        // models out to roughly that factor.
        assert!(s.modeled_speedup() > 40.0, "speedup {}", s.modeled_speedup());
    }

    #[test]
    fn range_workload_gets_btree() {
        let w = Workload {
            ops: vec![(OpPattern::Range(1), 80.0), (OpPattern::Insert, 20.0)],
            expected_rows: 10_000,
        };
        let s = synthesize(3, &w, 2);
        assert!(s.plan.range_path(1), "plan: {:?}", s.plan);
    }

    #[test]
    fn insert_only_workload_keeps_plain_list() {
        let w = Workload {
            ops: vec![(OpPattern::Insert, 1.0)],
            expected_rows: 10_000,
        };
        let s = synthesize(3, &w, 2);
        assert_eq!(s.plan, LayoutPlan::row_list());
    }

    #[test]
    fn mixed_workload_gets_multiple_indexes() {
        let w = Workload {
            ops: vec![
                (OpPattern::LookupEq(0), 40.0),
                (OpPattern::Range(2), 40.0),
                (OpPattern::Insert, 20.0),
            ],
            expected_rows: 1_000_000,
        };
        let s = synthesize(4, &w, 2);
        assert!(s.plan.eq_path(0));
        assert!(s.plan.range_path(2));
    }

    fn sample_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 100),
                    Value::Str(format!("row{i}")),
                ]
            })
            .collect()
    }

    #[test]
    fn store_answers_match_across_layouts() {
        let rows = sample_rows(500);
        let layouts = [
            LayoutPlan::row_list(),
            LayoutPlan {
                primary: Container::HashBy(0),
                secondary: vec![Container::BTreeBy(1)],
            },
            LayoutPlan {
                primary: Container::BTreeBy(0),
                secondary: vec![],
            },
        ];
        let mut answers = Vec::new();
        for plan in layouts {
            let mut store = Store::new(plan);
            for r in &rows {
                store.insert(r.clone());
            }
            let mut eq: Vec<Row> = store
                .lookup_eq(1, &Value::Int(7))
                .into_iter()
                .cloned()
                .collect();
            eq.sort();
            let mut rg: Vec<Row> = store
                .range(0, &Value::Int(10), &Value::Int(20))
                .into_iter()
                .cloned()
                .collect();
            rg.sort();
            let sc = store.scan(|r| r[0] == Value::Int(42)).len();
            answers.push((eq, rg, sc));
        }
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[0], answers[2]);
        assert_eq!(answers[0].2, 1);
    }

    #[test]
    fn indexed_lookup_touches_fewer_rows_conceptually() {
        // Cost model sanity on a pure lookup/insert mix: hash lookup cost
        // is flat in n, scanning is linear in n.
        let pure = |n| Workload {
            ops: vec![(OpPattern::LookupEq(0), 90.0), (OpPattern::Insert, 10.0)],
            expected_rows: n,
        };
        let small = workload_cost(&pure(1_000), &LayoutPlan::row_list());
        let large = workload_cost(&pure(1_000_000), &LayoutPlan::row_list());
        assert!(large > small * 100.0);
        let idx_plan = LayoutPlan {
            primary: Container::HashBy(0),
            secondary: vec![],
        };
        let idx_small = workload_cost(&pure(1_000), &idx_plan);
        let idx_large = workload_cost(&pure(1_000_000), &idx_plan);
        assert!(idx_large < idx_small * 3.0);
    }
}
