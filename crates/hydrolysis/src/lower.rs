//! Lowering HydroLogic rules to Hydroflow operator graphs (§8).
//!
//! "A program in HydroLogic can be lowered (compiled) to a set of
//! single-node Hydroflow algebra expressions in a straightforward fashion,
//! much as one can compile SQL to relational algebra." This module is that
//! lowering for the query (view) fragment of the IR:
//!
//! * each base relation (table or mailbox) becomes a source;
//! * each rule body becomes a join/filter/flat-map pipeline over *binding
//!   tuples* (the compiled analogue of the interpreter's environments);
//! * each view gets a `Distinct` hub — which both unions the view's rules
//!   and, because only never-before-seen tuples pass, makes recursive rules
//!   evaluate **semi-naively** (experiment E8 measures the win over the
//!   interpreter's naive fixpoint);
//! * negation lowers to an antijoin and aggregation to a grouped fold, each
//!   placed at the stratum boundary computed by `hydro_core::eval::stratify`.
//!
//! Expressions inside compiled pipelines must be *pure* (no UDF calls, no
//! scalar/table reads); rules using impure expressions are rejected with
//! [`CompileError::Unsupported`] and stay on the interpreter path — the
//! "UDFs stay black boxes" contract of §3.1.

use hydro_core::ast::{AggFun, BodyAtom, CmpOp, ArithOp, Expr, Program, Rule, Term};
use hydro_core::eval::{stratify, Row};
use hydro_core::Value;
use hydro_flow::{FlowGraph, GraphBuilder, OpId, Persistence, Port};
use rustc_hash::FxHashMap;
use std::collections::{BTreeMap, BTreeSet};

/// Errors raised during lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The construct cannot run in a compiled pipeline.
    Unsupported(String),
    /// A rule references an unknown relation.
    UnknownRelation(String),
    /// Head/pattern arity mismatch.
    Arity(String),
    /// The rule set is not stratifiable.
    NotStratifiable(String),
    /// Graph assembly failed (internal invariant).
    Graph(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unsupported(s) => write!(f, "unsupported in compiled plan: {s}"),
            CompileError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            CompileError::Arity(s) => write!(f, "arity error: {s}"),
            CompileError::NotStratifiable(s) => write!(f, "not stratifiable: {s}"),
            CompileError::Graph(s) => write!(f, "graph assembly error: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled expression over a binding tuple: variables resolved to
/// positions, evaluable without any interpreter context.
#[derive(Clone, Debug)]
enum CExpr {
    Const(Value),
    Slot(usize),
    Cmp(CmpOp, Box<CExpr>, Box<CExpr>),
    Arith(ArithOp, Box<CExpr>, Box<CExpr>),
    Not(Box<CExpr>),
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Tuple(Vec<CExpr>),
    Index(Box<CExpr>, usize),
    SetBuild(Vec<CExpr>),
    Contains(Box<CExpr>, Box<CExpr>),
    Len(Box<CExpr>),
}

fn compile_expr(expr: &Expr, schema: &[String]) -> Result<CExpr, CompileError> {
    Ok(match expr {
        Expr::Const(v) => CExpr::Const(v.clone()),
        Expr::Var(name) => {
            let pos = schema
                .iter()
                .position(|s| s == name)
                .ok_or_else(|| CompileError::Unsupported(format!("unbound variable {name:?}")))?;
            CExpr::Slot(pos)
        }
        Expr::Cmp(op, l, r) => CExpr::Cmp(
            *op,
            Box::new(compile_expr(l, schema)?),
            Box::new(compile_expr(r, schema)?),
        ),
        Expr::Arith(op, l, r) => CExpr::Arith(
            *op,
            Box::new(compile_expr(l, schema)?),
            Box::new(compile_expr(r, schema)?),
        ),
        Expr::Not(e) => CExpr::Not(Box::new(compile_expr(e, schema)?)),
        Expr::And(l, r) => CExpr::And(
            Box::new(compile_expr(l, schema)?),
            Box::new(compile_expr(r, schema)?),
        ),
        Expr::Or(l, r) => CExpr::Or(
            Box::new(compile_expr(l, schema)?),
            Box::new(compile_expr(r, schema)?),
        ),
        Expr::Tuple(items) => CExpr::Tuple(
            items
                .iter()
                .map(|e| compile_expr(e, schema))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Index(e, i) => CExpr::Index(Box::new(compile_expr(e, schema)?), *i),
        Expr::SetBuild(items) => CExpr::SetBuild(
            items
                .iter()
                .map(|e| compile_expr(e, schema))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Contains(s, i) => CExpr::Contains(
            Box::new(compile_expr(s, schema)?),
            Box::new(compile_expr(i, schema)?),
        ),
        Expr::Len(e) => CExpr::Len(Box::new(compile_expr(e, schema)?)),
        other => {
            return Err(CompileError::Unsupported(format!(
                "impure expression {other:?} in compiled pipeline"
            )))
        }
    })
}

fn eval_cexpr(e: &CExpr, bindings: &[Value]) -> Value {
    match e {
        CExpr::Const(v) => v.clone(),
        CExpr::Slot(i) => bindings[*i].clone(),
        CExpr::Cmp(op, l, r) => {
            let l = eval_cexpr(l, bindings);
            let r = eval_cexpr(r, bindings);
            Value::Bool(match op {
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
            })
        }
        CExpr::Arith(op, l, r) => {
            let l = eval_cexpr(l, bindings).as_int().unwrap_or(0);
            let r = eval_cexpr(r, bindings).as_int().unwrap_or(0);
            Value::Int(match op {
                ArithOp::Add => l.wrapping_add(r),
                ArithOp::Sub => l.wrapping_sub(r),
                ArithOp::Mul => l.wrapping_mul(r),
                ArithOp::Div => {
                    if r == 0 {
                        0
                    } else {
                        l.wrapping_div(r)
                    }
                }
                ArithOp::Mod => {
                    if r == 0 {
                        0
                    } else {
                        l.wrapping_rem(r)
                    }
                }
            })
        }
        CExpr::Not(e) => Value::Bool(!matches!(eval_cexpr(e, bindings), Value::Bool(true))),
        CExpr::And(l, r) => {
            if matches!(eval_cexpr(l, bindings), Value::Bool(true)) {
                eval_cexpr(r, bindings)
            } else {
                Value::Bool(false)
            }
        }
        CExpr::Or(l, r) => {
            if matches!(eval_cexpr(l, bindings), Value::Bool(true)) {
                Value::Bool(true)
            } else {
                eval_cexpr(r, bindings)
            }
        }
        CExpr::Tuple(items) => Value::Tuple(items.iter().map(|e| eval_cexpr(e, bindings)).collect()),
        CExpr::Index(e, i) => match eval_cexpr(e, bindings) {
            Value::Tuple(t) => t.get(*i).cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        },
        CExpr::SetBuild(items) => {
            Value::Set(items.iter().map(|e| eval_cexpr(e, bindings)).collect())
        }
        CExpr::Contains(s, i) => {
            let item = eval_cexpr(i, bindings);
            match eval_cexpr(s, bindings) {
                Value::Set(set) => Value::Bool(set.contains(&item)),
                _ => Value::Bool(false),
            }
        }
        CExpr::Len(e) => match eval_cexpr(e, bindings) {
            Value::Set(s) => Value::Int(s.len() as i64),
            Value::Tuple(t) => Value::Int(t.len() as i64),
            _ => Value::Null,
        },
    }
}

/// A compiled query plan: a Hydroflow graph whose sources are the program's
/// base relations and whose sinks are its views.
pub struct CompiledQueries {
    graph: FlowGraph<Value>,
    /// Base relation names expected as inputs.
    pub inputs: Vec<String>,
    /// Compiled view names.
    pub views: Vec<String>,
}

impl CompiledQueries {
    /// Evaluate all views for one snapshot of the base relations.
    /// Missing inputs are treated as empty.
    pub fn run(&mut self, base: &BTreeMap<String, Vec<Row>>) -> BTreeMap<String, BTreeSet<Row>> {
        for name in &self.inputs {
            if let Some(rows) = base.get(name) {
                self.graph
                    .push_input(name, rows.iter().cloned().map(Value::Tuple));
            }
        }
        let out = self.graph.tick();
        let mut result = BTreeMap::new();
        for view in &self.views {
            let rows: BTreeSet<Row> = out
                .sink(view)
                .iter()
                .filter_map(|v| v.as_tuple().map(<[Value]>::to_vec))
                .collect();
            result.insert(view.clone(), rows);
        }
        result
    }

    /// Work counter from the underlying graph (items processed).
    pub fn items_processed(&self) -> u64 {
        self.graph.items_processed()
    }
}

struct Lowering<'p> {
    /// Retained for future lowering passes that need table metadata
    /// (e.g. key-aware join planning).
    #[allow(dead_code)]
    program: &'p Program,
    builder: GraphBuilder<Value>,
    /// Base relation name → source op.
    sources: FxHashMap<String, OpId>,
    /// View name → (distinct hub, stratum).
    view_hubs: FxHashMap<String, (OpId, usize)>,
    arities: BTreeMap<String, usize>,
}

/// Compile a program's rules and aggregations into a Hydroflow graph.
pub fn compile_queries(program: &Program) -> Result<CompiledQueries, CompileError> {
    let strata =
        stratify(program).map_err(|e| CompileError::NotStratifiable(e.to_string()))?;
    let mut lowering = Lowering {
        program,
        builder: GraphBuilder::new(),
        sources: FxHashMap::default(),
        view_hubs: FxHashMap::default(),
        arities: program.relation_arities(),
    };

    // Sources for base relations (tables + mailboxes).
    let mut inputs = Vec::new();
    for t in &program.tables {
        let id = lowering.builder.source(&t.name, 0);
        lowering.sources.insert(t.name.clone(), id);
        inputs.push(t.name.clone());
    }
    for m in &program.mailboxes {
        let id = lowering.builder.source(&m.name, 0);
        lowering.sources.insert(m.name.clone(), id);
        inputs.push(m.name.clone());
    }
    for h in &program.handlers {
        let id = lowering.builder.source(&h.name, 0);
        lowering.sources.insert(h.name.clone(), id);
        inputs.push(h.name.clone());
    }

    // Distinct hub + sink per view.
    let mut views = Vec::new();
    let mut view_names: Vec<(String, usize)> = strata
        .iter()
        .map(|(name, s)| (name.clone(), *s))
        .collect();
    view_names.sort();
    for (name, stratum) in &view_names {
        let hub = lowering.builder.distinct(*stratum, Persistence::Tick);
        let sink = lowering.builder.sink(name, *stratum);
        lowering.builder.edge(hub, sink);
        lowering.view_hubs.insert(name.clone(), (hub, *stratum));
        views.push(name.clone());
    }

    // Lower every rule into its head's stratum.
    for rule in &program.rules {
        let stratum = strata[&rule.head];
        lowering.lower_rule(rule, stratum)?;
    }
    for agg in &program.agg_rules {
        let stratum = strata[&agg.head];
        lowering.lower_agg(agg, stratum)?;
    }

    let graph = lowering
        .builder
        .finish()
        .map_err(|e| CompileError::Graph(e.to_string()))?;
    Ok(CompiledQueries {
        graph,
        inputs,
        views,
    })
}

impl<'p> Lowering<'p> {
    /// The op producing full rows of `rel` and the stratum it lives in.
    fn relation_op(&self, rel: &str) -> Result<(OpId, usize), CompileError> {
        if let Some(id) = self.sources.get(rel) {
            return Ok((*id, 0));
        }
        if let Some((hub, s)) = self.view_hubs.get(rel) {
            return Ok((*hub, *s));
        }
        Err(CompileError::UnknownRelation(rel.to_string()))
    }

    /// Lower one rule body into a pipeline ending at the view hub.
    fn lower_rule(&mut self, rule: &Rule, stratum: usize) -> Result<(), CompileError> {
        let (mut current, mut schema) = (None::<OpId>, Vec::<String>::new());

        for atom in &rule.body {
            match atom {
                BodyAtom::Scan { rel, terms } => {
                    let arity = *self
                        .arities
                        .get(rel)
                        .ok_or_else(|| CompileError::UnknownRelation(rel.clone()))?;
                    if terms.len() != arity {
                        return Err(CompileError::Arity(format!(
                            "scan of {rel} has {} terms, arity is {arity}",
                            terms.len()
                        )));
                    }
                    let (rel_op, _) = self.relation_op(rel)?;
                    // Normalize relation rows → tuples of the scan's fresh
                    // variables, applying const/wildcard/dup-var filters.
                    let terms_cl = terms.clone();
                    let fresh: Vec<String> = {
                        let mut seen = Vec::new();
                        for t in terms {
                            if let Term::Var(v) = t {
                                if !seen.contains(v) && !schema.contains(v) {
                                    seen.push(v.clone());
                                }
                            }
                        }
                        seen
                    };
                    // Variables shared with the current pipeline (join key)
                    // plus their positions in this relation's row.
                    let shared: Vec<(usize, usize)> = terms
                        .iter()
                        .enumerate()
                        .filter_map(|(i, t)| match t {
                            Term::Var(v) => {
                                schema.iter().position(|s| s == v).map(|lpos| (lpos, i))
                            }
                            _ => None,
                        })
                        .collect();
                    let fresh_positions: Vec<(String, usize)> = fresh
                        .iter()
                        .map(|v| {
                            let pos = terms
                                .iter()
                                .position(|t| matches!(t, Term::Var(x) if x == v))
                                .expect("fresh var came from terms");
                            (v.clone(), pos)
                        })
                        .collect();

                    match current {
                        None => {
                            // First atom: filter+project relation rows to
                            // the scan's fresh variables.
                            let fp = fresh_positions.clone();
                            let normalize = self.builder.filter_map(stratum, move |v: Value| {
                                let row = v.as_tuple()?.to_vec();
                                // const & duplicate-var consistency checks
                                let mut bound: FxHashMap<&str, &Value> = FxHashMap::default();
                                for (i, t) in terms_cl.iter().enumerate() {
                                    match t {
                                        Term::Const(c) => {
                                            if &row[i] != c {
                                                return None;
                                            }
                                        }
                                        Term::Var(name) => {
                                            if let Some(prev) = bound.get(name.as_str()) {
                                                if **prev != row[i] {
                                                    return None;
                                                }
                                            } else {
                                                bound.insert(name.as_str(), &row[i]);
                                            }
                                        }
                                        Term::Wildcard => {}
                                    }
                                }
                                Some(Value::Tuple(
                                    fp.iter().map(|(_, pos)| row[*pos].clone()).collect(),
                                ))
                            });
                            self.builder.edge(rel_op, normalize);
                            current = Some(normalize);
                            schema = fresh;
                        }
                        Some(left) => {
                            // Equijoin on shared vars: normalize the
                            // relation's rows projecting both shared (key)
                            // and fresh variables.
                            let right_proj: Vec<usize> = terms
                                .iter()
                                .enumerate()
                                .filter_map(|(i, t)| match t {
                                    Term::Var(v)
                                        if schema.contains(v)
                                            || fresh.contains(v) =>
                                    {
                                        Some(i)
                                    }
                                    _ => None,
                                })
                                .collect();
                            let right_vars: Vec<String> = terms
                                .iter()
                                .filter_map(|t| match t {
                                    Term::Var(v)
                                        if schema.contains(v) || fresh.contains(v) =>
                                    {
                                        Some(v.clone())
                                    }
                                    _ => None,
                                })
                                .collect();
                            // Deduplicate (first occurrence wins).
                            let mut rp = Vec::new();
                            let mut rv = Vec::new();
                            for (pos, var) in right_proj.iter().zip(right_vars.iter()) {
                                if !rv.contains(var) {
                                    rp.push(*pos);
                                    rv.push(var.clone());
                                }
                            }
                            let terms_cl2 = terms.clone();
                            let rp_cl = rp.clone();
                            let renorm = self.builder.filter_map(stratum, move |v: Value| {
                                let row = v.as_tuple()?.to_vec();
                                let mut bound: FxHashMap<&str, &Value> = FxHashMap::default();
                                for (i, t) in terms_cl2.iter().enumerate() {
                                    match t {
                                        Term::Const(c) => {
                                            if &row[i] != c {
                                                return None;
                                            }
                                        }
                                        Term::Var(name) => {
                                            if let Some(prev) = bound.get(name.as_str()) {
                                                if **prev != row[i] {
                                                    return None;
                                                }
                                            } else {
                                                bound.insert(name.as_str(), &row[i]);
                                            }
                                        }
                                        Term::Wildcard => {}
                                    }
                                }
                                Some(Value::Tuple(
                                    rp_cl.iter().map(|pos| row[*pos].clone()).collect(),
                                ))
                            });
                            self.builder.edge(rel_op, renorm);

                            let left_key_pos: Vec<usize> =
                                shared.iter().map(|(l, _)| *l).collect();
                            let right_key_pos: Vec<usize> = shared
                                .iter()
                                .map(|(_, ri)| {
                                    let var = match &terms[*ri] {
                                        Term::Var(v) => v.clone(),
                                        _ => unreachable!("shared positions are vars"),
                                    };
                                    rv.iter().position(|x| *x == var).expect("var projected")
                                })
                                .collect();
                            // Output: left bindings ++ fresh vars (from right).
                            let fresh_in_right: Vec<usize> = fresh
                                .iter()
                                .map(|v| rv.iter().position(|x| x == v).expect("fresh projected"))
                                .collect();
                            let lk = left_key_pos.clone();
                            let rk = right_key_pos.clone();
                            let fir = fresh_in_right.clone();
                            let join = self.builder.join(
                                stratum,
                                Persistence::Tick,
                                move |l: &Value| {
                                    key_of(l, &lk)
                                },
                                move |r: &Value| {
                                    key_of(r, &rk)
                                },
                                move |l: &Value, r: &Value| {
                                    let mut out = l.as_tuple().map(<[Value]>::to_vec).unwrap_or_default();
                                    if let Some(rt) = r.as_tuple() {
                                        for &i in &fir {
                                            out.push(rt[i].clone());
                                        }
                                    }
                                    Value::Tuple(out)
                                },
                            );
                            self.builder.edge_port(left, join, Port::Left);
                            self.builder.edge_port(renorm, join, Port::Right);
                            current = Some(join);
                            schema.extend(fresh);
                        }
                    }
                }
                BodyAtom::Guard(e) => {
                    let (cur, _) = self.require_current(current, &schema, "guard")?;
                    let ce = compile_expr(e, &schema)?;
                    let f = self.builder.filter(stratum, move |v: &Value| {
                        v.as_tuple()
                            .map(|b| matches!(eval_cexpr(&ce, b), Value::Bool(true)))
                            .unwrap_or(false)
                    });
                    self.builder.edge(cur, f);
                    current = Some(f);
                }
                BodyAtom::Let { var, expr } => {
                    let (cur, _) = self.require_current(current, &schema, "let")?;
                    let ce = compile_expr(expr, &schema)?;
                    let m = self.builder.map(stratum, move |v: Value| {
                        let mut b = v.as_tuple().map(<[Value]>::to_vec).unwrap_or_default();
                        let val = eval_cexpr(&ce, &b);
                        b.push(val);
                        Value::Tuple(b)
                    });
                    self.builder.edge(cur, m);
                    current = Some(m);
                    schema.push(var.clone());
                }
                BodyAtom::Flatten { var, set } => {
                    let (cur, _) = self.require_current(current, &schema, "flatten")?;
                    let ce = compile_expr(set, &schema)?;
                    let fm = self.builder.flat_map(stratum, move |v: Value| {
                        let b = v.as_tuple().map(<[Value]>::to_vec).unwrap_or_default();
                        match eval_cexpr(&ce, &b) {
                            Value::Set(items) => items
                                .into_iter()
                                .map(|item| {
                                    let mut out = b.clone();
                                    out.push(item);
                                    Value::Tuple(out)
                                })
                                .collect(),
                            _ => Vec::new(),
                        }
                    });
                    self.builder.edge(cur, fm);
                    current = Some(fm);
                    schema.push(var.clone());
                }
                BodyAtom::Neg { rel, args } => {
                    let (cur, _) = self.require_current(current, &schema, "negation")?;
                    let (rel_op, rel_stratum) = self.relation_op(rel)?;
                    if rel_stratum >= stratum {
                        return Err(CompileError::NotStratifiable(format!(
                            "negated relation {rel} not in a lower stratum"
                        )));
                    }
                    let ces: Vec<CExpr> = args
                        .iter()
                        .map(|e| compile_expr(e, &schema))
                        .collect::<Result<_, _>>()?;
                    let aj = self.builder.antijoin(
                        stratum,
                        Persistence::Tick,
                        move |v: &Value| {
                            let b = v.as_tuple().unwrap_or(&[]);
                            Value::Tuple(ces.iter().map(|ce| eval_cexpr(ce, b)).collect())
                        },
                        |neg: &Value| neg.clone(),
                    );
                    self.builder.edge_port(cur, aj, Port::Pos);
                    self.builder.edge_port(rel_op, aj, Port::Neg);
                    current = Some(aj);
                }
            }
        }

        // Head projection into the view hub.
        let (cur, _) = self.require_current(current, &schema, "head")?;
        let head_exprs: Vec<CExpr> = rule
            .head_exprs
            .iter()
            .map(|e| compile_expr(e, &schema))
            .collect::<Result<_, _>>()?;
        let project = self.builder.map(stratum, move |v: Value| {
            let b = v.as_tuple().map(<[Value]>::to_vec).unwrap_or_default();
            Value::Tuple(head_exprs.iter().map(|ce| eval_cexpr(ce, &b)).collect())
        });
        self.builder.edge(cur, project);
        let (hub, _) = self.view_hubs[&rule.head];
        self.builder.edge(project, hub);
        Ok(())
    }

    fn lower_agg(
        &mut self,
        agg: &hydro_core::ast::AggRule,
        head_stratum: usize,
    ) -> Result<(), CompileError> {
        // The fold accumulates one stratum below its head (its inputs are
        // complete there) and releases into the head's stratum.
        let fold_stratum = head_stratum.saturating_sub(1);
        // Lower the body as a pseudo-rule projecting group ++ over ++ the
        // body's binding variables. The trailing binding columns give the
        // `distinct` hub below *per-binding* granularity: re-derivations
        // of the same binding dedup (set semantics), while distinct
        // bindings that happen to project equal (group, over) values all
        // reach the fold (bag semantics over bindings — the interpreter's
        // behavior, pinned by the compiler differential proptests).
        let binding_vars = bound_vars(&agg.body);
        let pseudo = Rule {
            head: format!("{}@body", agg.head),
            head_exprs: agg
                .group_exprs
                .iter()
                .cloned()
                .chain(std::iter::once(agg.over.clone()))
                .chain(binding_vars.iter().map(|v| {
                    hydro_core::ast::Expr::Var(v.clone())
                }))
                .collect(),
            body: agg.body.clone(),
        };
        let hub = self.builder.distinct(fold_stratum, Persistence::Tick);
        self.view_hubs
            .insert(pseudo.head.clone(), (hub, fold_stratum));
        self.lower_rule(&pseudo, fold_stratum)?;

        let n_groups = agg.group_exprs.len();
        let fun = agg.agg;
        let fold = self.builder.fold(
            fold_stratum,
            Persistence::Tick,
            move |v: &Value| {
                let t = v.as_tuple().unwrap_or(&[]);
                Value::Tuple(t[..n_groups.min(t.len())].to_vec())
            },
            move |_k: &Value| match fun {
                AggFun::Count | AggFun::Sum => Value::Int(0),
                AggFun::Min | AggFun::Max => Value::Null,
                AggFun::CollectSet => Value::empty_set(),
            },
            move |acc: &mut Value, v: Value| {
                // The `over` value sits right after the group columns;
                // trailing binding columns exist only for dedup.
                let over = v
                    .as_tuple()
                    .and_then(|t| t.get(n_groups).cloned())
                    .unwrap_or(Value::Null);
                match fun {
                    AggFun::Count => {
                        if let Value::Int(n) = acc {
                            *n += 1;
                        }
                    }
                    AggFun::Sum => {
                        if let (Value::Int(n), Some(d)) = (&mut *acc, over.as_int()) {
                            *n = n.wrapping_add(d);
                        }
                    }
                    AggFun::Min => {
                        if *acc == Value::Null || over < *acc {
                            *acc = over;
                        }
                    }
                    AggFun::Max => {
                        if *acc == Value::Null || over > *acc {
                            *acc = over;
                        }
                    }
                    AggFun::CollectSet => {
                        if let Value::Set(s) = acc {
                            s.insert(over);
                        }
                    }
                }
            },
            |k: &Value, acc: &Value| {
                let mut row = k.as_tuple().map(<[Value]>::to_vec).unwrap_or_default();
                row.push(acc.clone());
                Value::Tuple(row)
            },
        );
        self.builder.edge(hub, fold);
        let (head_hub, _) = self.view_hubs[&agg.head];
        self.builder.edge(fold, head_hub);
        Ok(())
    }

    fn require_current(
        &self,
        current: Option<OpId>,
        _schema: &[String],
        what: &str,
    ) -> Result<(OpId, ()), CompileError> {
        current
            .map(|c| (c, ()))
            .ok_or_else(|| CompileError::Unsupported(format!("{what} before any scan")))
    }
}

/// Variables bound by a rule body, in first-binding order, deduplicated.
fn bound_vars(body: &[BodyAtom]) -> Vec<String> {
    let mut vars: Vec<String> = Vec::new();
    let mut push = |name: &str| {
        if !vars.iter().any(|v| v == name) {
            vars.push(name.to_string());
        }
    };
    for atom in body {
        match atom {
            BodyAtom::Scan { terms, .. } => {
                for t in terms {
                    if let Term::Var(v) = t {
                        push(v);
                    }
                }
            }
            BodyAtom::Let { var, .. } | BodyAtom::Flatten { var, .. } => push(var),
            BodyAtom::Neg { .. } | BodyAtom::Guard(_) => {}
        }
    }
    vars
}

fn key_of(v: &Value, positions: &[usize]) -> Value {
    let t = v.as_tuple().unwrap_or(&[]);
    Value::Tuple(positions.iter().map(|&i| t[i].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydro_core::builder::dsl::*;
    use hydro_core::builder::ProgramBuilder;
    use hydro_core::examples::covid_program;

    fn edge_program() -> Program {
        ProgramBuilder::new()
            .mailbox("edges", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("edges", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("edges", &["b", "c"])],
            )
            .build()
    }

    fn rows(pairs: &[(i64, i64)]) -> Vec<Row> {
        pairs
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
            .collect()
    }

    #[test]
    fn compiled_transitive_closure_matches_interpreter() {
        let program = edge_program();
        let mut compiled = compile_queries(&program).unwrap();
        let edges = rows(&[(1, 2), (2, 3), (3, 4), (4, 2)]);
        let mut base = BTreeMap::new();
        base.insert("edges".to_string(), edges.clone());
        let out = compiled.run(&base);

        // Interpreter reference.
        let mut interp_base = hydro_core::eval::Database::default();
        interp_base.insert(
            "edges".to_string(),
            hydro_core::eval::Relation::from_rows(edges),
        );
        let views = hydro_core::eval::evaluate_views(
            &program,
            &interp_base,
            &Default::default(),
            &mut hydro_core::eval::UdfHost::new(),
        )
        .unwrap();
        assert_eq!(out["tc"], views["tc"].to_set());
        assert!(out["tc"].contains(&vec![Value::Int(1), Value::Int(4)]));
    }

    #[test]
    fn compiled_negation_matches_interpreter() {
        let program = ProgramBuilder::new()
            .mailbox("edges", 2)
            .mailbox("banned", 1)
            .rule("ok", vec![v("a"), v("b")], vec![
                scan("edges", &["a", "b"]),
                neg("banned", vec![v("b")]),
            ])
            .build();
        let mut compiled = compile_queries(&program).unwrap();
        let mut base = BTreeMap::new();
        base.insert("edges".to_string(), rows(&[(1, 2), (2, 3)]));
        base.insert(
            "banned".to_string(),
            vec![vec![Value::Int(3)]],
        );
        let out = compiled.run(&base);
        assert_eq!(
            out["ok"],
            BTreeSet::from([vec![Value::Int(1), Value::Int(2)]])
        );
    }

    #[test]
    fn compiled_aggregation_counts_groups() {
        let program = ProgramBuilder::new()
            .mailbox("edges", 2)
            .agg_rule(
                "outdeg",
                vec![v("a")],
                AggFun::Count,
                v("b"),
                vec![scan("edges", &["a", "b"])],
            )
            .build();
        let mut compiled = compile_queries(&program).unwrap();
        let mut base = BTreeMap::new();
        base.insert("edges".to_string(), rows(&[(1, 2), (1, 3), (2, 3)]));
        let out = compiled.run(&base);
        assert_eq!(
            out["outdeg"],
            BTreeSet::from([
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ])
        );
    }

    #[test]
    fn covid_views_compile_and_match_interpreter() {
        let program = covid_program();
        let mut compiled = compile_queries(&program).unwrap();
        // people rows: pid, country, contacts, covid, vaccinated.
        let people = vec![
            vec![
                Value::Int(1),
                Value::from(""),
                Value::set_of([Value::Int(2)]),
                Value::Bool(false),
                Value::Bool(false),
            ],
            vec![
                Value::Int(2),
                Value::from(""),
                Value::set_of([Value::Int(1), Value::Int(3)]),
                Value::Bool(false),
                Value::Bool(false),
            ],
            vec![
                Value::Int(3),
                Value::from(""),
                Value::set_of([Value::Int(2)]),
                Value::Bool(false),
                Value::Bool(false),
            ],
        ];
        let mut base = BTreeMap::new();
        base.insert("people".to_string(), people.clone());
        let out = compiled.run(&base);

        let mut interp_base = hydro_core::eval::Database::default();
        interp_base.insert(
            "people".to_string(),
            hydro_core::eval::Relation::from_rows(people),
        );
        for h in &program.handlers {
            interp_base.insert(h.name.clone(), hydro_core::eval::Relation::new());
        }
        let views = hydro_core::eval::evaluate_views(
            &program,
            &interp_base,
            &Default::default(),
            &mut hydro_core::eval::UdfHost::new(),
        )
        .unwrap();
        assert_eq!(out["transitive"], views["transitive"].to_set());
        // 1 reaches 3 through 2.
        assert!(out["transitive"].contains(&vec![Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn impure_expressions_are_rejected() {
        let program = ProgramBuilder::new()
            .mailbox("xs", 1)
            .rule(
                "bad",
                vec![v("x")],
                vec![
                    scan("xs", &["x"]),
                    guard(call("some_udf", vec![v("x")])),
                ],
            )
            .build();
        assert!(matches!(
            compile_queries(&program),
            Err(CompileError::Unsupported(_))
        ));
    }
}
