//! # hydro-kvs
//!
//! An Anna-style lattice key-value store (§1.2, §2.3 of the CIDR 2021
//! paper): "as in the high-performance Anna KVS, all state is thread local
//! and Hydroflow does not require any locks, atomics, or other coordination
//! for its own execution."
//!
//! Two deployment modes, mirroring Anna's "any scale" pitch:
//!
//! * [`sharded`] — a real multi-threaded store: one OS thread owns each
//!   shard outright (no locks, no shared state), clients talk over
//!   channels. Experiment E9 measures throughput scaling with shard count.
//! * [`gossip`] — a multi-node *replicated* store on the deterministic
//!   network simulator: every node accepts writes for every key and
//!   periodically gossips lattice digests; merges are joins, so replicas
//!   converge under duplication, reordering and delay.
//!
//! Values are last-writer-wins registers ([`hydro_lattice::Lww`]) by
//! default — swap in any [`hydro_lattice::Lattice`] for richer semantics
//! (the gossip node is generic).

pub mod causal;
pub mod gossip;
pub mod sharded;

pub use gossip::{GossipConfig, GossipKvs};
pub use sharded::{ShardedKvs, WorkloadSpec};
