//! Causal (vector-clock) values: the Dynamo-style multi-value register.
//!
//! The Anna design point (§1.2) supports consistency levels beyond LWW by
//! swapping the *value lattice*. This module provides the causal one: a
//! register that keeps **all causally concurrent writes** as siblings
//! (pruning dominated ones), so no acknowledged write is silently lost —
//! the shopping-cart lesson of §7.1. Reads return the sibling set;
//! overwrites that causally descend from everything seen collapse it back
//! to one value.
//!
//! [`CausalRegister`] is a join-semilattice (the merge takes the maximal
//! antichain of the union under vector-clock dominance), so replicas
//! gossiping these registers converge exactly like the LWW store — same
//! protocol, stronger per-key guarantee.

use hydro_lattice::{CausalOrd, Lattice, VectorClock};

/// A multi-value register: the set of causally maximal `(clock, value)`
/// writes seen so far.
///
/// Invariant: siblings are pairwise concurrent (no entry dominates
/// another), kept sorted for canonical equality.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CausalRegister<T: Ord + Clone> {
    siblings: Vec<(VectorClock, T)>,
}

impl<T: Ord + Clone> CausalRegister<T> {
    /// An empty (never-written) register.
    pub fn new() -> Self {
        CausalRegister {
            siblings: Vec::new(),
        }
    }

    /// Current sibling values, in canonical order.
    pub fn read(&self) -> Vec<&T> {
        self.siblings.iter().map(|(_, v)| v).collect()
    }

    /// Number of concurrent siblings (0 = never written, 1 = resolved).
    pub fn width(&self) -> usize {
        self.siblings.len()
    }

    /// The merged clock covering everything this register has seen — what
    /// a client's *context* is in Dynamo terms.
    pub fn context(&self) -> VectorClock {
        let mut ctx = VectorClock::new();
        for (c, _) in &self.siblings {
            ctx.merge(c.clone());
        }
        ctx
    }

    /// Write `value` at `node`, causally after everything currently
    /// visible: collapses all siblings.
    pub fn write(&mut self, node: u64, value: T) {
        let mut clock = self.context();
        clock.tick(node);
        self.siblings = vec![(clock, value)];
    }

    /// Write `value` at `node` with an explicit read `context` (a client
    /// that read earlier and may be stale): dominates only what the
    /// context covers, so concurrent writes survive as siblings.
    pub fn write_with_context(&mut self, node: u64, context: VectorClock, value: T) {
        let mut clock = context;
        clock.tick(node);
        let incoming = CausalRegister {
            siblings: vec![(clock, value)],
        };
        self.merge(incoming);
    }

    fn insert_pruned(siblings: &mut Vec<(VectorClock, T)>, entry: (VectorClock, T)) {
        // Drop the entry if dominated (or duplicated); drop existing
        // entries the new one dominates.
        for (c, v) in siblings.iter() {
            match entry.0.causal_cmp(c) {
                CausalOrd::Before => return,
                CausalOrd::Equal if *v == entry.1 => return,
                _ => {}
            }
        }
        siblings.retain(|(c, _)| !matches!(c.causal_cmp(&entry.0), CausalOrd::Before));
        siblings.push(entry);
    }
}

impl<T: Ord + Clone> Lattice for CausalRegister<T> {
    fn merge(&mut self, other: Self) -> bool {
        let before = std::mem::take(&mut self.siblings);
        let mut merged: Vec<(VectorClock, T)> = Vec::new();
        for entry in before.iter().cloned().chain(other.siblings) {
            Self::insert_pruned(&mut merged, entry);
        }
        merged.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let changed = merged != before;
        self.siblings = merged;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hydro_lattice::laws::check_lattice_laws;

    #[test]
    fn fresh_register_is_empty() {
        let r: CausalRegister<u64> = CausalRegister::new();
        assert_eq!(r.width(), 0);
        assert!(r.read().is_empty());
    }

    #[test]
    fn sequential_writes_resolve_to_one_value() {
        let mut r = CausalRegister::new();
        r.write(1, 10u64);
        r.write(1, 20);
        r.write(2, 30); // node 2 writes after seeing node 1's history
        assert_eq!(r.read(), vec![&30]);
        assert_eq!(r.width(), 1);
    }

    #[test]
    fn concurrent_writes_become_siblings() {
        let mut a = CausalRegister::new();
        let mut b = CausalRegister::new();
        a.write(1, 10u64);
        b.write(2, 20);
        a.merge(b);
        assert_eq!(a.width(), 2, "neither write dominates");
        assert_eq!(a.read(), vec![&10, &20]);
    }

    #[test]
    fn descendant_write_collapses_siblings() {
        let mut a = CausalRegister::new();
        let mut b = CausalRegister::new();
        a.write(1, 10u64);
        b.write(2, 20);
        a.merge(b);
        assert_eq!(a.width(), 2);
        // A client read both siblings, then wrote: causally after both.
        a.write(3, 99);
        assert_eq!(a.read(), vec![&99]);
    }

    #[test]
    fn stale_context_write_keeps_concurrent_sibling() {
        let mut r = CausalRegister::new();
        r.write(1, 10u64);
        let stale_ctx = r.context();
        // Node 1 writes again (unseen by the stale client)…
        r.write(1, 11);
        // …and the stale client writes with its old context.
        r.write_with_context(2, stale_ctx, 20);
        assert_eq!(r.width(), 2, "new write does not clobber the unseen 11");
        assert_eq!(r.read(), vec![&11, &20]);
    }

    #[test]
    fn no_acknowledged_write_is_lost() {
        // The LWW anomaly, fixed: two replicas write concurrently; after
        // exchange, BOTH values are visible (LWW would keep one).
        let mut a = CausalRegister::new();
        let mut b = CausalRegister::new();
        a.write(1, "cart+apple");
        b.write(2, "cart+pear");
        let (a0, b0) = (a.clone(), b.clone());
        a.merge(b0);
        b.merge(a0);
        assert_eq!(a, b, "converged");
        assert_eq!(a.width(), 2, "both writes survive");
    }

    #[test]
    fn merge_is_idempotent_commutative_associative() {
        let mut a = CausalRegister::new();
        a.write(1, 1u64);
        let mut b = CausalRegister::new();
        b.write(2, 2);
        let mut c = CausalRegister::new();
        c.write(3, 3);
        c.write(3, 4);
        check_lattice_laws(&a, &b, &c).unwrap();
        check_lattice_laws(&CausalRegister::<u64>::new(), &a, &b).unwrap();
    }

    #[test]
    fn duplicate_delivery_is_harmless() {
        let mut a = CausalRegister::new();
        a.write(1, 5u64);
        let digest = a.clone();
        let mut b = CausalRegister::new();
        assert!(b.merge(digest.clone()));
        assert!(!b.merge(digest.clone()));
        assert!(!b.merge(digest));
        assert_eq!(b.read(), vec![&5]);
    }
}
