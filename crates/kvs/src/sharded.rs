//! Thread-per-shard KVS: Anna's coordination-free scaling, for real.
//!
//! Each shard is owned by exactly one OS thread; there are no locks and no
//! shared mutable state — only message passing over channels (crossbeam).
//! This is the architecture §2.3 credits for Anna's performance, and what
//! experiment E9's throughput-vs-threads curve measures.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hydro_lattice::{Lattice, Lww};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Zipf};
use rustc_hash::FxHashMap;
use std::thread::JoinHandle;

/// Keys are small integers (hashed to shards by modulo).
pub type Key = u64;

enum Cmd {
    Put {
        key: Key,
        write: Lww<u64>,
    },
    Get {
        key: Key,
        reply: Sender<Option<u64>>,
    },
    /// Drain marker: reply when everything before it is processed.
    Flush {
        reply: Sender<()>,
    },
    Stop,
}

/// A running sharded store.
pub struct ShardedKvs {
    senders: Vec<Sender<Cmd>>,
    handles: Vec<JoinHandle<u64>>,
}

impl ShardedKvs {
    /// Spawn `shards` worker threads, each owning its keyspace slice.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx): (Sender<Cmd>, Receiver<Cmd>) = unbounded();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                // The shard's entire state: thread-local, lock-free.
                let mut store: FxHashMap<Key, Lww<u64>> = FxHashMap::default();
                let mut ops: u64 = 0;
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Put { key, write } => {
                            ops += 1;
                            match store.entry(key) {
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(write);
                                }
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    e.get_mut().merge(write);
                                }
                            }
                        }
                        Cmd::Get { key, reply } => {
                            ops += 1;
                            let _ = reply.send(store.get(&key).map(|l| *l.value()));
                        }
                        Cmd::Flush { reply } => {
                            let _ = reply.send(());
                        }
                        Cmd::Stop => break,
                    }
                }
                ops
            }));
        }
        ShardedKvs { senders, handles }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    fn shard_of(&self, key: Key) -> usize {
        (key as usize) % self.senders.len()
    }

    /// Fire-and-forget write (stamped by the caller).
    pub fn put(&self, key: Key, timestamp: u64, writer: u64, value: u64) {
        let cmd = Cmd::Put {
            key,
            write: Lww::write(timestamp, writer, value),
        };
        let _ = self.senders[self.shard_of(key)].send(cmd);
    }

    /// Synchronous read.
    pub fn get(&self, key: Key) -> Option<u64> {
        let (tx, rx) = bounded(1);
        let _ = self.senders[self.shard_of(key)].send(Cmd::Get { key, reply: tx });
        rx.recv().ok().flatten()
    }

    /// Wait until all previously submitted commands are processed.
    pub fn flush(&self) {
        let mut waits = Vec::new();
        for s in &self.senders {
            let (tx, rx) = bounded(1);
            let _ = s.send(Cmd::Flush { reply: tx });
            waits.push(rx);
        }
        for rx in waits {
            let _ = rx.recv();
        }
    }

    /// Stop workers; returns total ops processed across shards.
    pub fn shutdown(self) -> u64 {
        for s in &self.senders {
            let _ = s.send(Cmd::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().unwrap_or(0))
            .sum()
    }
}

/// A synthetic workload: zipf-skewed keys, put/get mix — the shape of the
/// Anna evaluation's workloads.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Total operations.
    pub ops: usize,
    /// Distinct keys.
    pub keys: u64,
    /// Zipf skew exponent (0 = uniform-ish, ~1 = heavily skewed).
    pub zipf_exponent: f64,
    /// Fraction of writes (0.0–1.0).
    pub write_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Materialize the operation sequence: `(key, is_write)` pairs.
    pub fn generate(&self) -> Vec<(Key, bool)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.keys, self.zipf_exponent.max(0.001))
            .expect("valid zipf parameters");
        let write_threshold = (self.write_fraction * u32::MAX as f64) as u32;
        (0..self.ops)
            .map(|_| {
                let key = zipf.sample(&mut rng) as Key - 1;
                let is_write =
                    rand::Rng::gen::<u32>(&mut rng) < write_threshold;
                (key, is_write)
            })
            .collect()
    }
}

/// Run a pre-generated workload against the store from `clients` client
/// threads; returns wall-clock duration. Writes are fire-and-forget, reads
/// synchronous — the store is flushed before returning.
pub fn run_workload(kvs: &ShardedKvs, ops: &[(Key, bool)], clients: usize) -> std::time::Duration {
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        let chunk = ops.len().div_ceil(clients.max(1));
        for (c, slice) in ops.chunks(chunk.max(1)).enumerate() {
            let kvs_ref = &*kvs;
            scope.spawn(move || {
                for (op_ix, (key, is_write)) in slice.iter().enumerate() {
                    if *is_write {
                        kvs_ref.put(*key, op_ix as u64, c as u64, op_ix as u64);
                    } else {
                        let _ = kvs_ref.get(*key);
                    }
                }
            });
        }
    });
    kvs.flush();
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trips() {
        let kvs = ShardedKvs::new(4);
        kvs.put(10, 1, 0, 111);
        kvs.put(11, 1, 0, 222);
        kvs.flush();
        assert_eq!(kvs.get(10), Some(111));
        assert_eq!(kvs.get(11), Some(222));
        assert_eq!(kvs.get(99), None);
        kvs.shutdown();
    }

    #[test]
    fn lww_resolves_concurrent_writers_deterministically() {
        let kvs = ShardedKvs::new(2);
        // Same timestamp, different writers: higher writer id wins — the
        // same outcome any replica would compute.
        kvs.put(5, 100, 1, 111);
        kvs.put(5, 100, 2, 222);
        kvs.flush();
        assert_eq!(kvs.get(5), Some(222));
        // A stale write never regresses the value.
        kvs.put(5, 50, 9, 999);
        kvs.flush();
        assert_eq!(kvs.get(5), Some(222));
        kvs.shutdown();
    }

    #[test]
    fn ops_are_counted() {
        let kvs = ShardedKvs::new(3);
        for k in 0..30 {
            kvs.put(k, 1, 0, k);
        }
        kvs.flush();
        assert_eq!(kvs.shutdown(), 30);
    }

    #[test]
    fn workload_generator_is_deterministic_and_mixed() {
        let spec = WorkloadSpec {
            ops: 1000,
            keys: 100,
            zipf_exponent: 1.0,
            write_fraction: 0.3,
            seed: 7,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        let writes = a.iter().filter(|(_, w)| *w).count();
        assert!(writes > 200 && writes < 400, "writes={writes}");
        assert!(a.iter().all(|(k, _)| *k < 100));
    }

    #[test]
    fn parallel_workload_executes_fully() {
        let kvs = ShardedKvs::new(4);
        let spec = WorkloadSpec {
            ops: 2000,
            keys: 64,
            zipf_exponent: 0.8,
            write_fraction: 1.0,
            seed: 3,
        };
        let ops = spec.generate();
        run_workload(&kvs, &ops, 4);
        assert_eq!(kvs.shutdown(), 2000);
    }
}
