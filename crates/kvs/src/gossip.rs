//! Gossip-replicated KVS on the deterministic simulator.
//!
//! Multi-master: every node accepts every write; replicas exchange lattice
//! digests on a gossip timer and merge them — convergence follows from the
//! lattice laws alone (no version negotiations, no read-repair protocol),
//! which is exactly the design §1.2 celebrates in Anna: "high-performance,
//! consistency-rich autoscaling" from monotone state.

use hydro_lattice::{Lattice, Lww, MapUnion};
use hydro_net::{Ctx, DomainPath, LinkModel, NodeId, NodeLogic, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Keys are small integers.
pub type Key = u64;

/// Messages of the gossip protocol.
#[derive(Clone, Debug)]
pub enum KvsMsg {
    /// Client write.
    Put {
        /// Key to write.
        key: Key,
        /// Stamped register value.
        write: Lww<u64>,
    },
    /// Client read; the reply is recorded in the node's read log.
    Get {
        /// Key to read.
        key: Key,
        /// Client-chosen tag to correlate reads in the log.
        tag: u64,
    },
    /// A gossiped digest of a peer's entire map. (Whole-map digests keep
    /// the protocol honest for tests; a production delta-gossip is an
    /// optimization, not a semantic change — merges are idempotent.)
    Digest(MapUnion<Key, Lww<u64>>),
}

/// Gossip cadence configuration.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Gossip period (µs of virtual time).
    pub period_us: SimTime,
    /// Simulation seed.
    pub seed: u64,
    /// Link model.
    pub link: LinkModel,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            period_us: 5_000,
            seed: 0,
            link: LinkModel::default(),
        }
    }
}

const GOSSIP_TIMER: u64 = 7;

/// Inspectable replica state, shared between the node and the cluster
/// handle (single-threaded simulation, so `Rc<RefCell>` suffices).
#[derive(Default)]
pub struct KvsState {
    /// The replica's lattice map.
    pub map: MapUnion<Key, Lww<u64>>,
    /// `(tag, value)` log of answered reads.
    pub reads: Vec<(u64, Option<u64>)>,
    /// Digests merged.
    pub merges: u64,
}

/// One replica node.
pub struct KvsNode {
    state: Rc<RefCell<KvsState>>,
    peers: Vec<NodeId>,
    /// Round-robin gossip target index.
    next_peer: usize,
    period_us: SimTime,
}

impl KvsNode {
    fn new(period_us: SimTime, peers: Vec<NodeId>) -> Self {
        KvsNode {
            state: Rc::new(RefCell::new(KvsState::default())),
            peers,
            next_peer: 0,
            period_us,
        }
    }

    fn handle(&self) -> Rc<RefCell<KvsState>> {
        Rc::clone(&self.state)
    }
}

impl NodeLogic<KvsMsg> for KvsNode {
    fn on_message(&mut self, _ctx: &mut Ctx<KvsMsg>, _src: NodeId, msg: KvsMsg) {
        let mut st = self.state.borrow_mut();
        match msg {
            KvsMsg::Put { key, write } => {
                st.map.merge_entry(key, write);
            }
            KvsMsg::Get { key, tag } => {
                let v = st.map.get(&key).map(|l| *l.value());
                st.reads.push((tag, v));
            }
            KvsMsg::Digest(d) => {
                st.merges += 1;
                st.map.merge(d);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<KvsMsg>, timer: u64) {
        if timer != GOSSIP_TIMER {
            return;
        }
        if !self.peers.is_empty() {
            let target = self.peers[self.next_peer % self.peers.len()];
            self.next_peer += 1;
            ctx.send(target, KvsMsg::Digest(self.state.borrow().map.clone()));
        }
        ctx.set_timer(self.period_us, GOSSIP_TIMER);
    }
}

/// A cluster of gossiping replicas.
pub struct GossipKvs {
    /// The simulator (exposed for failure injection in tests/benches).
    pub sim: Sim<KvsMsg>,
    /// Replica node ids.
    pub nodes: Vec<NodeId>,
    states: Vec<Rc<RefCell<KvsState>>>,
}

impl GossipKvs {
    /// Spin up `n` replicas, one per AZ, with gossip timers running.
    pub fn new(n: usize, config: GossipConfig) -> Self {
        let mut sim = Sim::new(config.link, config.seed);
        let mut nodes = Vec::new();
        let mut states = Vec::new();
        for az in 0..n {
            // Node ids are assigned sequentially, so the full-mesh peer
            // list is known before construction.
            let peers: Vec<NodeId> = (0..n).filter(|&p| p != az).collect();
            let node = KvsNode::new(config.period_us, peers);
            states.push(node.handle());
            let id = sim.add_node(node, DomainPath::new(az as u32, 0, 0));
            let stagger = (az as u64 + 1) * 100;
            sim.start_timer(id, GOSSIP_TIMER, stagger);
            nodes.push(id);
        }
        GossipKvs { sim, nodes, states }
    }

    /// Write through a specific replica.
    pub fn put_at(&mut self, node_ix: usize, key: Key, timestamp: u64, writer: u64, value: u64) {
        self.sim.send_external(
            self.nodes[node_ix],
            KvsMsg::Put {
                key,
                write: Lww::write(timestamp, writer, value),
            },
        );
    }

    /// Read through a specific replica (answered into its read log).
    pub fn get_at(&mut self, node_ix: usize, key: Key, tag: u64) {
        self.sim
            .send_external(self.nodes[node_ix], KvsMsg::Get { key, tag });
    }

    /// Run virtual time forward.
    pub fn run_for(&mut self, duration_us: SimTime) {
        let deadline = self.sim.now() + duration_us;
        self.sim.run_until(deadline);
    }

    /// Snapshot a replica's map.
    pub fn map_of(&self, node_ix: usize) -> MapUnion<Key, Lww<u64>> {
        self.states[node_ix].borrow().map.clone()
    }

    /// A replica's read log.
    pub fn reads_of(&self, node_ix: usize) -> Vec<(u64, Option<u64>)> {
        self.states[node_ix].borrow().reads.clone()
    }

    /// Whether all live replicas hold identical maps.
    pub fn converged(&self) -> bool {
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.sim.is_alive(self.nodes[i]))
            .collect();
        live.windows(2)
            .all(|w| self.map_of(w[0]) == self.map_of(w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_anywhere_converge_everywhere() {
        let mut kvs = GossipKvs::new(4, GossipConfig::default());
        kvs.put_at(0, 1, 10, 0, 100);
        kvs.put_at(1, 2, 10, 1, 200);
        kvs.put_at(2, 3, 10, 2, 300);
        kvs.put_at(3, 1, 20, 3, 111); // newer write to key 1 elsewhere
        kvs.run_for(100_000);
        assert!(kvs.converged());
        let m = kvs.map_of(0);
        assert_eq!(m.get(&1).map(|l| *l.value()), Some(111));
        assert_eq!(m.get(&2).map(|l| *l.value()), Some(200));
        assert_eq!(m.get(&3).map(|l| *l.value()), Some(300));
    }

    #[test]
    fn convergence_survives_lossy_links() {
        let mut config = GossipConfig::default();
        config.link.drop_prob = 0.3;
        config.seed = 42;
        let mut kvs = GossipKvs::new(3, config);
        for k in 0..10 {
            kvs.put_at((k % 3) as usize, k, k, 0, k * 7);
        }
        // Gossip is idempotent: repeated rounds push through the loss.
        kvs.run_for(400_000);
        assert!(kvs.converged(), "anti-entropy defeats 30% loss");
    }

    #[test]
    fn reads_reflect_gossip_once_propagated() {
        let mut kvs = GossipKvs::new(2, GossipConfig::default());
        kvs.put_at(0, 5, 1, 0, 55);
        // Read at the *other* replica after propagation.
        kvs.run_for(50_000);
        kvs.get_at(1, 5, 1);
        kvs.run_for(10_000);
        assert_eq!(kvs.reads_of(1), vec![(1, Some(55))]);
    }

    #[test]
    fn partitioned_replica_catches_up_after_heal() {
        let mut kvs = GossipKvs::new(3, GossipConfig::default());
        let (a, b, c) = (kvs.nodes[0], kvs.nodes[1], kvs.nodes[2]);
        kvs.sim.partition(&[a, b], &[c]);
        kvs.put_at(0, 9, 1, 0, 900);
        kvs.run_for(60_000);
        assert_ne!(
            kvs.map_of(2).get(&9).map(|l| *l.value()),
            Some(900),
            "partitioned node must not have the write yet"
        );
        kvs.sim.heal();
        kvs.run_for(60_000);
        assert!(kvs.converged());
        assert_eq!(kvs.map_of(2).get(&9).map(|l| *l.value()), Some(900));
    }
}
