//! Property tests for the causal multi-value register: replica
//! convergence under arbitrary merge schedules, the sibling antichain
//! invariant, and the "no acknowledged write lost" guarantee that
//! distinguishes it from LWW.

use hydro_kvs::causal::CausalRegister;
use hydro_lattice::laws::check_lattice_laws;
use hydro_lattice::Lattice;
use proptest::prelude::*;

/// A replica-local action.
#[derive(Clone, Debug)]
enum Act {
    /// Write a value at the replica (descends from its current view).
    Write(u8),
    /// Pull state from another replica (by index).
    Pull(u8),
}

fn arb_script() -> impl Strategy<Value = Vec<(u8, Act)>> {
    prop::collection::vec(
        (
            0u8..3,
            prop_oneof![
                3 => (0u8..32).prop_map(Act::Write),
                2 => (0u8..3).prop_map(Act::Pull),
            ],
        ),
        0..24,
    )
}

fn run(script: &[(u8, Act)]) -> (Vec<CausalRegister<u8>>, Vec<u8>) {
    let mut replicas: Vec<CausalRegister<u8>> = vec![CausalRegister::new(); 3];
    let mut all_writes = Vec::new();
    for (site, act) in script {
        match act {
            Act::Write(v) => {
                replicas[*site as usize].write(u64::from(*site) + 1, *v);
                all_writes.push(*v);
            }
            Act::Pull(from) => {
                let digest = replicas[*from as usize].clone();
                replicas[*site as usize].merge(digest);
            }
        }
    }
    (replicas, all_writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn full_exchange_converges_all_replicas(script in arb_script()) {
        let (mut replicas, _) = run(&script);
        // Full anti-entropy round: everyone pulls from everyone.
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let digest = replicas[j].clone();
                    replicas[i].merge(digest);
                }
            }
        }
        prop_assert_eq!(&replicas[0], &replicas[1]);
        prop_assert_eq!(&replicas[1], &replicas[2]);
    }

    #[test]
    fn siblings_are_always_an_antichain(script in arb_script()) {
        let (replicas, _) = run(&script);
        for r in &replicas {
            // Sibling count is bounded by the number of sites — pairwise
            // concurrency admits at most one maximal write per site here.
            prop_assert!(r.width() <= 3, "width {} exceeds site count", r.width());
            // And the register's own merge is idempotent on itself
            // (antichain canonical form).
            let mut again = r.clone();
            prop_assert!(!again.merge(r.clone()), "self-merge must be a no-op");
        }
    }

    #[test]
    fn latest_write_of_each_site_survives_somewhere(script in arb_script()) {
        // After full exchange, each site's final write is either visible
        // as a sibling or causally dominated by a later write that read
        // it — it is never dropped by a concurrent write (the LWW bug).
        let (mut replicas, _) = run(&script);
        // Record each site's last written value (if its register still
        // holds it locally, it was not yet dominated at that site).
        let local_views: Vec<Vec<u8>> = replicas
            .iter()
            .map(|r| r.read().into_iter().copied().collect())
            .collect();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let digest = replicas[j].clone();
                    replicas[i].merge(digest);
                }
            }
        }
        let merged: Vec<u8> = replicas[0].read().into_iter().copied().collect();
        // Every value that was causally maximal at some replica before the
        // exchange and not dominated by another site's descendant write
        // must appear in the merged sibling set — conservatively: the
        // union of local views covers the merged set.
        for v in &merged {
            prop_assert!(
                local_views.iter().any(|view| view.contains(v)),
                "merged sibling {v} appeared from nowhere"
            );
        }
    }

    #[test]
    fn lattice_laws_hold_on_random_states(
        s1 in arb_script(),
        s2 in arb_script(),
        s3 in arb_script(),
    ) {
        let a = run(&s1).0.into_iter().next().unwrap();
        let b = run(&s2).0.into_iter().nth(1).unwrap();
        let c = run(&s3).0.into_iter().nth(2).unwrap();
        check_lattice_laws(&a, &b, &c).unwrap();
    }
}
