//! The non-monotone baseline: last-writer-wins document replication.
//!
//! This is what a naive "replicate the document" design does without CRDT
//! structure: every edit produces a new whole-document snapshot stamped
//! with `(timestamp, site)`; replicas keep the largest stamp. The design
//! converges — LWW registers are lattices over the *stamp* — but the value
//! it converges to silently **discards concurrent edits**: if two sites
//! edit during the same round trip, one site's keystrokes vanish.
//!
//! The collaborative-editing experiment (E13) measures exactly that: the
//! Logoot cluster preserves 100% of typed characters, the LWW baseline
//! loses whatever concurrency produced — the quantitative version of the
//! paper's claim that application-level monotone design beats storage-level
//! convergence (§7.1).

use hydro_net::{Ctx, DomainPath, LinkModel, NodeId, NodeLogic, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A whole-document snapshot with its LWW stamp.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Lamport-style timestamp (max of seen + 1 on local edit).
    pub stamp: u64,
    /// Tie-break site id.
    pub site: u64,
    /// The full document text.
    pub text: String,
}

impl Snapshot {
    fn beats(&self, other: &Snapshot) -> bool {
        (self.stamp, self.site) > (other.stamp, other.site)
    }
}

/// Replica state.
#[derive(Debug, Default)]
pub struct LwwState {
    /// Current winning snapshot.
    pub snap: Snapshot,
    /// Snapshots received that lost the LWW race *after* carrying edits —
    /// i.e. overwritten concurrent work.
    pub overwritten: u64,
}

struct LwwNode {
    state: Rc<RefCell<LwwState>>,
}

impl NodeLogic<Snapshot> for LwwNode {
    fn on_message(&mut self, _ctx: &mut Ctx<Snapshot>, _src: NodeId, msg: Snapshot) {
        let mut st = self.state.borrow_mut();
        if msg.beats(&st.snap) {
            st.snap = msg;
        } else if msg.text != st.snap.text {
            st.overwritten += 1;
        }
    }
}

/// N replicas of the LWW document.
pub struct LwwCluster {
    /// Underlying simulator.
    pub sim: Sim<Snapshot>,
    nodes: Vec<NodeId>,
    states: Vec<Rc<RefCell<LwwState>>>,
}

impl LwwCluster {
    /// Build `n` replicas.
    pub fn new(n: usize, link: LinkModel, seed: u64) -> Self {
        let mut sim = Sim::new(link, seed);
        let mut nodes = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let state = Rc::new(RefCell::new(LwwState::default()));
            let id = sim.add_node(
                LwwNode {
                    state: Rc::clone(&state),
                },
                DomainPath::new(i as u32, 0, 0),
            );
            nodes.push(id);
            states.push(state);
        }
        LwwCluster { sim, nodes, states }
    }

    /// Replica `node` inserts `ch` at `index` (whole-text rewrite + broadcast).
    pub fn insert(&mut self, node: usize, index: usize, ch: char) {
        let snap = {
            let mut st = self.states[node].borrow_mut();
            let mut text = st.snap.text.clone();
            let index = index.min(text.chars().count());
            let byte = text
                .char_indices()
                .nth(index)
                .map_or(text.len(), |(b, _)| b);
            text.insert(byte, ch);
            st.snap = Snapshot {
                stamp: st.snap.stamp + 1,
                site: node as u64 + 1,
                text,
            };
            st.snap.clone()
        };
        for peer in 0..self.nodes.len() {
            if peer != node {
                self.sim
                    .send_internal(self.nodes[node], self.nodes[peer], snap.clone());
            }
        }
    }

    /// Replica `node` types `s` starting at `index`.
    pub fn insert_str(&mut self, node: usize, index: usize, s: &str) {
        for (k, c) in s.chars().enumerate() {
            self.insert(node, index + k, c);
        }
    }

    /// Current text at a replica.
    pub fn text(&self, node: usize) -> String {
        self.states[node].borrow().snap.text.clone()
    }

    /// All replicas agree.
    pub fn converged(&self) -> bool {
        let first = self.text(0);
        (1..self.nodes.len()).all(|i| self.text(i) == first)
    }

    /// Run for `us` microseconds of virtual time.
    pub fn run_for(&mut self, us: SimTime) {
        let deadline = self.sim.now() + us;
        self.sim.run_until(deadline);
    }

    /// How many typed characters survive at replica 0, out of `typed`.
    pub fn surviving_chars(&self, typed: &str) -> usize {
        let text = self.text(0);
        let mut pool: Vec<char> = text.chars().collect();
        typed
            .chars()
            .filter(|c| {
                if let Some(ix) = pool.iter().position(|p| p == c) {
                    pool.swap_remove(ix);
                    true
                } else {
                    false
                }
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link() -> LinkModel {
        LinkModel {
            drop_prob: 0.0,
            ..LinkModel::default()
        }
    }

    #[test]
    fn sequential_edits_converge_and_survive() {
        let mut c = LwwCluster::new(3, quiet_link(), 1);
        c.insert_str(0, 0, "abc");
        c.run_for(1_000_000);
        assert!(c.converged());
        assert_eq!(c.text(1), "abc");
    }

    #[test]
    fn concurrent_edits_lose_work() {
        let mut c = LwwCluster::new(2, quiet_link(), 1);
        // Both sites type before any snapshot crosses the wire.
        c.insert_str(0, 0, "aaaa");
        c.insert_str(1, 0, "bbbb");
        c.run_for(2_000_000);
        assert!(c.converged(), "LWW does converge…");
        let t = c.text(0);
        assert!(
            !(t.contains('a') && t.contains('b')),
            "…but one side's edits are gone: {t}"
        );
        assert_eq!(t.chars().count(), 4, "half the typed chars were lost");
    }

    #[test]
    fn surviving_chars_counts_multiset_overlap() {
        let mut c = LwwCluster::new(2, quiet_link(), 1);
        c.insert_str(0, 0, "ab");
        c.run_for(1_000_000);
        assert_eq!(c.surviving_chars("ab"), 2);
        assert_eq!(c.surviving_chars("abq"), 2);
    }
}
