//! # hydro-collab
//!
//! Coordination-free collaborative text editing over the simulated
//! cluster — the paper's flagship "monotonic design pattern" application
//! (§1.2 cites Logoot-style collaborative editing; §7 lists it among the
//! clever application-level consistency designs).
//!
//! Two replication designs share one workload API so experiments can
//! contrast them:
//!
//! * [`Cluster`] — each replica runs a [`hydro_lattice::logoot`] editor;
//!   edits broadcast as CRDT operations and a periodic anti-entropy digest
//!   covers dropped messages. Convergence needs **no coordination**: every
//!   mutation is a lattice merge (CALM's monotone case).
//! * [`baseline::LwwCluster`] — the non-monotone strawman: replicas ship
//!   whole-document last-writer-wins snapshots. It also "converges", but by
//!   *discarding* concurrent work — the experiment counts the lost edits.

#![warn(missing_docs)]

pub mod baseline;

use hydro_lattice::logoot::{Editor, LogootDoc, Op};
use hydro_net::{Ctx, DomainPath, LinkModel, NodeId, NodeLogic, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Messages between editor replicas.
#[derive(Clone, Debug)]
pub enum EditMsg {
    /// One CRDT edit operation (idempotent, commutative).
    Op(Op),
    /// Anti-entropy: a full lattice digest of the sender's document.
    Digest(LogootDoc),
}

/// Inspectable replica state.
#[derive(Debug)]
pub struct EditState {
    /// The replica's editor (site id = node id + 1).
    pub editor: Editor,
    /// Operations applied from remote peers.
    pub remote_ops: u64,
    /// Digests merged that actually changed state.
    pub effective_digests: u64,
}

const GOSSIP_TIMER: u64 = 11;

struct EditorNode {
    state: Rc<RefCell<EditState>>,
    peers: Vec<NodeId>,
    next_peer: usize,
    gossip_period_us: Option<SimTime>,
}

impl NodeLogic<EditMsg> for EditorNode {
    fn on_message(&mut self, _ctx: &mut Ctx<EditMsg>, _src: NodeId, msg: EditMsg) {
        let mut st = self.state.borrow_mut();
        match msg {
            EditMsg::Op(op) => {
                st.editor.apply(&op);
                st.remote_ops += 1;
            }
            EditMsg::Digest(doc) => {
                if st.editor.merge_state(doc) {
                    st.effective_digests += 1;
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<EditMsg>, timer: u64) {
        if timer != GOSSIP_TIMER {
            return;
        }
        let Some(period) = self.gossip_period_us else {
            return;
        };
        if !self.peers.is_empty() {
            let target = self.peers[self.next_peer % self.peers.len()];
            self.next_peer = self.next_peer.wrapping_add(1);
            let digest = self.state.borrow().editor.doc().clone();
            ctx.send(target, EditMsg::Digest(digest));
        }
        ctx.set_timer(period, GOSSIP_TIMER);
    }
}

/// Configuration for a collaborative-editing cluster.
#[derive(Clone, Copy, Debug)]
pub struct CollabConfig {
    /// Link model for the simulated network.
    pub link: LinkModel,
    /// Simulation seed.
    pub seed: u64,
    /// Anti-entropy period; `None` disables gossip (op broadcast only).
    pub gossip_period_us: Option<SimTime>,
}

impl Default for CollabConfig {
    fn default() -> Self {
        CollabConfig {
            link: LinkModel::default(),
            seed: 0,
            gossip_period_us: Some(20_000),
        }
    }
}

/// N collaborating editor replicas on the simulator.
pub struct Cluster {
    /// The underlying simulator (exposed for failure injection).
    pub sim: Sim<EditMsg>,
    nodes: Vec<NodeId>,
    states: Vec<Rc<RefCell<EditState>>>,
}

impl Cluster {
    /// Build `n` replicas, one per simulated node, each in its own AZ.
    pub fn new(n: usize, config: CollabConfig) -> Self {
        assert!(n >= 1);
        let mut sim = Sim::new(config.link, config.seed);
        let all: Vec<NodeId> = (0..n).collect();
        let mut nodes = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let state = Rc::new(RefCell::new(EditState {
                editor: Editor::new(i as u64 + 1),
                remote_ops: 0,
                effective_digests: 0,
            }));
            let peers: Vec<NodeId> = all.iter().copied().filter(|&p| p != i).collect();
            let id = sim.add_node(
                EditorNode {
                    state: Rc::clone(&state),
                    peers,
                    next_peer: i, // stagger round-robin starting points
                    gossip_period_us: config.gossip_period_us,
                },
                DomainPath::new(i as u32, 0, 0),
            );
            nodes.push(id);
            states.push(state);
        }
        if let Some(period) = config.gossip_period_us {
            for (i, &id) in nodes.iter().enumerate() {
                // Stagger timers so digests do not all fire at once.
                sim.start_timer(id, GOSSIP_TIMER, period + (i as SimTime) * 97);
            }
        }
        Cluster { sim, nodes, states }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no replicas (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn broadcast(&mut self, from: usize, op: Op) {
        for peer in 0..self.nodes.len() {
            if peer != from {
                self.sim
                    .send_internal(self.nodes[from], self.nodes[peer], EditMsg::Op(op.clone()));
            }
        }
    }

    /// Replica `node` inserts `ch` at visible index `index`.
    pub fn insert(&mut self, node: usize, index: usize, ch: char) {
        let op = self.states[node].borrow_mut().editor.insert(index, ch);
        self.broadcast(node, op);
    }

    /// Replica `node` types `s` starting at visible index `index`.
    pub fn insert_str(&mut self, node: usize, index: usize, s: &str) {
        let ops = self.states[node].borrow_mut().editor.insert_str(index, s);
        for op in ops {
            self.broadcast(node, op);
        }
    }

    /// Replica `node` deletes the visible character at `index`.
    pub fn delete(&mut self, node: usize, index: usize) {
        let op = self.states[node].borrow_mut().editor.delete(index);
        if let Some(op) = op {
            self.broadcast(node, op);
        }
    }

    /// Current text at a replica.
    pub fn text(&self, node: usize) -> String {
        self.states[node].borrow().editor.text()
    }

    /// Inspect a replica's counters.
    pub fn state(&self, node: usize) -> std::cell::Ref<'_, EditState> {
        self.states[node].borrow()
    }

    /// All replicas show identical text.
    pub fn converged(&self) -> bool {
        let first = self.text(0);
        (1..self.len()).all(|i| self.text(i) == first)
    }

    /// Run the simulation for `us` microseconds of virtual time.
    pub fn run_for(&mut self, us: SimTime) {
        let deadline = self.sim.now() + us;
        self.sim.run_until(deadline);
    }

    /// Partition the first `k` replicas from the rest.
    pub fn partition_at(&mut self, k: usize) {
        let (a, b) = self.nodes.split_at(k);
        let a = a.to_vec();
        let b = b.to_vec();
        self.sim.partition(&a, &b);
    }

    /// Heal all partitions.
    pub fn heal(&mut self) {
        self.sim.heal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_link() -> LinkModel {
        LinkModel {
            drop_prob: 0.0,
            ..LinkModel::default()
        }
    }

    #[test]
    fn three_editors_converge() {
        let mut c = Cluster::new(
            3,
            CollabConfig {
                link: quiet_link(),
                ..CollabConfig::default()
            },
        );
        c.insert_str(0, 0, "hello ");
        c.insert_str(1, 0, "world");
        c.insert_str(2, 0, "!!");
        c.run_for(2_000_000);
        assert!(c.converged(), "{:?}", (c.text(0), c.text(1), c.text(2)));
        assert_eq!(c.text(0).len(), 13);
    }

    #[test]
    fn concurrent_edits_all_survive() {
        let mut c = Cluster::new(
            2,
            CollabConfig {
                link: quiet_link(),
                ..CollabConfig::default()
            },
        );
        c.insert_str(0, 0, "aaa");
        c.insert_str(1, 0, "bbb");
        c.run_for(2_000_000);
        assert!(c.converged());
        let t = c.text(0);
        assert_eq!(t.matches('a').count(), 3, "{t}");
        assert_eq!(t.matches('b').count(), 3, "{t}");
    }

    #[test]
    fn partition_heals_without_coordination() {
        let mut c = Cluster::new(
            4,
            CollabConfig {
                link: quiet_link(),
                ..CollabConfig::default()
            },
        );
        c.insert_str(0, 0, "base");
        c.run_for(1_000_000);
        assert!(c.converged());

        c.partition_at(2);
        c.insert_str(0, 4, " left");
        c.insert_str(3, 4, " right");
        c.run_for(1_000_000);
        assert!(!c.converged(), "partition keeps sides apart");

        c.heal();
        c.run_for(3_000_000);
        assert!(c.converged(), "{:?}", (c.text(0), c.text(3)));
        // Concurrent runs may interleave (a known Logoot property), but no
        // character is lost and each side's typing order survives as a
        // subsequence.
        let t = c.text(0);
        assert_eq!(t.len(), "base left right".len(), "{t}");
        for side in ["left", "right"] {
            let mut chars = t.chars();
            assert!(
                side.chars().all(|w| chars.any(|c| c == w)),
                "{side:?} not a subsequence of {t:?}"
            );
        }
    }

    #[test]
    fn gossip_repairs_dropped_ops() {
        // A very lossy network: op broadcast alone would miss edits; the
        // anti-entropy digests must repair them.
        let mut c = Cluster::new(
            3,
            CollabConfig {
                link: LinkModel {
                    drop_prob: 0.4,
                    ..LinkModel::default()
                },
                seed: 7,
                gossip_period_us: Some(10_000),
            },
        );
        for (i, word) in ["abc", "def", "ghi"].iter().enumerate() {
            c.insert_str(i, 0, word);
        }
        c.run_for(20_000_000);
        assert!(c.converged(), "{:?}", (c.text(0), c.text(1), c.text(2)));
        assert_eq!(c.text(0).len(), 9);
    }

    #[test]
    fn deletes_replicate() {
        let mut c = Cluster::new(
            2,
            CollabConfig {
                link: quiet_link(),
                ..CollabConfig::default()
            },
        );
        c.insert_str(0, 0, "xy");
        c.run_for(1_000_000);
        c.delete(1, 0);
        c.run_for(1_000_000);
        assert!(c.converged());
        assert_eq!(c.text(0), "y");
    }
}
