//! Property tests for the Logoot sequence CRDT: convergence under
//! arbitrary delivery schedules — the CALM promise (§1.2) made concrete.
//!
//! Three replicas perform random edit scripts; their operations are then
//! delivered to every other replica in a random order (with random
//! duplication). All replicas must converge to the same text, the local
//! editor's own intent must survive (its inserted characters appear in
//! order), and merge must satisfy the semilattice laws.

use hydro_lattice::logoot::{Editor, Op};
use hydro_lattice::laws::check_lattice_laws;
use hydro_lattice::Lattice;
use proptest::prelude::*;

/// One local edit: insert a char at an index, or delete at an index.
#[derive(Clone, Debug)]
enum Edit {
    Insert(u8, char),
    Delete(u8),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        3 => (any::<u8>(), proptest::char::range('a', 'z')).prop_map(|(i, c)| Edit::Insert(i, c)),
        1 => any::<u8>().prop_map(Edit::Delete),
    ]
}

fn run_script(editor: &mut Editor, script: &[Edit]) -> Vec<Op> {
    let mut ops = Vec::new();
    for edit in script {
        match edit {
            Edit::Insert(i, c) => {
                let len = editor.doc().len();
                ops.push(editor.insert(*i as usize % (len + 1), *c));
            }
            Edit::Delete(i) => {
                let len = editor.doc().len();
                if len > 0 {
                    if let Some(op) = editor.delete(*i as usize % len) {
                        ops.push(op);
                    }
                }
            }
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn three_replicas_converge_under_any_delivery_order(
        script_a in proptest::collection::vec(arb_edit(), 0..12),
        script_b in proptest::collection::vec(arb_edit(), 0..12),
        script_c in proptest::collection::vec(arb_edit(), 0..12),
        shuffle_seed in any::<u64>(),
    ) {
        let mut a = Editor::new(1);
        let mut b = Editor::new(2);
        let mut c = Editor::new(3);
        let ops_a = run_script(&mut a, &script_a);
        let ops_b = run_script(&mut b, &script_b);
        let ops_c = run_script(&mut c, &script_c);

        // Deliver every remote op to every replica in a seed-shuffled
        // order, duplicating some.
        use rand::{seq::SliceRandom, Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        for (me, editor) in [(1u64, &mut a), (2, &mut b), (3, &mut c)] {
            let mut inbound: Vec<&Op> = ops_a
                .iter()
                .filter(|_| me != 1)
                .chain(ops_b.iter().filter(|_| me != 2))
                .chain(ops_c.iter().filter(|_| me != 3))
                .collect();
            // Random duplication models at-least-once delivery.
            let dups: Vec<&Op> = inbound
                .iter()
                .filter(|_| rng.gen_bool(0.2))
                .copied()
                .collect();
            inbound.extend(dups);
            inbound.shuffle(&mut rng);
            for op in inbound {
                editor.apply(op);
            }
        }

        prop_assert_eq!(a.text(), b.text());
        prop_assert_eq!(b.text(), c.text());
    }

    #[test]
    fn local_insert_order_is_preserved(
        word in "[a-z]{1,8}",
        interference in proptest::collection::vec(arb_edit(), 0..8),
        shuffle_seed in any::<u64>(),
    ) {
        // Replica A types `word` left to right; replica B edits
        // concurrently. After convergence, `word` must appear in A's text
        // as a subsequence in typed order (sequence CRDTs must not
        // reorder a single site's typing).
        let mut a = Editor::new(1);
        let mut b = Editor::new(2);
        let ops_a = a.insert_str(0, &word);
        let ops_b = run_script(&mut b, &interference);

        use rand::{seq::SliceRandom, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        let mut to_a: Vec<&Op> = ops_b.iter().collect();
        to_a.shuffle(&mut rng);
        for op in to_a {
            a.apply(op);
        }
        let mut to_b: Vec<&Op> = ops_a.iter().collect();
        to_b.shuffle(&mut rng);
        for op in to_b {
            b.apply(op);
        }

        prop_assert_eq!(a.text(), b.text());
        // `word` is a subsequence of the converged text.
        let text = a.text();
        let mut chars = text.chars();
        for w in word.chars() {
            prop_assert!(
                chars.any(|c| c == w),
                "typed word {:?} lost or reordered in {:?}",
                word,
                text
            );
        }
    }

    #[test]
    fn doc_lattice_laws_hold_on_random_states(
        script_a in proptest::collection::vec(arb_edit(), 0..10),
        script_b in proptest::collection::vec(arb_edit(), 0..10),
        script_c in proptest::collection::vec(arb_edit(), 0..10),
    ) {
        let mut a = Editor::new(1);
        let mut b = Editor::new(2);
        let mut c = Editor::new(3);
        run_script(&mut a, &script_a);
        run_script(&mut b, &script_b);
        run_script(&mut c, &script_c);
        check_lattice_laws(a.doc(), b.doc(), c.doc()).unwrap();
    }

    #[test]
    fn state_sync_equals_op_delivery(
        script_a in proptest::collection::vec(arb_edit(), 0..10),
        script_b in proptest::collection::vec(arb_edit(), 0..10),
    ) {
        // Shipping ops and shipping whole states must produce the same
        // converged document (state-based and op-based delivery agree).
        let mut a1 = Editor::new(1);
        let mut b1 = Editor::new(2);
        let ops_a = run_script(&mut a1, &script_a);
        let ops_b = run_script(&mut b1, &script_b);

        // Op-based convergence.
        for op in &ops_b { a1.apply(op); }
        for op in &ops_a { b1.apply(op); }

        // State-based convergence of fresh copies.
        let mut a2 = Editor::new(1);
        let mut b2 = Editor::new(2);
        run_script(&mut a2, &script_a);
        run_script(&mut b2, &script_b);
        let mut merged = a2.doc().clone();
        merged.merge(b2.doc().clone());

        prop_assert_eq!(a1.text(), merged.text());
        prop_assert_eq!(b1.text(), merged.text());
    }
}
