//! Product lattices: [`Pair`], [`DomPair`], and last-writer-wins [`Lww`].
//!
//! `Pair` is the independent product (merge both sides). `DomPair` is the
//! *dominating* pair: the left component is a totally-ordered "version" and
//! the right component is overwritten by strictly newer versions — the
//! construction from which last-writer-wins registers are built.

use crate::max::{BoundedBelow, Max};
use crate::{Bottom, Lattice};
use serde::{Deserialize, Serialize};

/// Independent product of two lattices: merge is componentwise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pair<A, B> {
    /// First component.
    pub first: A,
    /// Second component.
    pub second: B,
}

impl<A, B> Pair<A, B> {
    /// Build a pair lattice point.
    pub fn new(first: A, second: B) -> Self {
        Pair { first, second }
    }
}

impl<A: Lattice, B: Lattice> Lattice for Pair<A, B> {
    fn merge(&mut self, other: Self) -> bool {
        let a = self.first.merge(other.first);
        let b = self.second.merge(other.second);
        a | b
    }
}

impl<A: Bottom, B: Bottom> Bottom for Pair<A, B> {
    fn bottom() -> Self {
        Pair::new(A::bottom(), B::bottom())
    }
}

/// Dominating pair: a totally ordered key dominates the value.
///
/// Merge keeps the value associated with the strictly greater key; on key
/// ties the values are merged (which is what keeps this a lattice even when
/// two writers pick the same version: ties resolve by value join rather than
/// nondeterministically).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomPair<K: Ord, V> {
    /// The dominating (version) component.
    pub key: K,
    /// The dominated payload.
    pub value: V,
}

impl<K: Ord, V> DomPair<K, V> {
    /// Build a dominated pair.
    pub fn new(key: K, value: V) -> Self {
        DomPair { key, value }
    }
}

impl<K: Ord + Clone, V: Lattice> Lattice for DomPair<K, V> {
    fn merge(&mut self, other: Self) -> bool {
        use std::cmp::Ordering;
        match other.key.cmp(&self.key) {
            Ordering::Greater => {
                self.key = other.key;
                self.value = other.value;
                true
            }
            Ordering::Equal => self.value.merge(other.value),
            Ordering::Less => false,
        }
    }
}

/// A last-writer-wins register: `DomPair<(timestamp, writer), Max<T>>`
/// specialized for ergonomics. The `(timestamp, writer-id)` pair makes the
/// version order total, so concurrent writes resolve deterministically on
/// every replica — eventual consistency's default register, and the value
/// lattice of the Anna-style KVS in `hydro-kvs`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lww<T: Ord + Clone> {
    inner: DomPair<(u64, u64), Max<T>>,
}

impl<T: Ord + Clone> Lww<T> {
    /// A write of `value` stamped `(timestamp, writer)`.
    pub fn write(timestamp: u64, writer: u64, value: T) -> Self {
        Lww {
            inner: DomPair::new((timestamp, writer), Max::new(value)),
        }
    }

    /// The current value.
    pub fn value(&self) -> &T {
        self.inner.value.get()
    }

    /// The `(timestamp, writer)` version of the current value.
    pub fn version(&self) -> (u64, u64) {
        self.inner.key
    }
}

impl<T: Ord + Clone> Lattice for Lww<T> {
    fn merge(&mut self, other: Self) -> bool {
        self.inner.merge(other.inner)
    }
}

impl<T: Ord + Clone + BoundedBelow> Bottom for Lww<T> {
    fn bottom() -> Self {
        Lww::write(0, 0, T::min_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_lattice_laws;
    use crate::SetUnion;
    use proptest::prelude::*;

    #[test]
    fn pair_merges_componentwise() {
        let mut p = Pair::new(Max::new(1), SetUnion::singleton("x"));
        assert!(p.merge(Pair::new(Max::new(0), SetUnion::singleton("y"))));
        assert_eq!(p.first, Max::new(1));
        assert_eq!(p.second, SetUnion::from_iter(["x", "y"]));
    }

    #[test]
    fn dompair_newer_version_wins() {
        let mut d = DomPair::new(1u64, Max::new(10));
        assert!(d.merge(DomPair::new(3, Max::new(2))));
        assert_eq!(d.value, Max::new(2));
        assert!(!d.merge(DomPair::new(2, Max::new(99))));
        assert_eq!(d.value, Max::new(2));
    }

    #[test]
    fn dompair_tie_merges_values() {
        let mut d = DomPair::new(3u64, Max::new(5));
        assert!(d.merge(DomPair::new(3, Max::new(9))));
        assert_eq!(d.value, Max::new(9));
    }

    #[test]
    fn lww_concurrent_writes_resolve_identically_everywhere() {
        let w1 = Lww::write(100, 1, "alpha");
        let w2 = Lww::write(100, 2, "beta");
        // Same timestamp: writer id breaks the tie, same on both replicas.
        let r1 = w1.clone().join(w2.clone());
        let r2 = w2.join(w1);
        assert_eq!(r1, r2);
        assert_eq!(*r1.value(), "beta");
    }

    proptest! {
        #[test]
        fn pair_laws(a: (i32, Vec<u8>), b: (i32, Vec<u8>), c: (i32, Vec<u8>)) {
            let mk = |(x, s): (i32, Vec<u8>)| Pair::new(Max::new(x), SetUnion::from_iter(s));
            check_lattice_laws(&mk(a), &mk(b), &mk(c)).unwrap();
        }

        #[test]
        fn dompair_laws(a: (u8, u16), b: (u8, u16), c: (u8, u16)) {
            let mk = |(k, v): (u8, u16)| DomPair::new(k, Max::new(v));
            check_lattice_laws(&mk(a), &mk(b), &mk(c)).unwrap();
        }

        #[test]
        fn lww_laws(a: (u32, u8, i16), b: (u32, u8, i16), c: (u32, u8, i16)) {
            let mk = |(t, w, v): (u32, u8, i16)| Lww::write(u64::from(t), u64::from(w), v);
            check_lattice_laws(&mk(a), &mk(b), &mk(c)).unwrap();
        }
    }
}
