//! Replicated counters: [`GCounter`] (grow-only) and [`PnCounter`].
//!
//! The Fig. 4 anecdote in the paper is precisely about getting counters
//! wrong: merging by `+` is not idempotent, so re-delivered messages
//! double-count. The correct construction keeps a per-writer `Max` of each
//! writer's contribution and sums at read time.

use crate::{Bottom, Lattice, Max, MapUnion, Pair};
use serde::{Deserialize, Serialize};

/// Writer identifier for counter contributions.
pub type WriterId = u64;

/// A grow-only counter: per-writer monotone contributions, summed on read.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GCounter {
    slots: MapUnion<WriterId, Max<u64>>,
}

impl GCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `writer`'s local total is now `total`. Totals are
    /// per-writer monotone; passing a stale total is a harmless no-op.
    pub fn set_local(&mut self, writer: WriterId, total: u64) -> bool {
        self.slots.merge_entry(writer, Max::new(total))
    }

    /// Increment `writer`'s contribution by `n`, returning the new local
    /// total for that writer.
    pub fn increment(&mut self, writer: WriterId, n: u64) -> u64 {
        let current = self.slots.get(&writer).map_or(0, |m| *m.get());
        let next = current + n;
        self.slots.merge_entry(writer, Max::new(next));
        next
    }

    /// The counter's value: the sum of all writers' contributions.
    pub fn read(&self) -> u64 {
        self.slots.iter().map(|(_, m)| *m.get()).sum()
    }
}

impl Lattice for GCounter {
    fn merge(&mut self, other: Self) -> bool {
        self.slots.merge(other.slots)
    }
}

impl Bottom for GCounter {
    fn bottom() -> Self {
        Self::new()
    }
}

/// An increment/decrement counter: a pair of grow-only counters.
///
/// Note the CALM caveat the paper stresses for `vaccinate` (§7): although
/// `PnCounter` *converges*, a *threshold read* such as `vaccine_count >= 0`
/// is a non-monotone observation — decrements can invalidate it — so
/// enforcing the invariant still requires coordination. The lattice gives
/// convergence, not invariant preservation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PnCounter {
    inner: Pair<GCounter, GCounter>,
}

impl PnCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` on behalf of `writer`.
    pub fn increment(&mut self, writer: WriterId, n: u64) {
        self.inner.first.increment(writer, n);
    }

    /// Subtract `n` on behalf of `writer`.
    pub fn decrement(&mut self, writer: WriterId, n: u64) {
        self.inner.second.increment(writer, n);
    }

    /// The counter's value (may be negative).
    pub fn read(&self) -> i64 {
        self.inner.first.read() as i64 - self.inner.second.read() as i64
    }
}

impl Lattice for PnCounter {
    fn merge(&mut self, other: Self) -> bool {
        self.inner.merge(other.inner)
    }
}

impl Bottom for PnCounter {
    fn bottom() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_lattice_laws;
    use proptest::prelude::*;

    #[test]
    fn duplicate_delivery_does_not_double_count() {
        let mut a = GCounter::new();
        a.increment(1, 5);
        let update = a.clone();
        let mut b = GCounter::new();
        b.merge(update.clone());
        b.merge(update.clone()); // redelivery
        b.merge(update);
        assert_eq!(b.read(), 5);
    }

    #[test]
    fn concurrent_writers_sum() {
        let mut a = GCounter::new();
        a.increment(1, 3);
        let mut b = GCounter::new();
        b.increment(2, 4);
        assert_eq!(a.join(b).read(), 7);
    }

    #[test]
    fn pn_counter_converges_but_can_go_negative() {
        let mut a = PnCounter::new();
        a.increment(1, 2);
        let mut b = PnCounter::new();
        b.decrement(2, 5);
        let merged = a.clone().join(b.clone());
        assert_eq!(merged.read(), -3);
        assert_eq!(merged, b.join(a));
    }

    fn arb_gcounter() -> impl Strategy<Value = GCounter> {
        proptest::collection::vec((0u64..4, 0u64..100), 0..6).prop_map(|entries| {
            let mut c = GCounter::new();
            for (w, n) in entries {
                c.set_local(w, n);
            }
            c
        })
    }

    proptest! {
        #[test]
        fn gcounter_laws(a in arb_gcounter(), b in arb_gcounter(), c in arb_gcounter()) {
            check_lattice_laws(&a, &b, &c).unwrap();
        }

        #[test]
        fn merge_read_is_pointwise_max_sum(a in arb_gcounter(), b in arb_gcounter()) {
            let merged = a.clone().join(b.clone());
            prop_assert!(merged.read() >= a.read().max(b.read()));
            prop_assert!(merged.read() <= a.read() + b.read());
        }
    }
}
