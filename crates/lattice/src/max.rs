//! Total-order lattices: [`Max`] and [`Min`].
//!
//! These are the simplest lattices in the paper's zoo ("counters" in §2.3 are
//! typically `Max<u64>` per writer). `Max<bool>` is the boolean-or lattice
//! used by flags such as `people[pid].covid` in the running example: once a
//! diagnosis flips the flag to `true` it can never monotonically "un-flip".

use crate::{Bottom, Lattice};
use serde::{Deserialize, Serialize};

/// The max lattice over any totally ordered type: join is `max`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Max<T: Ord>(T);

impl<T: Ord> Max<T> {
    /// Wrap a value as a point in the max lattice.
    pub fn new(value: T) -> Self {
        Max(value)
    }

    /// The wrapped value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T: Ord + Clone> Lattice for Max<T> {
    fn merge(&mut self, other: Self) -> bool {
        if other.0 > self.0 {
            self.0 = other.0;
            true
        } else {
            false
        }
    }
}

impl<T: Ord + Clone + Default> Bottom for Max<T>
where
    T: BoundedBelow,
{
    fn bottom() -> Self {
        Max(T::min_value())
    }
}

/// The min lattice: join is `min`. Note this is the *dual* order — "growth"
/// means numerically shrinking. Useful for deadlines and low-water marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Min<T: Ord>(T);

impl<T: Ord> Min<T> {
    /// Wrap a value as a point in the min lattice.
    pub fn new(value: T) -> Self {
        Min(value)
    }

    /// The wrapped value.
    pub fn get(&self) -> &T {
        &self.0
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T: Ord + Clone> Lattice for Min<T> {
    fn merge(&mut self, other: Self) -> bool {
        if other.0 < self.0 {
            self.0 = other.0;
            true
        } else {
            false
        }
    }
}

impl<T: Ord + Clone + BoundedAbove> Bottom for Min<T> {
    fn bottom() -> Self {
        Min(T::max_value())
    }
}

/// Types with a least value, giving `Max<T>` a bottom element.
pub trait BoundedBelow {
    /// The least value of the type.
    fn min_value() -> Self;
}

/// Types with a greatest value, giving `Min<T>` a bottom element.
pub trait BoundedAbove {
    /// The greatest value of the type.
    fn max_value() -> Self;
}

macro_rules! impl_bounds {
    ($($t:ty),*) => {$(
        impl BoundedBelow for $t {
            fn min_value() -> Self { <$t>::MIN }
        }
        impl BoundedAbove for $t {
            fn max_value() -> Self { <$t>::MAX }
        }
    )*};
}
impl_bounds!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl BoundedBelow for bool {
    fn min_value() -> Self {
        false
    }
}
impl BoundedAbove for bool {
    fn max_value() -> Self {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_lattice_laws;
    use proptest::prelude::*;

    #[test]
    fn max_merge_keeps_larger() {
        let mut m = Max::new(5);
        assert!(!m.merge(Max::new(3)));
        assert_eq!(m, Max::new(5));
        assert!(m.merge(Max::new(9)));
        assert_eq!(m, Max::new(9));
    }

    #[test]
    fn min_merge_keeps_smaller() {
        let mut m = Min::new(5);
        assert!(!m.merge(Min::new(7)));
        assert!(m.merge(Min::new(2)));
        assert_eq!(m, Min::new(2));
    }

    #[test]
    fn bool_or_via_max() {
        let mut covid = Max::new(false);
        assert!(covid.merge(Max::new(true)));
        // Once set it never reverts: merging `false` is a no-op.
        assert!(!covid.merge(Max::new(false)));
        assert_eq!(covid, Max::new(true));
    }

    #[test]
    fn bottoms() {
        assert_eq!(Max::<u32>::bottom(), Max::new(0));
        assert_eq!(Min::<u32>::bottom(), Min::new(u32::MAX));
        assert!(Max::<u32>::bottom().is_bottom());
    }

    proptest! {
        #[test]
        fn max_laws(a: i64, b: i64, c: i64) {
            check_lattice_laws(&Max::new(a), &Max::new(b), &Max::new(c)).unwrap();
        }

        #[test]
        fn min_laws(a: i64, b: i64, c: i64) {
            check_lattice_laws(&Min::new(a), &Min::new(b), &Min::new(c)).unwrap();
        }
    }
}
