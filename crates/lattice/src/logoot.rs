//! Logoot: a sequence CRDT for coordination-free collaborative editing.
//!
//! The paper holds up collaborative editing as a showcase of "monotonic
//! design patterns \[that\] have led to clean versions of complex distributed
//! applications" (§1.2, citing Logoot \[83\]; §7 lists it among the clever
//! application-level consistency designs). This module implements a
//! Logoot-style sequence CRDT as a *lattice*: document state is a pair of
//! grow-only maps (inserts and tombstones), so replica merge is a
//! join-semilattice merge and every edit is a monotone mutation — the CALM
//! conditions hold and no coordination is ever needed.
//!
//! # Positions
//!
//! Each character is keyed by a [`Position`]: a list of *idents*
//! `(digit, site, seq)` compared lexicographically. Digits live in a huge
//! base (`2^32`); `site`/`seq` make positions globally unique and break
//! ties between concurrent allocations. Between any two positions a new
//! one can always be generated ([`Position::between`]):
//!
//! * interpret both bounds' digit lists as base-`B` numbers of increasing
//!   width until a gap of ≥ 2 appears, then pick a digit string strictly
//!   inside the gap ("boundary+" biased toward the left bound so
//!   left-to-right typing yields short positions);
//! * copy `(site, seq)` from a bound for every level where the new digit
//!   string is still a digit-prefix of that bound, and stamp the remainder
//!   with the allocating editor's own `(site, seq)` — this keeps the ident
//!   order consistent with the numeric order;
//! * if the two bounds have *identical digit strings* (possible only when
//!   two sites concurrently picked the same random digits), no numeric gap
//!   ever appears; the allocator detects this and extends the left bound
//!   instead, which is correct because the bounds already differ in their
//!   `(site, seq)` tiebreak.
//!
//! # Deletion
//!
//! Deletes are tombstones (a second grow-only set), making the whole
//! document state `(inserts ∪ inserts', tombs ∪ tombs')`-mergeable — the
//! 2P-set construction. A deleted position never becomes visible again;
//! re-typed characters get fresh positions.

use crate::Lattice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Digit base: digits are `u64` values in `[0, BASE)`.
const BASE: u64 = 1 << 32;

/// "Boundary+" allocation window: new digits land within this distance of
/// the left bound, keeping append-heavy (left-to-right typing) positions
/// short.
const BOUNDARY: u64 = 1 << 20;

/// One level of a [`Position`]: digit with its allocator's identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ident {
    /// Digit in `[0, BASE)`.
    pub digit: u64,
    /// Allocating site (editor) id; real sites are `>= 1`.
    pub site: u64,
    /// Allocator's per-site operation counter.
    pub seq: u64,
}

/// A dense, totally ordered, globally unique position identifier.
///
/// The empty position is the virtual *begin* sentinel (smaller than every
/// real position); the virtual *end* sentinel is represented by `None`
/// bounds in [`Position::between`].
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position(Vec<Ident>);

impl Position {
    /// The idents of this position.
    pub fn idents(&self) -> &[Ident] {
        &self.0
    }

    /// Number of levels (allocation depth).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    fn digit(&self, level: usize) -> u64 {
        self.0.get(level).map_or(0, |i| i.digit)
    }

    /// Generate a position strictly between `left` and `right`
    /// (`None` = begin/end sentinel), stamped with `(site, seq)`.
    ///
    /// Panics in debug builds if `left >= right`.
    pub fn between(
        left: Option<&Position>,
        right: Option<&Position>,
        site: u64,
        seq: u64,
        rng: &mut StdRng,
    ) -> Position {
        static EMPTY: Position = Position(Vec::new());
        let l = left.unwrap_or(&EMPTY);
        if let (Some(l), Some(r)) = (left, right) {
            debug_assert!(l < r, "between() needs left < right");
            // Identical digit strings (concurrent random collision): no
            // numeric gap exists at any width. The bounds differ only in
            // (site, seq), so extending the left bound sorts strictly
            // between them.
            if l.0.len() == r.0.len() && l.0.iter().zip(&r.0).all(|(a, b)| a.digit == b.digit) {
                let mut idents = l.0.clone();
                idents.push(Ident {
                    digit: 1 + rng.gen_range(0..BOUNDARY),
                    site,
                    seq,
                });
                return Position(idents);
            }
        }

        // Widen until the numeric gap admits a new digit string.
        let mut width = 1;
        loop {
            let gap = Self::gap_at(l, right, width);
            if gap > 1 {
                // Choose an offset in (0, gap) biased toward the left
                // bound ("boundary+").
                let bound = gap.min(BOUNDARY + 1);
                let offset = 1 + rng.gen_range(0..bound - 1);
                return Self::from_number(l, right, width, offset, site, seq);
            }
            width += 1;
            debug_assert!(width <= l.0.len() + right.map_or(0, |r| r.0.len()) + 2);
        }
    }

    /// Numeric gap `m - n` between the two bounds' digit prefixes at the
    /// given width, saturating at `u64::MAX` (wide gaps needn't be exact).
    fn gap_at(l: &Position, r: Option<&Position>, width: usize) -> u64 {
        // Compute m - n without materializing the base-2^32 numbers:
        // process digits most-significant first.
        let mut diff: u64 = 0;
        for level in 0..width {
            let ld = l.digit(level);
            let rd = match r {
                Some(r) => r.digit(level),
                // The end sentinel is "digit BASE at level 0".
                None => {
                    if level == 0 {
                        BASE
                    } else {
                        0
                    }
                }
            };
            diff = match diff.checked_mul(BASE) {
                Some(d) => d,
                None => return u64::MAX,
            };
            // rd may be less than ld at deeper levels (borrow).
            diff = if rd >= ld {
                match diff.checked_add(rd - ld) {
                    Some(d) => d,
                    None => return u64::MAX,
                }
            } else {
                diff - (ld - rd)
            };
        }
        diff
    }

    /// Build the position whose digit string is `prefix(l, width) + offset`,
    /// copying `(site, seq)` from a bound while the digits still prefix-match
    /// it and stamping the rest with the allocator's identity.
    fn from_number(
        l: &Position,
        r: Option<&Position>,
        width: usize,
        offset: u64,
        site: u64,
        seq: u64,
    ) -> Position {
        // digits = l's first `width` digits (padded with 0) + offset, in
        // base 2^32, least-significant-last.
        let mut digits: Vec<u64> = (0..width).map(|i| l.digit(i)).collect();
        let mut carry = offset;
        for d in digits.iter_mut().rev() {
            let v = *d + carry;
            *d = v % BASE;
            carry = v / BASE;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "offset stays below the right bound");

        // Drop trailing zero digits: they do not change the numeric value
        // and a `(0, own)` tail ident could sort below a bound's real
        // ident at that level.
        while digits.len() > 1 && *digits.last().expect("non-empty") == 0 {
            digits.pop();
        }

        let mut idents = Vec::with_capacity(digits.len());
        let mut prefix_of_l = true;
        let mut prefix_of_r = true;
        for (level, &digit) in digits.iter().enumerate() {
            prefix_of_l = prefix_of_l
                && l.0.get(level).is_some_and(|ident| ident.digit == digit);
            prefix_of_r = prefix_of_r
                && r.is_some_and(|r| r.0.get(level).is_some_and(|ident| ident.digit == digit));
            if prefix_of_l {
                idents.push(l.0[level]);
            } else if prefix_of_r {
                idents.push(r.expect("prefix_of_r checked").0[level]);
            } else {
                idents.push(Ident { digit, site, seq });
            }
        }
        Position(idents)
    }
}

/// An edit operation: the unit shipped between replicas.
///
/// Operations commute and are idempotent (they merge grow-only state), so
/// they may be delivered in any order, any number of times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Make `ch` visible at `pos`.
    Insert {
        /// Allocated position.
        pos: Position,
        /// Inserted character.
        ch: char,
    },
    /// Tombstone `pos`.
    Delete {
        /// Position to hide.
        pos: Position,
    },
}

/// Lattice document state: grow-only inserts plus grow-only tombstones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LogootDoc {
    inserts: BTreeMap<Position, char>,
    tombs: BTreeSet<Position>,
}

impl LogootDoc {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one operation (idempotent, commutative).
    pub fn apply(&mut self, op: &Op) -> bool {
        match op {
            Op::Insert { pos, ch } => self.inserts.insert(pos.clone(), *ch) != Some(*ch),
            Op::Delete { pos } => self.tombs.insert(pos.clone()),
        }
    }

    /// Visible characters in position order.
    pub fn chars(&self) -> impl Iterator<Item = (&Position, char)> {
        self.inserts
            .iter()
            .filter(|(pos, _)| !self.tombs.contains(*pos))
            .map(|(pos, ch)| (pos, *ch))
    }

    /// The visible text.
    pub fn text(&self) -> String {
        self.chars().map(|(_, c)| c).collect()
    }

    /// Number of visible characters.
    pub fn len(&self) -> usize {
        self.chars().count()
    }

    /// Whether no characters are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored entries (inserts + tombstones) — the CRDT's real
    /// footprint, for garbage-collection experiments.
    pub fn stored(&self) -> usize {
        self.inserts.len() + self.tombs.len()
    }

    /// Position of the `index`-th *visible* character.
    fn visible_at(&self, index: usize) -> Option<&Position> {
        self.chars().nth(index).map(|(p, _)| p)
    }
}

impl Lattice for LogootDoc {
    fn merge(&mut self, other: Self) -> bool {
        let mut changed = false;
        for (pos, ch) in other.inserts {
            match self.inserts.get(&pos) {
                Some(existing) => {
                    // Positions are globally unique, so a conflicting char
                    // indicates site-id misuse; resolve deterministically.
                    if *existing < ch {
                        self.inserts.insert(pos, ch);
                        changed = true;
                    }
                }
                None => {
                    self.inserts.insert(pos, ch);
                    changed = true;
                }
            }
        }
        for t in other.tombs {
            changed |= self.tombs.insert(t);
        }
        changed
    }
}

/// A replica of the shared document: local state plus the site identity
/// needed to allocate fresh positions.
#[derive(Clone, Debug)]
pub struct Editor {
    doc: LogootDoc,
    site: u64,
    seq: u64,
    rng: StdRng,
}

impl Editor {
    /// New editor for `site` (must be unique per replica, `>= 1`).
    pub fn new(site: u64) -> Self {
        assert!(site >= 1, "site ids start at 1");
        Editor {
            doc: LogootDoc::new(),
            site,
            seq: 0,
            rng: StdRng::seed_from_u64(site ^ 0x0010_6007),
        }
    }

    /// The underlying lattice state.
    pub fn doc(&self) -> &LogootDoc {
        &self.doc
    }

    /// Current visible text.
    pub fn text(&self) -> String {
        self.doc.text()
    }

    /// Insert `ch` so it appears at visible index `index` (clamped to the
    /// end). Returns the operation to broadcast.
    pub fn insert(&mut self, index: usize, ch: char) -> Op {
        let len = self.doc.len();
        let index = index.min(len);
        let left = if index == 0 {
            None
        } else {
            self.doc.visible_at(index - 1).cloned()
        };
        let right = self.doc.visible_at(index).cloned();
        self.seq += 1;
        let pos = Position::between(
            left.as_ref(),
            right.as_ref(),
            self.site,
            self.seq,
            &mut self.rng,
        );
        let op = Op::Insert { pos, ch };
        self.doc.apply(&op);
        op
    }

    /// Type a whole string starting at visible index `index`.
    pub fn insert_str(&mut self, index: usize, s: &str) -> Vec<Op> {
        s.chars()
            .enumerate()
            .map(|(k, c)| self.insert(index + k, c))
            .collect()
    }

    /// Delete the visible character at `index`; `None` when out of range.
    pub fn delete(&mut self, index: usize) -> Option<Op> {
        let pos = self.doc.visible_at(index)?.clone();
        let op = Op::Delete { pos };
        self.doc.apply(&op);
        Some(op)
    }

    /// Apply a remote operation.
    pub fn apply(&mut self, op: &Op) {
        self.doc.apply(op);
    }

    /// Full-state merge with a remote replica (anti-entropy).
    pub fn sync(&mut self, other: &Editor) -> bool {
        self.doc.merge(other.doc.clone())
    }

    /// Merge a remote document state (e.g. a gossiped digest).
    pub fn merge_state(&mut self, doc: LogootDoc) -> bool {
        self.doc.merge(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn between_sentinels() {
        let p = Position::between(None, None, 1, 1, &mut rng());
        assert!(p.depth() >= 1);
        assert!(p > Position::default(), "every real position exceeds begin");
    }

    #[test]
    fn between_is_strictly_between() {
        let mut r = rng();
        let a = Position::between(None, None, 1, 1, &mut r);
        let b = Position::between(Some(&a), None, 1, 2, &mut r);
        assert!(a < b);
        let c = Position::between(Some(&a), Some(&b), 1, 3, &mut r);
        assert!(a < c && c < b, "{a:?} < {c:?} < {b:?}");
    }

    #[test]
    fn between_handles_adjacent_digits() {
        // Bounds whose digits differ by exactly one force depth growth.
        let a = Position(vec![Ident {
            digit: 5,
            site: 1,
            seq: 1,
        }]);
        let b = Position(vec![Ident {
            digit: 6,
            site: 2,
            seq: 1,
        }]);
        let mut r = rng();
        let c = Position::between(Some(&a), Some(&b), 3, 1, &mut r);
        assert!(a < c && c < b, "{a:?} < {c:?} < {b:?}");
        assert!(c.depth() >= 2);
    }

    #[test]
    fn between_handles_identical_digit_strings() {
        // The concurrent-collision corner: same digits, different sites.
        let a = Position(vec![Ident {
            digit: 7,
            site: 1,
            seq: 9,
        }]);
        let b = Position(vec![Ident {
            digit: 7,
            site: 2,
            seq: 3,
        }]);
        assert!(a < b);
        let mut r = rng();
        let c = Position::between(Some(&a), Some(&b), 3, 1, &mut r);
        assert!(a < c && c < b, "{a:?} < {c:?} < {b:?}");
    }

    #[test]
    fn between_descends_past_deep_left_bound() {
        // Left bound with a maximal digit tail: the gap only opens once
        // the width exceeds the left bound's depth.
        let a = Position(vec![
            Ident {
                digit: 5,
                site: 1,
                seq: 1,
            },
            Ident {
                digit: BASE - 1,
                site: 1,
                seq: 2,
            },
        ]);
        let b = Position(vec![Ident {
            digit: 6,
            site: 2,
            seq: 1,
        }]);
        let mut r = rng();
        let c = Position::between(Some(&a), Some(&b), 3, 1, &mut r);
        assert!(a < c && c < b, "{a:?} < {c:?} < {b:?}");
    }

    #[test]
    fn typing_left_to_right_stays_shallow() {
        let mut ed = Editor::new(1);
        for (i, c) in "hello, world — typing appends".chars().enumerate() {
            ed.insert(i, c);
        }
        let max_depth = ed.doc.inserts.keys().map(Position::depth).max().unwrap();
        assert!(
            max_depth <= 3,
            "boundary+ keeps appends shallow, got {max_depth}"
        );
    }

    #[test]
    fn insert_and_delete_edit_the_text() {
        let mut ed = Editor::new(1);
        ed.insert_str(0, "hxello");
        ed.delete(1);
        assert_eq!(ed.text(), "hello");
        ed.insert(5, '!');
        assert_eq!(ed.text(), "hello!");
    }

    #[test]
    fn ops_commute_across_replicas() {
        let mut a = Editor::new(1);
        let mut b = Editor::new(2);
        let ops_a = a.insert_str(0, "abc");
        let ops_b = b.insert_str(0, "xyz");
        // Cross-deliver in opposite orders.
        for op in ops_b.iter() {
            a.apply(op);
        }
        for op in ops_a.iter().rev() {
            b.apply(op);
        }
        assert_eq!(a.text(), b.text(), "replicas converge");
        assert_eq!(a.text().len(), 6);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut a = Editor::new(1);
        let mut b = Editor::new(2);
        let ops = a.insert_str(0, "dup");
        for op in ops.iter().chain(ops.iter()).chain(ops.iter()) {
            b.apply(op);
        }
        assert_eq!(b.text(), "dup");
    }

    #[test]
    fn delete_wins_over_redelivered_insert() {
        let mut a = Editor::new(1);
        let ops = a.insert_str(0, "x");
        let del = a.delete(0).unwrap();
        let mut b = Editor::new(2);
        b.apply(&del); // tombstone arrives before the insert
        for op in &ops {
            b.apply(op);
        }
        assert_eq!(b.text(), "", "2P-set: delete is permanent");
        assert_eq!(a.text(), "");
    }

    #[test]
    fn full_state_sync_converges() {
        let mut a = Editor::new(1);
        let mut b = Editor::new(2);
        a.insert_str(0, "left");
        b.insert_str(0, "right");
        a.sync(&b);
        b.sync(&a);
        assert_eq!(a.text(), b.text());
        assert!(!a.sync(&b), "second sync is a no-op");
    }

    #[test]
    fn doc_merge_satisfies_lattice_laws() {
        let mut a = Editor::new(1);
        let mut b = Editor::new(2);
        let mut c = Editor::new(3);
        a.insert_str(0, "aa");
        b.insert_str(0, "bb");
        c.insert_str(0, "cc");
        b.delete(0);
        crate::laws::check_lattice_laws(a.doc(), b.doc(), c.doc()).unwrap();
        crate::laws::check_lattice_laws(&LogootDoc::new(), a.doc(), b.doc()).unwrap();
    }

    #[test]
    fn stored_counts_tombstones() {
        let mut a = Editor::new(1);
        a.insert_str(0, "abc");
        a.delete(1);
        assert_eq!(a.doc().len(), 2);
        assert_eq!(a.doc().stored(), 4, "3 inserts + 1 tombstone");
    }
}
