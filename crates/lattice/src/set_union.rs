//! The set-union lattice — the workhorse of monotonic programming.
//!
//! Tables in HydroLogic (§3) are set-union lattices of rows: `merge`
//! mutations like `people.merge(Person(pid))` in Fig. 3 are inserts that can
//! never be un-done monotonically. Grow-only sets are also the basis of the
//! shopping-cart and contact-tracing patterns discussed in the paper.

use crate::{Bottom, Lattice};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A grow-only set whose join is set union.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SetUnion<T: Ord>(BTreeSet<T>);

impl<T: Ord> Default for SetUnion<T> {
    fn default() -> Self {
        SetUnion(BTreeSet::new())
    }
}

impl<T: Ord> SetUnion<T> {
    /// The empty set (bottom of the lattice).
    pub fn new() -> Self {
        Self::default()
    }

    /// A singleton set.
    pub fn singleton(value: T) -> Self {
        let mut s = BTreeSet::new();
        s.insert(value);
        SetUnion(s)
    }

    /// Insert one element; returns `true` if it was new. Equivalent to
    /// merging a singleton.
    pub fn insert(&mut self, value: T) -> bool {
        self.0.insert(value)
    }

    /// Membership test.
    pub fn contains(&self, value: &T) -> bool {
        self.0.contains(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate the elements in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.0.iter()
    }

    /// Borrow the underlying ordered set.
    pub fn as_set(&self) -> &BTreeSet<T> {
        &self.0
    }

    /// Consume into the underlying ordered set.
    pub fn into_inner(self) -> BTreeSet<T> {
        self.0
    }
}

impl<T: Ord> FromIterator<T> for SetUnion<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        SetUnion(iter.into_iter().collect())
    }
}

impl<T: Ord + Clone> Lattice for SetUnion<T> {
    fn merge(&mut self, other: Self) -> bool {
        let before = self.0.len();
        if other.0.len() > self.0.len() && self.0.is_empty() {
            self.0 = other.0;
            return before != self.0.len();
        }
        let mut changed = false;
        for v in other.0 {
            changed |= self.0.insert(v);
        }
        changed
    }
}

impl<T: Ord + Clone> Bottom for SetUnion<T> {
    fn bottom() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{check_lattice_laws, check_order_insensitive};
    use crate::LatticeOrd;
    use proptest::prelude::*;

    #[test]
    fn merge_unions() {
        let mut a = SetUnion::from_iter([1, 2]);
        assert!(a.merge(SetUnion::from_iter([2, 3])));
        assert_eq!(a, SetUnion::from_iter([1, 2, 3]));
        assert!(!a.merge(SetUnion::from_iter([1])));
    }

    #[test]
    fn subset_is_lattice_le() {
        let small = SetUnion::from_iter(["a"]);
        let big = SetUnion::from_iter(["a", "b"]);
        assert!(small.lattice_le(&big));
        assert!(!big.lattice_le(&small));
    }

    #[test]
    fn empty_fast_path_reports_correctly() {
        let mut empty: SetUnion<u32> = SetUnion::new();
        assert!(!empty.merge(SetUnion::new()));
        let mut empty2: SetUnion<u32> = SetUnion::new();
        assert!(empty2.merge(SetUnion::from_iter([1])));
    }

    proptest! {
        #[test]
        fn set_laws(a: Vec<u8>, b: Vec<u8>, c: Vec<u8>) {
            check_lattice_laws(
                &SetUnion::from_iter(a),
                &SetUnion::from_iter(b),
                &SetUnion::from_iter(c),
            ).unwrap();
        }

        #[test]
        fn delivery_order_does_not_matter(updates: Vec<Vec<u8>>) {
            let updates: Vec<_> = updates.into_iter().map(SetUnion::from_iter).collect();
            let mut perm: Vec<usize> = (0..updates.len()).collect();
            perm.reverse();
            prop_assert!(check_order_insensitive(SetUnion::default(), &updates, &perm));
        }
    }
}
