//! # hydro-lattice
//!
//! Join-semilattices and CRDT building blocks for the Hydro stack.
//!
//! The CIDR 2021 paper grounds coordination-free distributed programming in
//! *monotonicity*: ACID 2.0 (Associative, Commutative, Idempotent,
//! Distributed) methods are exactly the join operations of semilattices, and
//! the CALM theorem says monotone programs — programs whose outputs only grow
//! with their inputs — are precisely those with deterministic,
//! coordination-free distributed executions.
//!
//! This crate provides:
//!
//! * the [`Lattice`] trait (a join-semilattice with an in-place, change-
//!   reporting `merge`), plus [`LatticeOrd`] for the induced partial order
//!   and [`Bottom`] for pointed lattices;
//! * the standard lattice zoo used throughout the paper: [`Max`]/[`Min`],
//!   [`SetUnion`], [`MapUnion`], [`Pair`], [`DomPair`], [`Lww`],
//!   [`GCounter`]/[`PnCounter`], [`VectorClock`], and [`Seal`] (the
//!   shopping-cart "sealing" lattice of §7.1);
//! * monotone-function combinators ([`morphism`]) and randomized law-checking
//!   helpers ([`laws`]) used by the property-test suites and by the
//!   monotonicity typechecker's runtime validation mode.
//!
//! All lattices here are *state-based CRDTs*: replicas converge by pairwise
//! merging regardless of message duplication, reordering, or delay.

pub mod counter;
pub mod laws;
pub mod logoot;
pub mod map_union;
pub mod max;
pub mod morphism;
pub mod pair;
pub mod seal;
pub mod set_union;
pub mod vclock;
pub mod word;

pub use counter::{GCounter, PnCounter};
pub use logoot::{Editor, LogootDoc};
pub use map_union::MapUnion;
pub use max::{Max, Min};
pub use morphism::{is_monotone_on, MonotoneFn};
pub use pair::{DomPair, Lww, Pair};
pub use seal::Seal;
pub use set_union::SetUnion;
pub use word::{WithBot, WithTop};
pub use vclock::{CausalOrd, VectorClock};

/// A join-semilattice.
///
/// `merge` computes the least upper bound of `self` and `other` in place and
/// reports whether `self` changed. The change report is what lets dataflow
/// runtimes (and gossip protocols) reach fixpoint: propagation stops when
/// merges stop reporting changes.
///
/// # Laws
///
/// For all `a`, `b`, `c` (checked by [`laws::check_lattice_laws`] and the
/// proptest suites):
///
/// * **Associativity**: `(a ∨ b) ∨ c == a ∨ (b ∨ c)`
/// * **Commutativity**: `a ∨ b == b ∨ a`
/// * **Idempotence**: `a ∨ a == a`
/// * **Change-accuracy**: `merge` returns `true` iff `self` is not equal to
///   its prior value.
pub trait Lattice: Clone + Eq {
    /// Merge `other` into `self`; returns `true` iff `self` changed.
    fn merge(&mut self, other: Self) -> bool;

    /// The least upper bound of two values, by value.
    #[must_use]
    fn join(mut self, other: Self) -> Self {
        self.merge(other);
        self
    }
}

/// The partial order induced by the join: `a ≤ b` iff `a ∨ b == b`.
pub trait LatticeOrd: Lattice {
    /// `self ≤ other` in the lattice order.
    fn lattice_le(&self, other: &Self) -> bool {
        let mut o = other.clone();
        !o.merge(self.clone())
    }

    /// Compare in the lattice's partial order; `None` when incomparable.
    fn lattice_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        let le = self.lattice_le(other);
        let ge = other.lattice_le(self);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl<T: Lattice> LatticeOrd for T {}

/// Lattices with a least element (`⊥`), the identity of `merge`.
pub trait Bottom: Lattice {
    /// The least element of the lattice.
    fn bottom() -> Self;

    /// Whether this value is the least element.
    fn is_bottom(&self) -> bool {
        self == &Self::bottom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_merge_by_value() {
        let a = Max::new(3);
        let b = Max::new(7);
        assert_eq!(a.join(b), Max::new(7));
    }

    #[test]
    fn lattice_cmp_total_on_max() {
        use std::cmp::Ordering;
        assert_eq!(Max::new(1).lattice_cmp(&Max::new(2)), Some(Ordering::Less));
        assert_eq!(
            Max::new(2).lattice_cmp(&Max::new(2)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Max::new(3).lattice_cmp(&Max::new(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn lattice_cmp_partial_on_sets() {
        let a = SetUnion::from_iter([1, 2]);
        let b = SetUnion::from_iter([2, 3]);
        assert_eq!(a.lattice_cmp(&b), None);
        assert!(SetUnion::from_iter([1]).lattice_le(&a));
    }
}
