//! Bounding wrappers: [`WithBot`] adjoins a bottom, [`WithTop`] a top.
//!
//! These finish off lattices that lack the bound a protocol needs: e.g. a
//! quorum vote is `WithTop<Max<Ballot>>` where top means "conflict observed",
//! and an optional register is `WithBot<Lww<T>>` where bottom means "never
//! written". `hydro-deploy`'s consensus slots use both.

use crate::{Bottom, Lattice};
use serde::{Deserialize, Serialize};

/// Adjoin a least element ("absent") below an existing lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WithBot<L>(Option<L>);

impl<L> Default for WithBot<L> {
    fn default() -> Self {
        WithBot(None)
    }
}

impl<L: Lattice> WithBot<L> {
    /// The adjoined bottom ("absent").
    pub fn empty() -> Self {
        WithBot(None)
    }

    /// Lift a lattice point above the adjoined bottom.
    pub fn of(value: L) -> Self {
        WithBot(Some(value))
    }

    /// The inner point, unless bottom.
    pub fn get(&self) -> Option<&L> {
        self.0.as_ref()
    }

    /// Consume into the inner point, unless bottom.
    pub fn into_inner(self) -> Option<L> {
        self.0
    }
}

impl<L: Lattice> Lattice for WithBot<L> {
    fn merge(&mut self, other: Self) -> bool {
        match (self.0.as_mut(), other.0) {
            (_, None) => false,
            (None, Some(v)) => {
                self.0 = Some(v);
                true
            }
            (Some(a), Some(b)) => a.merge(b),
        }
    }
}

impl<L: Lattice> Bottom for WithBot<L> {
    fn bottom() -> Self {
        WithBot(None)
    }
}

/// Adjoin a greatest element ("conflict"/"done") above an existing lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WithTop<L> {
    /// An ordinary lattice point.
    Point(L),
    /// The adjoined top.
    Top,
}

impl<L: Lattice> WithTop<L> {
    /// Whether this is the adjoined top.
    pub fn is_top(&self) -> bool {
        matches!(self, WithTop::Top)
    }

    /// The inner point, unless top.
    pub fn get(&self) -> Option<&L> {
        match self {
            WithTop::Point(l) => Some(l),
            WithTop::Top => None,
        }
    }
}

impl<L: Lattice> Lattice for WithTop<L> {
    fn merge(&mut self, other: Self) -> bool {
        match (std::mem::replace(self, WithTop::Top), other) {
            (WithTop::Top, _) => false,
            (p @ WithTop::Point(_), WithTop::Top) => {
                let _ = p;
                true
            }
            (WithTop::Point(mut a), WithTop::Point(b)) => {
                let changed = a.merge(b);
                *self = WithTop::Point(a);
                changed
            }
        }
    }
}

impl<L: Lattice + Bottom> Bottom for WithTop<L> {
    fn bottom() -> Self {
        WithTop::Point(L::bottom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_lattice_laws;
    use crate::Max;
    use proptest::prelude::*;

    #[test]
    fn withbot_absent_is_identity() {
        let mut x = WithBot::of(Max::new(3));
        assert!(!x.merge(WithBot::empty()));
        let mut y: WithBot<Max<u32>> = WithBot::empty();
        assert!(y.merge(WithBot::of(Max::new(1))));
        assert_eq!(y.get(), Some(&Max::new(1)));
    }

    #[test]
    fn withtop_absorbs() {
        let mut x = WithTop::Point(Max::new(3));
        assert!(x.merge(WithTop::Top));
        assert!(x.is_top());
        assert!(!x.merge(WithTop::Point(Max::new(99))));
    }

    fn arb_bot() -> impl Strategy<Value = WithBot<Max<u8>>> {
        prop_oneof![
            Just(WithBot::empty()),
            any::<u8>().prop_map(|v| WithBot::of(Max::new(v))),
        ]
    }

    fn arb_top() -> impl Strategy<Value = WithTop<Max<u8>>> {
        prop_oneof![
            Just(WithTop::Top),
            any::<u8>().prop_map(|v| WithTop::Point(Max::new(v))),
        ]
    }

    proptest! {
        #[test]
        fn withbot_laws(a in arb_bot(), b in arb_bot(), c in arb_bot()) {
            check_lattice_laws(&a, &b, &c).unwrap();
        }

        #[test]
        fn withtop_laws(a in arb_top(), b in arb_top(), c in arb_top()) {
            check_lattice_laws(&a, &b, &c).unwrap();
        }
    }
}
