//! Executable lattice-law checking.
//!
//! §8.2 of the paper complains that CRDT libraries "expect programmers to
//! guarantee the monotonicity of their code manually", which is "notoriously
//! tricky" (Fig. 4). These helpers make the algebraic obligations of
//! [`Lattice`] implementations executable so the test suite —
//! and user code registering custom lattices — can validate them on sampled
//! points rather than trusting the author.

use crate::Lattice;

/// A violated lattice law, reported by [`check_lattice_laws`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LawViolation {
    /// `(a ∨ b) ∨ c != a ∨ (b ∨ c)`.
    Associativity,
    /// `a ∨ b != b ∨ a`.
    Commutativity,
    /// `a ∨ a != a`.
    Idempotence,
    /// `merge` reported "changed" for a merge that left the value equal, or
    /// reported "unchanged" for one that altered it.
    ChangeReport,
}

impl std::fmt::Display for LawViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            LawViolation::Associativity => "associativity",
            LawViolation::Commutativity => "commutativity",
            LawViolation::Idempotence => "idempotence",
            LawViolation::ChangeReport => "merge change-report accuracy",
        };
        write!(f, "lattice law violated: {name}")
    }
}

impl std::error::Error for LawViolation {}

/// Check the semilattice laws on a specific triple of points.
///
/// Returns the first violated law, if any. Drive this from proptest (as the
/// in-crate suites do) to get randomized law checking.
pub fn check_lattice_laws<L: Lattice + std::fmt::Debug>(
    a: &L,
    b: &L,
    c: &L,
) -> Result<(), LawViolation> {
    // Associativity.
    let ab_c = a.clone().join(b.clone()).join(c.clone());
    let a_bc = a.clone().join(b.clone().join(c.clone()));
    if ab_c != a_bc {
        return Err(LawViolation::Associativity);
    }
    // Commutativity.
    if a.clone().join(b.clone()) != b.clone().join(a.clone()) {
        return Err(LawViolation::Commutativity);
    }
    // Idempotence.
    if a.clone().join(a.clone()) != *a {
        return Err(LawViolation::Idempotence);
    }
    // Change reporting.
    let mut x = a.clone();
    let changed = x.merge(b.clone());
    if changed == (x == *a) {
        return Err(LawViolation::ChangeReport);
    }
    Ok(())
}

/// Check that replicas converge regardless of delivery order: merging the
/// same multiset of updates in two different permutations yields equal state.
///
/// This is the operational content of ACID 2.0 / CALM for state-based CRDTs.
pub fn check_order_insensitive<L: Lattice>(base: L, updates: &[L], perm: &[usize]) -> bool {
    assert_eq!(updates.len(), perm.len());
    let mut forward = base.clone();
    for u in updates {
        forward.merge(u.clone());
    }
    let mut permuted = base;
    for &i in perm {
        permuted.merge(updates[i].clone());
    }
    forward == permuted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Max, SetUnion};

    #[test]
    fn laws_hold_for_max() {
        check_lattice_laws(&Max::new(1), &Max::new(2), &Max::new(3)).unwrap();
    }

    #[test]
    fn detects_broken_change_report() {
        // A deliberately broken "lattice" that always claims change.
        #[derive(Clone, Debug, PartialEq, Eq)]
        struct Liar(u32);
        impl Lattice for Liar {
            fn merge(&mut self, other: Self) -> bool {
                self.0 = self.0.max(other.0);
                true // wrong when other ≤ self
            }
        }
        let violation = check_lattice_laws(&Liar(5), &Liar(3), &Liar(1));
        assert_eq!(violation, Err(LawViolation::ChangeReport));
    }

    #[test]
    fn detects_non_idempotent_merge() {
        // Addition is associative + commutative but NOT idempotent — the
        // classic manual-CRDT mistake of Fig. 4: a counter "merged" by `+`.
        #[derive(Clone, Debug, PartialEq, Eq)]
        struct AddCounter(u32);
        impl Lattice for AddCounter {
            fn merge(&mut self, other: Self) -> bool {
                if other.0 == 0 {
                    return false;
                }
                self.0 += other.0;
                true
            }
        }
        let violation = check_lattice_laws(&AddCounter(5), &AddCounter(3), &AddCounter(1));
        assert_eq!(violation, Err(LawViolation::Idempotence));
    }

    #[test]
    fn order_insensitivity() {
        let updates = vec![
            SetUnion::from_iter([1]),
            SetUnion::from_iter([2, 3]),
            SetUnion::from_iter([4]),
        ];
        assert!(check_order_insensitive(
            SetUnion::default(),
            &updates,
            &[2, 0, 1]
        ));
    }
}
