//! Monotone functions and lattice morphisms.
//!
//! §8.2 calls for "an explicit *monotone* type modifier, and a compiler that
//! can typecheck monotonicity". The static side of that lives in
//! `hydro-analysis`; this module provides the *dynamic* counterpart used to
//! validate it: wrappers that carry a monotonicity claim, and a sampling
//! checker that refutes false claims (the spirit of Fig. 4's "manual checks
//! are tricky" warning: don't trust, test).

use crate::{Lattice, LatticeOrd};

/// A function from one lattice to another together with a monotonicity
/// claim. Wrapping does not *prove* monotonicity — pair it with
/// [`is_monotone_on`] in tests, as the Hydro typechecker does for UDF
/// boundaries it cannot analyze statically.
pub struct MonotoneFn<A, B, F>
where
    F: Fn(&A) -> B,
{
    f: F,
    name: &'static str,
    _marker: std::marker::PhantomData<fn(&A) -> B>,
}

impl<A, B, F> MonotoneFn<A, B, F>
where
    A: Lattice,
    B: Lattice,
    F: Fn(&A) -> B,
{
    /// Declare `f` monotone. The claim is checkable via [`Self::validate`].
    pub fn declare(name: &'static str, f: F) -> Self {
        MonotoneFn {
            f,
            name,
            _marker: std::marker::PhantomData,
        }
    }

    /// Apply the function.
    pub fn apply(&self, a: &A) -> B {
        (self.f)(a)
    }

    /// The declared name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Validate the monotonicity claim on sample points; returns the first
    /// counterexample pair `(x, y)` with `x ≤ y` but `f(x) ≰ f(y)`.
    pub fn validate<'s>(&self, samples: &'s [A]) -> Result<(), (&'s A, &'s A)> {
        is_monotone_on(&self.f, samples)
    }
}

/// Check `f` for monotonicity on all ordered pairs drawn from `samples`:
/// whenever `x ≤ y` in the input lattice, require `f(x) ≤ f(y)` in the
/// output lattice. Returns the first violating pair.
pub fn is_monotone_on<A, B, F>(f: F, samples: &[A]) -> Result<(), (&A, &A)>
where
    A: Lattice,
    B: Lattice,
    F: Fn(&A) -> B,
{
    for x in samples {
        for y in samples {
            if x.lattice_le(y) && !f(x).lattice_le(&f(y)) {
                return Err((x, y));
            }
        }
    }
    Ok(())
}

/// Check that `f` is a lattice *morphism* (distributes over join):
/// `f(x ∨ y) == f(x) ∨ f(y)` for all sample pairs. Morphisms are the
/// operators Hydroflow can evaluate *differentially* (per-delta) rather than
/// all-at-once (§8.2 "representation of flows beyond collections").
pub fn is_morphism_on<A, B, F>(f: F, samples: &[A]) -> Result<(), (&A, &A)>
where
    A: Lattice,
    B: Lattice,
    F: Fn(&A) -> B,
{
    for x in samples {
        for y in samples {
            let lhs = f(&x.clone().join(y.clone()));
            let rhs = f(x).join(f(y));
            if lhs != rhs {
                return Err((x, y));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Max, SetUnion};

    fn sample_sets() -> Vec<SetUnion<u32>> {
        vec![
            SetUnion::new(),
            SetUnion::from_iter([1]),
            SetUnion::from_iter([2]),
            SetUnion::from_iter([1, 2]),
            SetUnion::from_iter([1, 2, 3]),
        ]
    }

    #[test]
    fn size_is_monotone_set_to_max() {
        // COUNT: set lattice in, int-max lattice out — §8.1's example of a
        // lattice-to-lattice query that must "pipeline like a set".
        let count = MonotoneFn::declare("count", |s: &SetUnion<u32>| Max::new(s.len()));
        count.validate(&sample_sets()).unwrap();
        assert_eq!(count.name(), "count");
    }

    #[test]
    fn contains_is_monotone() {
        let has2 = |s: &SetUnion<u32>| Max::new(s.contains(&2));
        is_monotone_on(has2, &sample_sets()).unwrap();
    }

    #[test]
    fn negation_is_not_monotone() {
        let missing2 = |s: &SetUnion<u32>| Max::new(!s.contains(&2));
        assert!(is_monotone_on(missing2, &sample_sets()).is_err());
    }

    #[test]
    fn filter_is_a_morphism_but_count_is_not() {
        let evens = |s: &SetUnion<u32>| -> SetUnion<u32> {
            s.iter().copied().filter(|x| x % 2 == 0).collect()
        };
        is_morphism_on(evens, &sample_sets()).unwrap();

        // count is monotone but NOT a morphism: |A ∪ B| != max(|A|, |B|)
        // in general — so COUNT needs all-at-once (stratum-boundary)
        // evaluation, exactly the distinction §8.2 draws.
        let count = |s: &SetUnion<u32>| Max::new(s.len());
        assert!(is_morphism_on(count, &sample_sets()).is_err());
    }
}
