//! The map-union lattice: keys accumulate, values merge pointwise.
//!
//! `MapUnion<K, L>` is the composition pattern Bloom^L builds everything
//! from: a keyed collection of lattice points. The Anna KVS (§1.2) is
//! essentially a `MapUnion<Key, Lww<Value>>` (or a causal lattice) gossiped
//! between nodes; HydroLogic tables keyed by id with lattice-typed fields are
//! `MapUnion<Key, Row>` where `Row` is a product of field lattices.

use crate::{Bottom, Lattice};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A map whose join unions key sets and merges values pointwise.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MapUnion<K: Ord, V>(BTreeMap<K, V>);

impl<K: Ord, V> Default for MapUnion<K, V> {
    fn default() -> Self {
        MapUnion(BTreeMap::new())
    }
}

impl<K: Ord, V: Lattice> MapUnion<K, V> {
    /// The empty map (bottom).
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-entry map.
    pub fn singleton(key: K, value: V) -> Self {
        let mut m = BTreeMap::new();
        m.insert(key, value);
        MapUnion(m)
    }

    /// Merge `value` into the entry for `key`; returns `true` on change.
    pub fn merge_entry(&mut self, key: K, value: V) -> bool {
        match self.0.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(value),
        }
    }

    /// Look up the lattice point for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.0.get(key)
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no keys are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.0.iter()
    }

    /// Borrow the underlying map.
    pub fn as_map(&self) -> &BTreeMap<K, V> {
        &self.0
    }

    /// Consume into the underlying map.
    pub fn into_inner(self) -> BTreeMap<K, V> {
        self.0
    }
}

impl<K: Ord, V: Lattice> FromIterator<(K, V)> for MapUnion<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = MapUnion::new();
        for (k, v) in iter {
            m.merge_entry(k, v);
        }
        m
    }
}

impl<K: Ord + Clone, V: Lattice> Lattice for MapUnion<K, V> {
    fn merge(&mut self, other: Self) -> bool {
        let mut changed = false;
        for (k, v) in other.0 {
            changed |= self.merge_entry(k, v);
        }
        changed
    }
}

impl<K: Ord + Clone, V: Lattice> Bottom for MapUnion<K, V> {
    fn bottom() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_lattice_laws;
    use crate::{Max, SetUnion};
    use proptest::prelude::*;

    #[test]
    fn pointwise_merge() {
        let mut m: MapUnion<&str, Max<u32>> = MapUnion::new();
        assert!(m.merge_entry("a", Max::new(1)));
        assert!(m.merge_entry("a", Max::new(5)));
        assert!(!m.merge_entry("a", Max::new(3)));
        assert_eq!(m.get(&"a"), Some(&Max::new(5)));
    }

    #[test]
    fn nested_lattices_compose() {
        // contacts: pid -> set of contact pids, exactly Fig. 3's data model.
        let mut contacts: MapUnion<u32, SetUnion<u32>> = MapUnion::new();
        contacts.merge_entry(1, SetUnion::singleton(2));
        contacts.merge_entry(2, SetUnion::singleton(1));
        let other = MapUnion::from_iter([(1, SetUnion::from_iter([3]))]);
        assert!(contacts.clone().join(other.clone()).get(&1).unwrap().contains(&3));
        // Join is symmetric.
        assert_eq!(contacts.clone().join(other.clone()), other.join(contacts));
    }

    proptest! {
        #[test]
        fn map_laws(a: Vec<(u8, u16)>, b: Vec<(u8, u16)>, c: Vec<(u8, u16)>) {
            let mk = |v: Vec<(u8, u16)>| {
                MapUnion::from_iter(v.into_iter().map(|(k, x)| (k, Max::new(x))))
            };
            check_lattice_laws(&mk(a), &mk(b), &mk(c)).unwrap();
        }
    }
}
