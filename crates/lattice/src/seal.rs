//! The sealing lattice (§7.1's shopping-cart "seal" pattern).
//!
//! Dynamo-style shopping carts are coordination-free while the cart grows,
//! but checkout must "seal" the final contents. Conway's observation,
//! systematized in Blazes and retold in §7.1, is that sealing can be decided
//! unilaterally at an unreplicated stage (the client), after which replicas
//! only need to *verify* that their grown state matches the sealed manifest —
//! no inter-replica coordination required.
//!
//! [`Seal<L>`] makes that pattern a lattice: an `Open(l)` point keeps
//! growing; a `Sealed(m)` point asserts the final value is exactly `m`.
//! Merging `Open(l)` into `Sealed(m)` is legal only while `l ≤ m`; any
//! evidence exceeding the manifest drives the lattice to `Conflict` (top),
//! which is how a bad unilateral seal surfaces deterministically instead of
//! silently losing data.

use crate::{Bottom, Lattice, LatticeOrd};
use serde::{Deserialize, Serialize};

/// A lattice augmented with a sealing manifest and a conflict top.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Seal<L> {
    /// Still accumulating.
    Open(L),
    /// Sealed with a final manifest; further growth beyond it is a conflict.
    Sealed(L),
    /// Top: contradictory evidence (growth beyond a sealed manifest, or two
    /// different manifests).
    Conflict,
}

impl<L: Lattice + Bottom> Default for Seal<L> {
    fn default() -> Self {
        Seal::Open(L::bottom())
    }
}

impl<L: Lattice> Seal<L> {
    /// Whether the value has been sealed (including conflicted).
    pub fn is_sealed(&self) -> bool {
        !matches!(self, Seal::Open(_))
    }

    /// Whether the seal is in conflict (top).
    pub fn is_conflict(&self) -> bool {
        matches!(self, Seal::Conflict)
    }

    /// The payload, unless conflicted.
    pub fn payload(&self) -> Option<&L> {
        match self {
            Seal::Open(l) | Seal::Sealed(l) => Some(l),
            Seal::Conflict => None,
        }
    }

    /// A replica can finalize once its grown state has caught up to the
    /// sealed manifest — "each replica can eagerly move to checkout once its
    /// contents match the manifest" (§7.1).
    pub fn ready_to_finalize(&self) -> bool {
        matches!(self, Seal::Sealed(_))
    }
}

impl<L: Lattice> Lattice for Seal<L> {
    fn merge(&mut self, other: Self) -> bool {
        use Seal::*;
        let result = match (std::mem::replace(self, Conflict), other) {
            (Conflict, _) => (Conflict, false),
            (_, Conflict) => (Conflict, true),
            (Open(mut a), Open(b)) => {
                let changed = a.merge(b);
                (Open(a), changed)
            }
            (Open(a), Sealed(m)) => {
                if a.lattice_le(&m) {
                    (Sealed(m), true)
                } else {
                    (Conflict, true)
                }
            }
            (Sealed(m), Open(a)) => {
                if a.lattice_le(&m) {
                    (Sealed(m), false)
                } else {
                    (Conflict, true)
                }
            }
            (Sealed(m1), Sealed(m2)) => {
                if m1 == m2 {
                    (Sealed(m1), false)
                } else {
                    (Conflict, true)
                }
            }
        };
        *self = result.0;
        result.1
    }
}

impl<L: Lattice + Bottom> Bottom for Seal<L> {
    fn bottom() -> Self {
        Seal::Open(L::bottom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_lattice_laws;
    use crate::SetUnion;
    use proptest::prelude::*;

    type Cart = Seal<SetUnion<u32>>;

    #[test]
    fn open_carts_grow() {
        let mut cart: Cart = Seal::Open(SetUnion::from_iter([1]));
        assert!(cart.merge(Seal::Open(SetUnion::from_iter([2]))));
        assert_eq!(cart.payload().unwrap().len(), 2);
        assert!(!cart.is_sealed());
    }

    #[test]
    fn sealing_with_complete_manifest_finalizes() {
        let mut replica: Cart = Seal::Open(SetUnion::from_iter([1, 2]));
        let manifest = Seal::Sealed(SetUnion::from_iter([1, 2, 3]));
        assert!(replica.merge(manifest));
        assert!(replica.ready_to_finalize());
        // Late-arriving adds covered by the manifest are absorbed silently.
        assert!(!replica.merge(Seal::Open(SetUnion::from_iter([3]))));
        assert!(replica.ready_to_finalize());
    }

    #[test]
    fn growth_beyond_manifest_conflicts() {
        let mut replica: Cart = Seal::Sealed(SetUnion::from_iter([1]));
        assert!(replica.merge(Seal::Open(SetUnion::from_iter([9]))));
        assert!(replica.is_conflict());
    }

    #[test]
    fn two_different_manifests_conflict() {
        let mut a: Cart = Seal::Sealed(SetUnion::from_iter([1]));
        assert!(a.merge(Seal::Sealed(SetUnion::from_iter([2]))));
        assert!(a.is_conflict());
    }

    fn arb_seal() -> impl Strategy<Value = Cart> {
        proptest::collection::vec(0u32..6, 0..4).prop_flat_map(|items| {
            let set = SetUnion::from_iter(items);
            prop_oneof![
                Just(Seal::Open(set.clone())),
                Just(Seal::Sealed(set)),
                Just(Seal::Conflict),
            ]
        })
    }

    proptest! {
        #[test]
        fn seal_laws(a in arb_seal(), b in arb_seal(), c in arb_seal()) {
            check_lattice_laws(&a, &b, &c).unwrap();
        }
    }
}
