//! Vector clocks: the causality lattice.
//!
//! §2.3 lists vector clocks among Hydroflow's lattice types. A vector clock
//! is `MapUnion<NodeId, Max<u64>>`; its lattice order *is* the happens-before
//! relation, and incomparability *is* concurrency. The causal-consistency
//! machinery in `hydro-deploy` and the causal KVS mode in `hydro-kvs` are
//! built on this type.

use crate::{Bottom, Lattice, MapUnion, Max};
use serde::{Deserialize, Serialize};

/// Node identifier used in clock entries.
pub type NodeId = u64;

/// Outcome of a causal comparison between two events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalOrd {
    /// The left event happens-before the right.
    Before,
    /// The right event happens-before the left.
    After,
    /// The events are identical.
    Equal,
    /// Neither happens-before the other.
    Concurrent,
}

/// A vector clock: per-node event counters, merged pointwise-max.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    entries: MapUnion<NodeId, Max<u64>>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance `node`'s component by one, returning the new count.
    pub fn tick(&mut self, node: NodeId) -> u64 {
        let next = self.get(node) + 1;
        self.entries.merge_entry(node, Max::new(next));
        next
    }

    /// Read `node`'s component (absent entries read as 0).
    pub fn get(&self, node: NodeId) -> u64 {
        self.entries.get(&node).map_or(0, |m| *m.get())
    }

    /// Compare two clocks causally.
    pub fn causal_cmp(&self, other: &Self) -> CausalOrd {
        let mut le = true;
        let mut ge = true;
        let nodes: std::collections::BTreeSet<NodeId> = self
            .entries
            .iter()
            .map(|(n, _)| *n)
            .chain(other.entries.iter().map(|(n, _)| *n))
            .collect();
        for n in nodes {
            let a = self.get(n);
            let b = other.get(n);
            if a > b {
                le = false;
            }
            if a < b {
                ge = false;
            }
        }
        match (le, ge) {
            (true, true) => CausalOrd::Equal,
            (true, false) => CausalOrd::Before,
            (false, true) => CausalOrd::After,
            (false, false) => CausalOrd::Concurrent,
        }
    }

    /// Whether this clock causally dominates (or equals) `other`.
    pub fn dominates(&self, other: &Self) -> bool {
        matches!(
            self.causal_cmp(other),
            CausalOrd::After | CausalOrd::Equal
        )
    }

    /// Iterate `(node, count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.entries.iter().map(|(n, m)| (*n, *m.get()))
    }
}

impl Lattice for VectorClock {
    fn merge(&mut self, other: Self) -> bool {
        self.entries.merge(other.entries)
    }
}

impl Bottom for VectorClock {
    fn bottom() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::check_lattice_laws;
    use proptest::prelude::*;

    #[test]
    fn happens_before_matches_message_flow() {
        let mut a = VectorClock::new();
        a.tick(0);
        let sent = a.clone();
        let mut b = VectorClock::new();
        b.merge(sent); // receive
        b.tick(1);
        assert_eq!(a.causal_cmp(&b), CausalOrd::Before);
        assert_eq!(b.causal_cmp(&a), CausalOrd::After);
    }

    #[test]
    fn independent_events_are_concurrent() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        assert_eq!(a.causal_cmp(&b), CausalOrd::Concurrent);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(0);
        b.tick(1);
        let m = a.clone().join(b.clone());
        assert_eq!(m.get(0), 2);
        assert_eq!(m.get(1), 1);
        assert!(m.dominates(&a) && m.dominates(&b));
    }

    fn arb_clock() -> impl Strategy<Value = VectorClock> {
        proptest::collection::vec((0u64..4, 0u64..16), 0..5).prop_map(|entries| {
            let mut c = VectorClock::new();
            for (n, count) in entries {
                for _ in 0..count {
                    c.tick(n);
                }
            }
            c
        })
    }

    proptest! {
        #[test]
        fn vclock_laws(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
            check_lattice_laws(&a, &b, &c).unwrap();
        }

        #[test]
        fn join_is_upper_bound(a in arb_clock(), b in arb_clock()) {
            let m = a.clone().join(b.clone());
            prop_assert!(m.dominates(&a));
            prop_assert!(m.dominates(&b));
        }
    }
}
