//! Functional-dependency constraints (§5: "relational constraints, such as
//! functional dependencies").
//!
//! Enforcement strength follows the consistency facet: transactional
//! handlers (those carrying invariants) treat a declared FD as a
//! postcondition and roll back on violation; eventually-consistent
//! handlers get end-of-tick *detection* — the violation is committed but
//! surfaced as a tick warning. These tests pin both behaviours plus the
//! pure violation-finding logic and the interaction with keyed upserts.

use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::facets::{ConsistencyReq, Invariant};
use hydro_core::interp::Transducer;
use hydro_core::Value;
use proptest::prelude::*;

fn ints(row: &[i64]) -> Vec<Value> {
    row.iter().map(|x| Value::Int(*x)).collect()
}

/// employees(id, dept, region) with dept -> region.
fn emp_program(strict: bool) -> hydro_core::ast::Program {
    let b = ProgramBuilder::new()
        .table(
            "emp",
            vec![("id", atom()), ("dept", atom()), ("region", atom())],
            &["id"],
            None,
        )
        .fd("emp", &["dept"], &["region"])
        .var("guard", Value::Int(0));
    let body = vec![
        insert("emp", vec![v("id"), v("dept"), v("region")]),
        ret(Expr::Const(Value::ok())),
    ];
    if strict {
        // Any invariant makes the handler transactional; `guard >= 0`
        // always holds, so the only postcondition that can fail is the FD.
        b.on_with(
            "hire",
            &["id", "dept", "region"],
            body,
            Some(ConsistencyReq::serializable(vec![Invariant::NonNegative(
                "guard".into(),
            )])),
        )
        .build()
    } else {
        b.on("hire", &["id", "dept", "region"], body).build()
    }
}

use hydro_core::ast::Expr;

#[test]
fn fd_violation_finds_the_offending_pair() {
    let program = emp_program(false);
    let decl = program.table("emp").unwrap();
    let fd = &decl.fds[0];
    let rows: Vec<Vec<Value>> = vec![ints(&[1, 10, 100]), ints(&[2, 20, 200]), ints(&[3, 10, 999])];
    let hit = decl
        .fd_violation(fd, rows.iter().map(|r| r.as_slice()))
        .expect("rows 1 and 3 disagree on region for dept 10");
    assert_eq!(hit.0, ints(&[1, 10, 100]));
    assert_eq!(hit.1, ints(&[3, 10, 999]));

    let ok_rows: Vec<Vec<Value>> = vec![ints(&[1, 10, 100]), ints(&[3, 10, 100])];
    assert!(decl
        .fd_violation(fd, ok_rows.iter().map(|r| r.as_slice()))
        .is_none());
}

#[test]
fn fd_display_uses_column_names() {
    let program = emp_program(false);
    let decl = program.table("emp").unwrap();
    assert_eq!(decl.fd_display(&decl.fds[0]), "dept -> region");
}

#[test]
fn eventual_handler_detects_violations_as_warnings() {
    let mut app = Transducer::new(emp_program(false)).unwrap();
    app.enqueue_ok("hire", vec![Value::Int(1), Value::Int(10), Value::Int(100)]);
    let out = app.tick().unwrap();
    assert!(out.warnings.is_empty());

    // Same dept, different region: committed (eventual), but flagged.
    app.enqueue_ok("hire", vec![Value::Int(2), Value::Int(10), Value::Int(999)]);
    let out = app.tick().unwrap();
    assert_eq!(app.table_len("emp"), 2, "eventual writes still commit");
    assert_eq!(out.warnings.len(), 1);
    assert!(out.warnings[0].contains("functional dependency"), "{}", out.warnings[0]);
    assert!(out.warnings[0].contains("dept -> region"), "{}", out.warnings[0]);
}

#[test]
fn transactional_handler_rolls_back_fd_violations() {
    let mut app = Transducer::new(emp_program(true)).unwrap();
    app.enqueue_ok("hire", vec![Value::Int(1), Value::Int(10), Value::Int(100)]);
    let out = app.tick().unwrap();
    assert!(out.warnings.is_empty());
    assert_eq!(app.table_len("emp"), 1);

    app.enqueue_ok("hire", vec![Value::Int(2), Value::Int(10), Value::Int(999)]);
    let out = app.tick().unwrap();
    assert_eq!(app.table_len("emp"), 1, "violating insert must roll back");
    assert_eq!(out.responses[0].value, Value::Str("ABORT".into()));
    // Post-rollback state satisfies the FD, so no end-of-tick warning.
    assert!(
        out.warnings.iter().any(|w| w.contains("rolled back")),
        "{:?}",
        out.warnings
    );
    assert!(
        !out.warnings.iter().any(|w| w.contains("functional dependency")),
        "{:?}",
        out.warnings
    );
}

#[test]
fn consistent_writes_raise_no_warnings_in_either_mode() {
    for strict in [false, true] {
        let mut app = Transducer::new(emp_program(strict)).unwrap();
        for (id, dept, region) in [(1, 10, 100), (2, 10, 100), (3, 20, 200)] {
            app.enqueue_ok(
                "hire",
                vec![Value::Int(id), Value::Int(dept), Value::Int(region)],
            );
        }
        let out = app.tick().unwrap();
        assert!(out.warnings.is_empty(), "strict={strict}: {:?}", out.warnings);
        assert_eq!(app.table_len("emp"), 3);
    }
}

#[test]
fn two_handlers_jointly_violating_are_detected() {
    // Each tick-deferred group alone is FD-consistent; together they
    // violate. The end-of-tick sweep catches the composition.
    let program = ProgramBuilder::new()
        .table(
            "emp",
            vec![("id", atom()), ("dept", atom()), ("region", atom())],
            &["id"],
            None,
        )
        .fd("emp", &["dept"], &["region"])
        .on(
            "hire_us",
            &["id", "dept"],
            vec![insert("emp", vec![v("id"), v("dept"), i(100)])],
        )
        .on(
            "hire_eu",
            &["id", "dept"],
            vec![insert("emp", vec![v("id"), v("dept"), i(200)])],
        )
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("hire_us", vec![Value::Int(1), Value::Int(10)]);
    app.enqueue_ok("hire_eu", vec![Value::Int(2), Value::Int(10)]);
    let out = app.tick().unwrap();
    assert_eq!(out.warnings.len(), 1, "{:?}", out.warnings);
    assert!(out.warnings[0].contains("dept -> region"));
}

proptest! {
    /// An FD whose determinant contains the whole key can never be
    /// violated: keyed inserts are upserts, so at most one row exists per
    /// determinant value.
    #[test]
    fn key_determined_fds_hold_by_construction(
        writes in proptest::collection::vec((0i64..8, 0i64..8, 0i64..8), 0..40)
    ) {
        let program = ProgramBuilder::new()
            .table(
                "t",
                vec![("k", atom()), ("a", atom()), ("b", atom())],
                &["k"],
                None,
            )
            .fd("t", &["k"], &["a", "b"])
            .on("put", &["k", "a", "b"], vec![
                insert("t", vec![v("k"), v("a"), v("b")]),
            ])
            .build();
        let mut app = Transducer::new(program).unwrap();
        for (k, a, b) in writes {
            app.enqueue_ok("put", ints(&[k, a, b]));
            let out = app.tick().unwrap();
            prop_assert!(
                out.warnings.iter().all(|w| !w.contains("functional dependency")),
                "{:?}", out.warnings
            );
        }
    }
}
