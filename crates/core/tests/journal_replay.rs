//! The recovery journal's contract: a `RecoveryLog` built from
//! `take_journal_delta` records rebuilds a replacement transducer whose
//! observable state — tables, scalars, mailbox queues, counters — is
//! bit-identical to the instance the deltas were drained from, and the
//! replacement behaves identically from that point on.

use hydro_core::ast::ColumnKind;
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::interp::{ProgramCore, RecoveryLog, Transducer};
use hydro_core::value::Value;
use std::sync::Arc;

/// A little KV store plus a counter and an outbound relay — covers all
/// three journaled surfaces (tables, scalars, mailbox queues).
fn program() -> hydro_core::ast::Program {
    ProgramBuilder::new()
        .table(
            "kv",
            vec![("k", ColumnKind::Atom), ("val", ColumnKind::Atom)],
            &["k"],
            Some("k"),
        )
        .var("count", Value::Int(0))
        .mailbox("audit", 2)
        .on(
            "put",
            &["k", "v"],
            vec![
                insert("kv", vec![v("k"), v("v")]),
                assign_scalar("count", add(scalar("count"), i(1))),
                send_row("audit", vec![v("k"), v("v")]),
                ret(s("ok")),
            ],
        )
        .on("del", &["k"], vec![delete("kv", v("k")), ret(s("gone"))])
        .on("get", &["k"], vec![ret(field("kv", v("k"), "val"))])
        .build()
}

fn put(t: &mut Transducer, k: i64, val: i64) {
    t.enqueue_ok("put", vec![Value::Int(k), Value::Int(val)]);
}

/// Drive `ticks` rounds of a deterministic mixed workload (puts,
/// overwrites, deletes) against `t`, appending each drained delta to
/// `log` when one is given.
fn drive(t: &mut Transducer, ticks: u64, log: Option<&mut RecoveryLog>) {
    let mut log = log;
    for round in 0..ticks {
        put(t, round as i64 % 7, round as i64);
        put(t, 100 + round as i64, round as i64);
        if round % 3 == 2 {
            t.enqueue_ok("del", vec![Value::Int(100 + round as i64 - 1)]);
        }
        t.tick().unwrap();
        if let Some(log) = log.as_deref_mut() {
            let delta = t.take_journal_delta().expect("a tick always drains");
            log.append(delta);
        }
    }
}

#[test]
fn restored_instance_is_bit_identical_and_behaves_identically() {
    let core = ProgramCore::new(program()).unwrap();

    // Reference: never killed, never journaled.
    let mut reference = Transducer::from_core(Arc::clone(&core));
    drive(&mut reference, 10, None);

    // Primary: journaled, killed after the same 10 ticks.
    let mut primary = Transducer::from_core(Arc::clone(&core));
    primary.set_journaling(true);
    let mut log = RecoveryLog::new(primary.checkpoint(), 4);
    drive(&mut primary, 10, Some(&mut log));
    drop(primary); // the kill

    let mut restored = log.restore(Arc::clone(&core));
    assert_eq!(
        restored.checkpoint(),
        reference.checkpoint(),
        "replayed state must be bit-identical to the never-killed run"
    );

    // And the replacement keeps behaving like the reference: same further
    // workload, same replies/sends/state.
    for (k, val) in [(3, 99), (200, 1), (3, 100)] {
        put(&mut restored, k, val);
        put(&mut reference, k, val);
        let a = restored.tick().unwrap();
        let b = reference.tick().unwrap();
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.sends, b.sends);
    }
    assert_eq!(restored.checkpoint(), reference.checkpoint());
}

#[test]
fn compaction_cadence_does_not_change_the_image() {
    let core = ProgramCore::new(program()).unwrap();

    let run = |checkpoint_every: usize| {
        let mut t = Transducer::from_core(Arc::clone(&core));
        t.set_journaling(true);
        let mut log = RecoveryLog::new(t.checkpoint(), checkpoint_every);
        drive(&mut t, 9, Some(&mut log));
        (log.image(), t.checkpoint())
    };

    let (eager, live_a) = run(1); // compact on every append
    let (lazy, live_b) = run(1000); // never compact within the run
    assert_eq!(eager, lazy, "image is independent of checkpoint cadence");
    assert_eq!(eager, live_a);
    assert_eq!(lazy, live_b);
}

#[test]
fn in_flight_messages_survive_replay() {
    let core = ProgramCore::new(program()).unwrap();

    let mut reference = Transducer::from_core(Arc::clone(&core));
    let mut primary = Transducer::from_core(Arc::clone(&core));
    primary.set_journaling(true);
    let mut log = RecoveryLog::new(primary.checkpoint(), 8);

    // Enqueue without ticking: the messages sit in the queue, ids
    // assigned. The journal must carry them (queues replicate with ids).
    put(&mut primary, 1, 10);
    put(&mut primary, 2, 20);
    put(&mut reference, 1, 10);
    put(&mut reference, 2, 20);
    log.append(primary.take_journal_delta().expect("queued messages"));
    drop(primary);

    let mut restored = log.restore(Arc::clone(&core));
    assert_eq!(restored.pending("put"), 2, "in-flight messages restored");
    let a = restored.tick().unwrap();
    let b = reference.tick().unwrap();
    assert_eq!(a.responses, b.responses, "same ids, same correlation");
    assert_eq!(restored.checkpoint(), reference.checkpoint());
}

#[test]
fn drain_is_none_only_when_literally_nothing_happened() {
    let core = ProgramCore::new(program()).unwrap();
    let mut t = Transducer::from_core(core);
    t.set_journaling(true);

    assert!(t.take_journal_delta().is_none(), "nothing happened yet");

    put(&mut t, 1, 1);
    t.tick().unwrap();
    let d = t.take_journal_delta().expect("state changed");
    assert!(!d.is_empty());
    assert!(t.take_journal_delta().is_none(), "drained clean");

    // An empty tick still advances tick_no, so it drains a (state-empty)
    // record — the delta stream doubles as a liveness signal.
    t.tick().unwrap();
    let d = t.take_journal_delta().expect("tick counter advanced");
    assert!(d.is_empty(), "no state change in an empty tick");
    assert_eq!(d.tick_no, t.tick_no());
}

#[test]
fn values_written_back_to_their_original_fold_away() {
    let core = ProgramCore::new(program()).unwrap();
    let mut t = Transducer::from_core(core);

    // Establish a baseline and drain it away.
    put(&mut t, 5, 50);
    t.tick().unwrap();
    t.set_journaling(true);

    // Overwrite, then restore the original value across two ticks within
    // one drain window: first-touch-vs-final comparison folds the pair to
    // "no change" for the table row (the counter and audit queue did
    // change, and must still appear).
    put(&mut t, 5, 99);
    t.tick().unwrap();
    put(&mut t, 5, 50);
    t.tick().unwrap();
    let d = t.take_journal_delta().expect("counter moved");
    assert!(
        !d.tables.iter().any(|(table, key, _)| table == "kv" && key == &vec![Value::Int(5)]),
        "kv[5] ended where it started — not in the delta"
    );
    assert!(
        d.scalars.iter().any(|(name, _)| name == "count"),
        "the counter genuinely changed"
    );
}
