//! Differential testing of the semi-naive evaluator against the retained
//! naive reference (`evaluate_views` vs [`evaluate_views_naive`]).
//!
//! The semi-naive rewrite changes the fixpoint algorithm (delta-driven
//! rounds, composite hash-index probes, greedy atom reordering) but must
//! not change a single derived row. Programs here cover the shapes the
//! interpreter supports — recursion (including mutual recursion and
//! multiple recursive atoms per body), stratified negation feeding and
//! following recursion, aggregation above recursion, guards, lets, and
//! wildcard/constant patterns — over random, collision-heavy fact sets.

use hydro_core::ast::AggFun;
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::eval::{evaluate_views, evaluate_views_naive, Database, Relation, UdfHost};
use hydro_core::{Program, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn db_of(rels: &[(&str, &[(i64, i64)])]) -> Database {
    let mut db = Database::default();
    for (name, rows) in rels {
        db.insert(
            name.to_string(),
            Relation::from_rows(
                rows.iter()
                    .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]),
            ),
        );
    }
    db
}

/// Evaluate with both engines; every view (and only the views) must hold
/// exactly the same row set.
fn engines_agree(program: &Program, base: &Database) {
    let seminaive = evaluate_views(program, base, &Default::default(), &mut UdfHost::new())
        .expect("semi-naive evaluates");
    let naive = evaluate_views_naive(program, base, &Default::default(), &mut UdfHost::new())
        .expect("naive evaluates");
    let views: BTreeSet<&String> = seminaive.keys().chain(naive.keys()).collect();
    for view in views {
        let a = seminaive.get(view).map(Relation::to_set).unwrap_or_default();
        let b = naive.get(view).map(Relation::to_set).unwrap_or_default();
        assert_eq!(a, b, "view {view:?} disagrees between engines");
    }
}

fn base_two() -> ProgramBuilder {
    ProgramBuilder::new().mailbox("e", 2).mailbox("f", 2)
}

/// Error behavior must match too: a guard that would error (unknown
/// scalar) sitting after a scan is only reached when the scan yields
/// rows. The planner must not hoist it ahead of the scan — with an empty
/// relation both engines succeed, with a nonempty one both fail.
#[test]
fn erroring_guard_after_scan_matches_naive_reachability() {
    use hydro_core::ast::Expr;
    let program = ProgramBuilder::new()
        .mailbox("e", 2)
        .rule(
            "g",
            vec![v("a")],
            vec![
                scan("e", &["a", "b"]),
                guard(ge(Expr::Scalar("no_such_scalar".into()), i(0))),
            ],
        )
        .build();

    let empty = db_of(&[("e", &[])]);
    assert!(
        evaluate_views(&program, &empty, &Default::default(), &mut UdfHost::new()).is_ok(),
        "guard after an empty scan is never evaluated"
    );
    assert!(
        evaluate_views_naive(&program, &empty, &Default::default(), &mut UdfHost::new()).is_ok()
    );

    let nonempty = db_of(&[("e", &[(1, 2)])]);
    assert!(
        evaluate_views(&program, &nonempty, &Default::default(), &mut UdfHost::new()).is_err(),
        "guard is reached once the scan yields a row"
    );
    assert!(
        evaluate_views_naive(&program, &nonempty, &Default::default(), &mut UdfHost::new())
            .is_err()
    );
}

/// A scan that would error (arity mismatch) behind an empty scan must
/// stay unreachable: the planner may not hoist the better-bound atom
/// ahead of the empty one.
#[test]
fn arity_error_behind_empty_scan_matches_naive_reachability() {
    let program = base_two()
        .rule(
            "j",
            vec![v("a")],
            vec![
                scan("e", &["a", "b"]),
                scan_terms(
                    "f",
                    vec![
                        hydro_core::ast::Term::Const(Value::Int(1)),
                        hydro_core::ast::Term::Const(Value::Int(2)),
                    ],
                ),
            ],
        )
        .build();
    // f holds arity-3 rows; the rule scans it with an arity-2 pattern.
    let mut db = db_of(&[("e", &[])]);
    db.insert(
        "f".to_string(),
        Relation::from_rows([vec![Value::Int(1), Value::Int(2), Value::Int(3)]]),
    );
    assert!(
        evaluate_views(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok(),
        "empty e short-circuits before f's arity check, as in source order"
    );
    assert!(evaluate_views_naive(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());

    let mut db2 = db_of(&[("e", &[(5, 6)])]);
    db2.insert(
        "f".to_string(),
        Relation::from_rows([vec![Value::Int(1), Value::Int(2), Value::Int(3)]]),
    );
    assert!(
        evaluate_views(&program, &db2, &Default::default(), &mut UdfHost::new()).is_err(),
        "a nonempty e reaches f and surfaces the mismatch"
    );
    assert!(
        evaluate_views_naive(&program, &db2, &Default::default(), &mut UdfHost::new()).is_err()
    );
}

/// The recursive variant of the same property: a same-stratum rule scans
/// the recursive head `tc` with the wrong arity behind an empty scan. A
/// delta *variant* of that rule must also evaluate in source order — if
/// the delta atom were hoisted to the front, a nonempty round-1 delta
/// would fire the arity check that source-order evaluation (and the
/// naive reference) never reaches.
#[test]
fn arity_error_in_delta_variant_matches_naive_reachability() {
    let program = base_two()
        .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
        .rule(
            "tc",
            vec![v("a"), v("c")],
            vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
        )
        .rule(
            "h2",
            vec![v("x")],
            vec![scan("f", &["x", "y"]), scan("tc", &["p", "q", "r"])],
        )
        .build();
    // e drives tc to a nonempty delta; f is empty, so h2's arity-3 scan
    // of the arity-2 tc must never be reached by either engine.
    let db = db_of(&[("e", &[(1, 2), (2, 3)]), ("f", &[])]);
    assert!(
        evaluate_views(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok(),
        "delta variants evaluate in source order; empty f short-circuits"
    );
    assert!(evaluate_views_naive(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Linear recursion: transitive closure.
    #[test]
    fn recursion_agrees(
        es in prop::collection::vec((0i64..7, 0i64..7), 0..22),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// Non-linear recursion: two recursive atoms in one body, the case
    /// where a delta-join must still find (new, new) row pairs.
    #[test]
    fn nonlinear_recursion_agrees(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..18),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("tc", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// Mutual recursion between two heads in one stratum.
    #[test]
    fn mutual_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..16),
    ) {
        let program = base_two()
            .rule("p", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "p",
                vec![v("a"), v("c")],
                vec![scan("q", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule("q", vec![v("a"), v("b")], vec![scan("f", &["a", "b"])])
            .rule(
                "q",
                vec![v("a"), v("c")],
                vec![scan("p", &["a", "b"]), scan("f", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Negation below recursion: tc over (e − f).
    #[test]
    fn negation_feeding_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        let program = base_two()
            .rule(
                "live",
                vec![v("a"), v("b")],
                vec![scan("e", &["a", "b"]), neg("f", vec![v("a"), v("b")])],
            )
            .rule("tc", vec![v("a"), v("b")], vec![scan("live", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("live", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Negation above recursion: pairs not reachable.
    #[test]
    fn negation_over_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        let program = base_two()
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule(
                "unreachable",
                vec![v("a"), v("b")],
                vec![scan("f", &["a", "b"]), neg("tc", vec![v("a"), v("b")])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Aggregation over a recursive view (count/sum/min/max), i.e. an agg
    /// stratum strictly above the fixpoint stratum.
    #[test]
    fn aggregation_over_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
    ) {
        for agg in [AggFun::Count, AggFun::Sum, AggFun::Min, AggFun::Max] {
            let program = ProgramBuilder::new()
                .mailbox("e", 2)
                .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
                .rule(
                    "tc",
                    vec![v("a"), v("c")],
                    vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
                )
                .agg_rule("reach", vec![v("a")], agg, v("b"), vec![scan("tc", &["a", "b"])])
                .build();
            engines_agree(&program, &db_of(&[("e", &es)]));
        }
    }

    /// Guards and let-bindings interleaved with a recursive scan, plus a
    /// bounded-recursion pattern (depth counter in the head).
    #[test]
    fn guards_and_lets_in_recursion_agree(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..16),
        bound in 1i64..5,
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule(
                "walk",
                vec![v("a"), v("b"), i(1)],
                vec![scan("e", &["a", "b"])],
            )
            .rule(
                "walk",
                vec![v("a"), v("c"), v("n1")],
                vec![
                    scan("walk", &["a", "b", "n"]),
                    guard(lt(v("n"), i(bound))),
                    scan("e", &["b", "c"]),
                    let_("n1", add(v("n"), i(1))),
                ],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// Wildcards and constants inside a recursive stratum: projections of
    /// the delta must respect term matching on both paths.
    #[test]
    fn wildcards_and_constants_in_recursion_agree(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
        k in 0i64..5,
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule(
                "from_k",
                vec![v("b")],
                vec![scan_terms(
                    "tc",
                    vec![
                        hydro_core::ast::Term::Const(Value::Int(k)),
                        hydro_core::ast::Term::Var("b".into()),
                    ],
                )],
            )
            .rule("sources", vec![v("a")], vec![scan("tc", &["a", "_"])])
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }
}
