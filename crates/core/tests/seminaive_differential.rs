//! Differential testing of the semi-naive evaluator against the retained
//! naive reference (`evaluate_views` vs [`evaluate_views_naive`]).
//!
//! The semi-naive rewrite changes the fixpoint algorithm (delta-driven
//! rounds, composite hash-index probes, greedy atom reordering) but must
//! not change a single derived row. Programs here cover the shapes the
//! interpreter supports — recursion (including mutual recursion and
//! multiple recursive atoms per body), stratified negation feeding and
//! following recursion, aggregation above recursion, guards, lets, and
//! wildcard/constant patterns — over random, collision-heavy fact sets.

use hydro_core::ast::{AggFun, Expr};
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::eval::{
    evaluate_views, evaluate_views_mapref, evaluate_views_naive, Database, Relation, UdfHost,
};
use hydro_core::facets::{ConsistencyReq, Invariant};
use hydro_core::interp::{EvalMode, Transducer};
use hydro_core::{Program, TickOutput, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn db_of(rels: &[(&str, &[(i64, i64)])]) -> Database {
    let mut db = Database::default();
    for (name, rows) in rels {
        db.insert(
            name.to_string(),
            Relation::from_rows(
                rows.iter()
                    .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]),
            ),
        );
    }
    db
}

/// Evaluate with both slot-compiled engines *and* the map-based binding
/// reference; every view (and only the views) must hold exactly the same
/// row set. The mapref leg pins the slot-resolution pass itself: same
/// naive algorithm, bindings through a string map instead of frames.
fn engines_agree(program: &Program, base: &Database) {
    let seminaive = evaluate_views(program, base, &Default::default(), &mut UdfHost::new())
        .expect("semi-naive evaluates");
    let naive = evaluate_views_naive(program, base, &Default::default(), &mut UdfHost::new())
        .expect("naive evaluates");
    let mapref = evaluate_views_mapref(program, base, &Default::default(), &mut UdfHost::new())
        .expect("map reference evaluates");
    let views: BTreeSet<&String> = seminaive
        .keys()
        .chain(naive.keys())
        .chain(mapref.keys())
        .collect();
    for view in views {
        let a = seminaive.get(view).map(Relation::to_set).unwrap_or_default();
        let b = naive.get(view).map(Relation::to_set).unwrap_or_default();
        let c = mapref.get(view).map(Relation::to_set).unwrap_or_default();
        assert_eq!(a, b, "view {view:?} disagrees between engines");
        assert_eq!(b, c, "view {view:?}: slot frames disagree with map bindings");
    }
}

fn base_two() -> ProgramBuilder {
    ProgramBuilder::new().mailbox("e", 2).mailbox("f", 2)
}

/// Error behavior must match too: a guard that would error (unknown
/// scalar) sitting after a scan is only reached when the scan yields
/// rows. The planner must not hoist it ahead of the scan — with an empty
/// relation both engines succeed, with a nonempty one both fail.
#[test]
fn erroring_guard_after_scan_matches_naive_reachability() {
    use hydro_core::ast::Expr;
    let program = ProgramBuilder::new()
        .mailbox("e", 2)
        .rule(
            "g",
            vec![v("a")],
            vec![
                scan("e", &["a", "b"]),
                guard(ge(Expr::Scalar("no_such_scalar".into()), i(0))),
            ],
        )
        .build();

    let empty = db_of(&[("e", &[])]);
    assert!(
        evaluate_views(&program, &empty, &Default::default(), &mut UdfHost::new()).is_ok(),
        "guard after an empty scan is never evaluated"
    );
    assert!(
        evaluate_views_naive(&program, &empty, &Default::default(), &mut UdfHost::new()).is_ok()
    );
    assert!(
        evaluate_views_mapref(&program, &empty, &Default::default(), &mut UdfHost::new()).is_ok()
    );

    let nonempty = db_of(&[("e", &[(1, 2)])]);
    assert!(
        evaluate_views(&program, &nonempty, &Default::default(), &mut UdfHost::new()).is_err(),
        "guard is reached once the scan yields a row"
    );
    assert!(
        evaluate_views_naive(&program, &nonempty, &Default::default(), &mut UdfHost::new())
            .is_err()
    );
    assert!(
        evaluate_views_mapref(&program, &nonempty, &Default::default(), &mut UdfHost::new())
            .is_err()
    );
}

/// A scan that would error (arity mismatch) behind an empty scan must
/// stay unreachable: the planner may not hoist the better-bound atom
/// ahead of the empty one.
#[test]
fn arity_error_behind_empty_scan_matches_naive_reachability() {
    let program = base_two()
        .rule(
            "j",
            vec![v("a")],
            vec![
                scan("e", &["a", "b"]),
                scan_terms(
                    "f",
                    vec![
                        hydro_core::ast::Term::Const(Value::Int(1)),
                        hydro_core::ast::Term::Const(Value::Int(2)),
                    ],
                ),
            ],
        )
        .build();
    // f holds arity-3 rows; the rule scans it with an arity-2 pattern.
    let mut db = db_of(&[("e", &[])]);
    db.insert(
        "f".to_string(),
        Relation::from_rows([vec![Value::Int(1), Value::Int(2), Value::Int(3)]]),
    );
    assert!(
        evaluate_views(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok(),
        "empty e short-circuits before f's arity check, as in source order"
    );
    assert!(evaluate_views_naive(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());
    assert!(evaluate_views_mapref(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());

    let mut db2 = db_of(&[("e", &[(5, 6)])]);
    db2.insert(
        "f".to_string(),
        Relation::from_rows([vec![Value::Int(1), Value::Int(2), Value::Int(3)]]),
    );
    assert!(
        evaluate_views(&program, &db2, &Default::default(), &mut UdfHost::new()).is_err(),
        "a nonempty e reaches f and surfaces the mismatch"
    );
    assert!(
        evaluate_views_naive(&program, &db2, &Default::default(), &mut UdfHost::new()).is_err()
    );
    assert!(
        evaluate_views_mapref(&program, &db2, &Default::default(), &mut UdfHost::new()).is_err()
    );
}

/// The recursive variant of the same property: a same-stratum rule scans
/// the recursive head `tc` with the wrong arity behind an empty scan. A
/// delta *variant* of that rule must also evaluate in source order — if
/// the delta atom were hoisted to the front, a nonempty round-1 delta
/// would fire the arity check that source-order evaluation (and the
/// naive reference) never reaches.
#[test]
fn arity_error_in_delta_variant_matches_naive_reachability() {
    let program = base_two()
        .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
        .rule(
            "tc",
            vec![v("a"), v("c")],
            vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
        )
        .rule(
            "h2",
            vec![v("x")],
            vec![scan("f", &["x", "y"]), scan("tc", &["p", "q", "r"])],
        )
        .build();
    // e drives tc to a nonempty delta; f is empty, so h2's arity-3 scan
    // of the arity-2 tc must never be reached by either engine.
    let db = db_of(&[("e", &[(1, 2), (2, 3)]), ("f", &[])]);
    assert!(
        evaluate_views(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok(),
        "delta variants evaluate in source order; empty f short-circuits"
    );
    assert!(evaluate_views_naive(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());
    assert!(evaluate_views_mapref(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());
}

// ---------------------------------------------------------------------
// Slot frames vs map bindings: the compiled resolver against the dynamic
// string-map reference.
// ---------------------------------------------------------------------

/// A projection variable no body atom ever binds must surface the same
/// `UnboundVar` error — with the same variable name — from the compiled
/// engines as from the map reference, and only when a body match actually
/// reaches the projection.
#[test]
fn unbound_head_var_error_matches_across_engines() {
    let program = ProgramBuilder::new()
        .mailbox("e", 2)
        .rule("g", vec![v("a"), v("nope")], vec![scan("e", &["a", "b"])])
        .build();

    let empty = db_of(&[("e", &[])]);
    for result in [
        evaluate_views(&program, &empty, &Default::default(), &mut UdfHost::new()),
        evaluate_views_naive(&program, &empty, &Default::default(), &mut UdfHost::new()),
        evaluate_views_mapref(&program, &empty, &Default::default(), &mut UdfHost::new()),
    ] {
        assert!(result.is_ok(), "no match, projection never evaluated");
    }

    let nonempty = db_of(&[("e", &[(1, 2)])]);
    let errs: Vec<_> = [
        evaluate_views(&program, &nonempty, &Default::default(), &mut UdfHost::new()),
        evaluate_views_naive(&program, &nonempty, &Default::default(), &mut UdfHost::new()),
        evaluate_views_mapref(&program, &nonempty, &Default::default(), &mut UdfHost::new()),
    ]
    .into_iter()
    .map(|r| r.unwrap_err())
    .collect();
    assert_eq!(errs[0], errs[1], "slot engines agree on the error");
    assert_eq!(
        errs[1],
        errs[2],
        "slot frames render the same UnboundVar as map bindings"
    );
    assert_eq!(
        errs[0],
        hydro_core::eval::EvalError::UnboundVar("nope".to_string())
    );
}

/// Stateful-UDF call order: the compiled naive engine and the map-based
/// naive reference run the *same algorithm*, so not just the derived rows
/// but the exact sequence of non-memoized UDF invocations must be
/// bit-identical — the slot pass may not reorder, duplicate, or skip a
/// call. Covers let-bound calls, guard calls, and calls reached through
/// recursion (multiple fixpoint rounds re-deriving rows under memoization).
#[test]
fn udf_call_order_identical_between_slot_and_map_binding() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let program = ProgramBuilder::new()
        .mailbox("e", 2)
        .udf("f")
        .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
        .rule(
            "tc",
            vec![v("a"), v("c")],
            vec![
                scan("tc", &["a", "b"]),
                scan("e", &["b", "c"]),
                guard(ge(call("f", vec![v("a"), v("c")]), i(-100))),
            ],
        )
        .rule(
            "scored",
            vec![v("a"), v("r")],
            vec![
                scan("e", &["a", "b"]),
                let_("r", call("f", vec![v("b"), v("a")])),
                guard(ge(v("r"), i(-100))),
            ],
        )
        .build();
    let db = db_of(&[("e", &[(1, 2), (2, 3), (3, 1), (1, 3), (2, 2)])]);

    let run = |slot_based: bool| -> (Vec<Vec<Value>>, BTreeSet<Vec<Value>>) {
        let log: Rc<RefCell<Vec<Vec<Value>>>> = Rc::new(RefCell::new(Vec::new()));
        let mut udfs = UdfHost::new();
        let sink = Rc::clone(&log);
        udfs.register("f", move |args: &[Value]| {
            sink.borrow_mut().push(args.to_vec());
            let a = args[0].as_int().unwrap_or(0);
            let b = args[1].as_int().unwrap_or(0);
            Value::Int(a - b)
        });
        let views = if slot_based {
            evaluate_views_naive(&program, &db, &Default::default(), &mut udfs)
        } else {
            evaluate_views_mapref(&program, &db, &Default::default(), &mut udfs)
        }
        .expect("evaluates");
        let calls = log.borrow().clone();
        (calls, views["scored"].to_set())
    };

    let (slot_calls, slot_rows) = run(true);
    let (map_calls, map_rows) = run(false);
    assert_eq!(slot_rows, map_rows, "derived rows agree");
    assert_eq!(
        slot_calls, map_calls,
        "non-memoized UDF invocation sequences are bit-identical"
    );
    assert!(!slot_calls.is_empty(), "the program actually exercises the UDF");
}

// ---------------------------------------------------------------------
// Multi-tick differential: the cross-tick incremental engine against a
// fresh-evaluation-per-tick reference.
// ---------------------------------------------------------------------

/// A graph program exercising every maintenance regime at once: a
/// negation stratum over two mutable tables (`live`), recursion above it
/// (`tc`), aggregation above that (`reach`), and negation over the
/// recursive view (`dead_end`). Handlers insert *and delete* base rows,
/// so ticks carry retractions, not just growth.
fn graph_program() -> Program {
    let pair = |a: &str, b: &str| Expr::Tuple(vec![v(a), v(b)]);
    ProgramBuilder::new()
        .table("edge", vec![("a", atom()), ("b", atom())], &["a", "b"], None)
        .table(
            "blocked",
            vec![("a", atom()), ("b", atom())],
            &["a", "b"],
            None,
        )
        .rule(
            "live",
            vec![v("a"), v("b")],
            vec![scan("edge", &["a", "b"]), neg("blocked", vec![v("a"), v("b")])],
        )
        .rule("tc", vec![v("a"), v("b")], vec![scan("live", &["a", "b"])])
        .rule(
            "tc",
            vec![v("a"), v("c")],
            vec![scan("tc", &["a", "b"]), scan("live", &["b", "c"])],
        )
        .agg_rule(
            "reach",
            vec![v("a")],
            AggFun::Count,
            v("b"),
            vec![scan("tc", &["a", "b"])],
        )
        .rule(
            "dead_end",
            vec![v("a"), v("b")],
            vec![scan("edge", &["a", "b"]), neg("tc", vec![v("b"), v("a")])],
        )
        .on("add", &["a", "b"], vec![insert("edge", vec![v("a"), v("b")])])
        .on("rm", &["a", "b"], vec![delete("edge", pair("a", "b"))])
        .on(
            "block",
            &["a", "b"],
            vec![insert("blocked", vec![v("a"), v("b")])],
        )
        .on("unblock", &["a", "b"], vec![delete("blocked", pair("a", "b"))])
        .on(
            "ask",
            &["a"],
            vec![
                ret(collect_set(select(
                    vec![scan_terms(
                        "tc",
                        vec![
                            hydro_core::ast::Term::Var("a".into()),
                            hydro_core::ast::Term::Var("x".into()),
                        ],
                    )],
                    vec![v("x")],
                ))),
                send(
                    "out",
                    select(vec![scan("reach", &["p", "n"])], vec![v("p"), v("n")]),
                ),
                send(
                    "out",
                    select(vec![scan("dead_end", &["p", "q"])], vec![v("p"), v("q")]),
                ),
            ],
        )
        .build()
}

/// One enqueued message in a differential scenario.
type Op = (&'static str, Vec<Value>);

/// Enqueue + tick the same batches on both transducers and compare every
/// observable: responses (exact — message order matches), sends as
/// sorted multisets (the engines may materialize view rows in different
/// orders, which is the one observable the set semantics does not fix),
/// warnings, messages processed, and the full end-of-tick state.
fn ticks_agree(program: &Program, batches: &[Vec<Op>], reference: EvalMode) {
    let mut incr = Transducer::new(program.clone()).unwrap();
    incr.set_eval_mode(EvalMode::Incremental);
    let mut fresh = Transducer::new(program.clone()).unwrap();
    fresh.set_eval_mode(reference);
    for (t, batch) in batches.iter().enumerate() {
        for (mailbox, row) in batch {
            incr.enqueue_ok(mailbox, row.clone());
            fresh.enqueue_ok(mailbox, row.clone());
        }
        let a = incr.tick().unwrap();
        let b = fresh.tick().unwrap();
        let canon = |out: &TickOutput| {
            let mut sends: Vec<(String, Vec<Value>)> = out
                .sends
                .iter()
                .map(|s| (s.mailbox.clone(), s.row.clone()))
                .collect();
            sends.sort();
            (
                out.responses.clone(),
                sends,
                out.warnings.clone(),
                out.messages_processed,
            )
        };
        assert_eq!(canon(&a), canon(&b), "tick {t} outputs disagree");
        assert_eq!(incr.state(), fresh.state(), "tick {t} states disagree");
    }
}

/// Three-way variant of [`ticks_agree`]: the counting/DRed engine (the
/// incremental default) against the unit-recompute incremental engine
/// (`set_counting(false)`, the pre-counting fallback every retraction
/// used to take) against a fresh-per-tick reference. Pinning all three
/// to the same observables means a counting bug cannot hide behind a
/// matching recompute bug or vice versa.
fn ticks_agree3(program: &Program, batches: &[Vec<Op>]) {
    let mut counting = Transducer::new(program.clone()).unwrap();
    counting.set_eval_mode(EvalMode::Incremental);
    let mut recompute = Transducer::new(program.clone()).unwrap();
    recompute.set_eval_mode(EvalMode::Incremental);
    recompute.set_counting(false);
    let mut fresh = Transducer::new(program.clone()).unwrap();
    fresh.set_eval_mode(EvalMode::FreshSemiNaive);
    for (t, batch) in batches.iter().enumerate() {
        for (mailbox, row) in batch {
            counting.enqueue_ok(mailbox, row.clone());
            recompute.enqueue_ok(mailbox, row.clone());
            fresh.enqueue_ok(mailbox, row.clone());
        }
        let a = counting.tick().unwrap();
        let b = recompute.tick().unwrap();
        let c = fresh.tick().unwrap();
        let canon = |out: &TickOutput| {
            let mut sends: Vec<(String, Vec<Value>)> = out
                .sends
                .iter()
                .map(|s| (s.mailbox.clone(), s.row.clone()))
                .collect();
            sends.sort();
            (
                out.responses.clone(),
                sends,
                out.warnings.clone(),
                out.messages_processed,
            )
        };
        assert_eq!(
            canon(&a),
            canon(&b),
            "tick {t}: counting vs recompute outputs disagree"
        );
        assert_eq!(
            canon(&a),
            canon(&c),
            "tick {t}: counting vs fresh outputs disagree"
        );
        assert_eq!(
            counting.state(),
            recompute.state(),
            "tick {t}: counting vs recompute states disagree"
        );
        assert_eq!(
            counting.state(),
            fresh.state(),
            "tick {t}: counting vs fresh states disagree"
        );
    }
}

/// Decode a proptest-generated op stream for [`graph_program`].
fn graph_ops(raw: &[(u8, i64, i64)]) -> Vec<Vec<Op>> {
    // Chunk into ticks of up to 3 ops; kind 6 is "end tick early", which
    // also yields fully empty (no-op) ticks.
    let mut batches: Vec<Vec<Op>> = vec![Vec::new()];
    for &(kind, a, b) in raw {
        let op: Option<Op> = match kind % 7 {
            0 | 1 => Some(("add", vec![Value::Int(a), Value::Int(b)])),
            2 => Some(("rm", vec![Value::Int(a), Value::Int(b)])),
            3 => Some(("block", vec![Value::Int(a), Value::Int(b)])),
            4 => Some(("unblock", vec![Value::Int(a), Value::Int(b)])),
            5 => Some(("ask", vec![Value::Int(a)])),
            _ => None,
        };
        match op {
            Some(op) if batches.last().unwrap().len() < 3 => {
                batches.last_mut().unwrap().push(op)
            }
            Some(op) => batches.push(vec![op]),
            None => batches.push(Vec::new()),
        }
    }
    // Always end with an ask plus a no-op tick so the final view state is
    // observed after the last mutation settled.
    batches.push(vec![("ask", vec![Value::Int(0)]), ("ask", vec![Value::Int(1)])]);
    batches.push(Vec::new());
    batches
}

/// A churn program with two aggregation heads over one keyed table, so
/// delta-keyed group maintenance must replace aggregate rows in place:
/// `Sum` folds retractions directly (invertible), `Min` has to recount
/// the group, and re-putting a live key retracts the old base row and
/// inserts the new one inside a single tick.
fn agg_churn_program() -> Program {
    ProgramBuilder::new()
        .table(
            "m",
            vec![("k", atom()), ("g", atom()), ("x", atom())],
            &["k"],
            None,
        )
        .agg_rule(
            "sums",
            vec![v("g")],
            AggFun::Sum,
            v("x"),
            vec![scan("m", &["_", "g", "x"])],
        )
        .agg_rule(
            "mins",
            vec![v("g")],
            AggFun::Min,
            v("x"),
            vec![scan("m", &["_", "g", "x"])],
        )
        .on(
            "put",
            &["k", "g", "x"],
            vec![insert("m", vec![v("k"), v("g"), v("x")])],
        )
        .on("rm", &["k"], vec![delete("m", v("k"))])
        .on(
            "ask",
            &[],
            vec![
                send(
                    "out",
                    select(vec![scan("sums", &["g", "s"])], vec![v("g"), v("s")]),
                ),
                send(
                    "out",
                    select(vec![scan("mins", &["g", "s"])], vec![v("g"), v("s")]),
                ),
            ],
        )
        .build()
}

/// Decode a proptest-generated op stream for [`agg_churn_program`]. Keys
/// collide on a small range so puts overwrite live rows and deletions
/// hit both live and absent keys; groups collide harder, so a retraction
/// usually leaves its group non-empty (a recount) but sometimes empties
/// it (the group's aggregate row itself must retract).
fn agg_ops(raw: &[(u8, i64, i64)]) -> Vec<Vec<Op>> {
    let mut batches: Vec<Vec<Op>> = vec![Vec::new()];
    for &(kind, a, b) in raw {
        let op: Option<Op> = match kind % 6 {
            0..=2 => Some(("put", vec![Value::Int(a), Value::Int(b % 3), Value::Int(b)])),
            3 => Some(("rm", vec![Value::Int(a)])),
            4 => Some(("ask", vec![])),
            _ => None,
        };
        match op {
            Some(op) if batches.last().unwrap().len() < 3 => {
                batches.last_mut().unwrap().push(op)
            }
            Some(op) => batches.push(vec![op]),
            None => batches.push(Vec::new()),
        }
    }
    batches.push(vec![("ask", vec![])]);
    batches.push(Vec::new());
    batches
}

/// Decode a proptest-generated op stream for [`bank_program`]. Withdrawals
/// dominate and the reserve starts at zero, so invariant violations (and
/// the rollbacks they force) are common; ids collide on a small range so
/// deletions and re-inserts hit rows that aborted groups touched.
fn bank_ops(raw: &[(u8, i64, i64)]) -> Vec<Vec<Op>> {
    let mut batches: Vec<Vec<Op>> = vec![Vec::new()];
    for &(kind, a, b) in raw {
        let op: Option<Op> = match kind % 8 {
            0 => Some(("put", vec![Value::Int(a), Value::Int(b + 3)])),
            1 => Some(("rm", vec![Value::Int(a)])),
            2 => Some(("dep", vec![Value::Int(b)])),
            3..=5 => Some(("wd", vec![Value::Int(a), Value::Int(b)])),
            6 => Some(("ask", vec![Value::Int(a)])),
            _ => None,
        };
        match op {
            Some(op) if batches.last().unwrap().len() < 3 => {
                batches.last_mut().unwrap().push(op)
            }
            Some(op) => batches.push(vec![op]),
            None => batches.push(Vec::new()),
        }
    }
    batches.push(vec![("ask", vec![Value::Int(0)])]);
    batches.push(Vec::new());
    batches
}

/// Deletions must retract derived rows across ticks: remove a chain edge
/// and the closure behind it disappears from the next tick's answers.
#[test]
fn deletion_retracts_derived_rows_across_ticks() {
    let program = graph_program();
    let mut app = Transducer::new(program.clone()).unwrap();
    for (a, b) in [(0i64, 1i64), (1, 2), (2, 3)] {
        app.enqueue_ok("add", vec![Value::Int(a), Value::Int(b)]);
    }
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![Value::Int(0)]);
    let out = app.tick().unwrap();
    let set = out.responses[0].value.as_set().unwrap();
    assert_eq!(set.len(), 3, "0 reaches 1, 2, 3: {set:?}");

    app.enqueue_ok("rm", vec![Value::Int(1), Value::Int(2)]);
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![Value::Int(0)]);
    let out = app.tick().unwrap();
    let set = out.responses[0].value.as_set().unwrap();
    assert_eq!(
        set.iter().collect::<Vec<_>>(),
        vec![&Value::Int(1)],
        "severing 1→2 retracts 0→2 and 0→3"
    );

    // Blocking an edge (a negation input) must retract the same way.
    app.enqueue_ok("block", vec![Value::Int(0), Value::Int(1)]);
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![Value::Int(0)]);
    let out = app.tick().unwrap();
    assert!(
        out.responses[0].value.as_set().unwrap().is_empty(),
        "blocked edge leaves 0 isolated"
    );
}

/// DRed re-derivation: deleting one arm of a diamond over-deletes every
/// closure row derived through it, and the re-derivation phase must
/// resurrect exactly the rows that still have an alternative derivation.
/// `tc(1,4)` holds via both 1→2→4 and 1→3→4; removing edge 2→4 must keep
/// it while retracting `tc(2,4)`, whose only derivation died.
#[test]
fn dred_keeps_rows_with_alternative_derivations() {
    let program = graph_program();
    let mut app = Transducer::new(program.clone()).unwrap();
    app.set_eval_mode(EvalMode::Incremental);
    for (a, b) in [(1i64, 2i64), (1, 3), (2, 4), (3, 4)] {
        app.enqueue_ok("add", vec![Value::Int(a), Value::Int(b)]);
    }
    app.tick().unwrap();

    app.enqueue_ok("rm", vec![Value::Int(2), Value::Int(4)]);
    app.tick().unwrap();

    app.enqueue_ok("ask", vec![Value::Int(1)]);
    app.enqueue_ok("ask", vec![Value::Int(2)]);
    let out = app.tick().unwrap();
    let from_1: BTreeSet<Value> = out.responses[0]
        .value
        .as_set()
        .unwrap()
        .iter()
        .cloned()
        .collect();
    assert_eq!(
        from_1,
        [2i64, 3, 4].into_iter().map(Value::Int).collect(),
        "tc(1,4) survives the deletion via the 1→3→4 derivation"
    );
    assert!(
        out.responses[1].value.as_set().unwrap().is_empty(),
        "tc(2,4) had only the deleted derivation and must retract"
    );

    // The same scenario differentially, three ways, observing the
    // intermediate states too.
    let i = |x: i64| Value::Int(x);
    let batches: Vec<Vec<Op>> = vec![
        vec![("add", vec![i(1), i(2)]), ("add", vec![i(1), i(3)])],
        vec![("add", vec![i(2), i(4)]), ("add", vec![i(3), i(4)])],
        vec![("ask", vec![i(1)])],
        vec![("rm", vec![i(2), i(4)])],
        vec![("ask", vec![i(1)]), ("ask", vec![i(2)])],
        vec![],
    ];
    ticks_agree3(&program, &batches);
}

/// The same deterministic scenario, differentially against both fresh
/// engines (insert, delete, block, unblock, interleaved with no-op ticks).
#[test]
fn multi_tick_deterministic_scenario_agrees_with_both_references() {
    let i = |x: i64| Value::Int(x);
    let batches: Vec<Vec<Op>> = vec![
        vec![("add", vec![i(0), i(1)]), ("add", vec![i(1), i(2)])],
        vec![("ask", vec![i(0)])],
        vec![],
        vec![("add", vec![i(2), i(0)]), ("block", vec![i(1), i(2)])],
        vec![("ask", vec![i(0)]), ("ask", vec![i(2)])],
        vec![("rm", vec![i(0), i(1)]), ("unblock", vec![i(1), i(2)])],
        vec![("ask", vec![i(1)])],
        vec![],
        vec![("add", vec![i(0), i(0)]), ("ask", vec![i(0)])],
    ];
    let program = graph_program();
    ticks_agree(&program, &batches, EvalMode::FreshSemiNaive);
    ticks_agree(&program, &batches, EvalMode::FreshNaive);
}

/// Writing a key column in place would detach a row from its storage key
/// — the one state shape where the persistent key mirror and a freshly
/// re-derived `key_of(row)` index disagree, making keyed reads
/// engine-dependent. Every engine rejects it identically (delete and
/// re-insert is the supported way to re-key).
#[test]
fn key_column_writes_are_rejected_by_every_engine() {
    let i = |x: i64| Value::Int(x);
    for mode in [
        EvalMode::Incremental,
        EvalMode::FreshSemiNaive,
        EvalMode::FreshNaive,
    ] {
        let program = ProgramBuilder::new()
            .table("t", vec![("k", atom()), ("v", atom())], &["k"], None)
            .on("put", &["k", "v"], vec![insert("t", vec![v("k"), v("v")])])
            .on(
                "setk",
                &["k", "nk"],
                vec![assign_field("t", v("k"), "k", v("nk"))],
            )
            .build();
        let mut app = Transducer::new(program).unwrap();
        app.set_eval_mode(mode);
        app.enqueue_ok("put", vec![i(1), i(7)]);
        app.tick().unwrap();
        app.enqueue_ok("setk", vec![i(1), i(2)]);
        let err = app.tick().unwrap_err();
        assert!(
            matches!(
                err,
                hydro_core::interp::TransducerError::KeyColumn { .. }
            ),
            "{mode:?}: {err}"
        );
        // The failed tick leaves state untouched, and the offending
        // message stays queued: a retry reproduces the same error (the
        // shared behavior of every engine on evaluation failure).
        assert_eq!(app.row("t", &[i(1)]), Some(&vec![i(1), i(7)]));
        assert!(app.tick().is_err(), "{mode:?}: retry reproduces the error");
    }
}

/// A head fed by both an aggregation rule and a plain rule entangles two
/// maintenance regimes on one relation; it is rejected at validation.
#[test]
fn shared_agg_and_plain_head_is_rejected() {
    let program = ProgramBuilder::new()
        .mailbox("e", 2)
        .rule("h", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
        .agg_rule(
            "h",
            vec![v("a")],
            AggFun::Count,
            v("b"),
            vec![scan("e", &["a", "b"])],
        )
        .build();
    assert!(Transducer::new(program).is_err());
}

/// COVID end-to-end differential: lattice-column merges (row updates,
/// i.e. delete+insert deltas), flatten over set columns, a recursive
/// view over them, and the serialized `vaccinate` handler with rollback.
#[test]
fn covid_multi_tick_incremental_agrees_with_fresh() {
    use hydro_core::examples::covid_program_with_vaccines;
    let i = |x: i64| Value::Int(x);
    let batches: Vec<Vec<Op>> = vec![
        vec![
            ("add_person", vec![i(1)]),
            ("add_person", vec![i(2)]),
            ("add_person", vec![i(3)]),
        ],
        vec![("add_contact", vec![i(1), i(2)])],
        vec![("trace", vec![i(1)]), ("add_contact", vec![i(2), i(3)])],
        vec![],
        vec![("diagnosed", vec![i(1)]), ("vaccinate", vec![i(2)])],
        // Second vaccinate exhausts the single dose: rollback + ABORT.
        vec![("vaccinate", vec![i(3)]), ("trace", vec![i(3)])],
        vec![("trace", vec![i(2)])],
        vec![],
    ];
    ticks_agree(
        &covid_program_with_vaccines(1),
        &batches,
        EvalMode::FreshSemiNaive,
    );
}

// ---------------------------------------------------------------------
// Rollback under the partial (touched-keys-only) transactional snapshot.
// ---------------------------------------------------------------------

/// A bank with a serializable, invariant-guarded withdrawal: rollbacks
/// must restore exactly the touched rows (`acct` balance, the `audit`
/// entry) and the touched scalar (`reserve`) — in state *and* in the
/// serialized mid-tick mirror — while views over `acct` keep classifying
/// deltas correctly on later incremental ticks.
fn bank_program() -> Program {
    let bal = |id: Expr| field("acct", id, "bal");
    ProgramBuilder::new()
        .table("acct", vec![("id", atom()), ("bal", atom())], &["id"], None)
        .table(
            "audit",
            vec![("id", atom()), ("amt", atom())],
            &["id", "amt"],
            None,
        )
        .var("reserve", Value::Int(0))
        .rule(
            "rich",
            vec![v("id"), v("b")],
            vec![scan("acct", &["id", "b"]), guard(ge(v("b"), i(5)))],
        )
        .agg_rule(
            "total",
            vec![i(0)],
            AggFun::Sum,
            v("b"),
            vec![scan("acct", &["id", "b"])],
        )
        .on("put", &["id", "b"], vec![insert("acct", vec![v("id"), v("b")])])
        .on("rm", &["id"], vec![delete("acct", v("id"))])
        .on(
            "dep",
            &["amt"],
            vec![assign_scalar("reserve", add(scalar("reserve"), v("amt")))],
        )
        .on_with(
            "wd",
            &["id", "amt"],
            vec![if_(
                has_key("acct", v("id")),
                vec![
                    assign_scalar("reserve", sub(scalar("reserve"), v("amt"))),
                    assign_field("acct", v("id"), "bal", sub(bal(v("id")), v("amt"))),
                    insert("audit", vec![v("id"), v("amt")]),
                    ret(s("OK")),
                ],
                vec![ret(s("MISSING"))],
            )],
            Some(ConsistencyReq::serializable(vec![
                Invariant::NonNegative("reserve".to_string()),
                Invariant::HasKey {
                    table: "acct".to_string(),
                    key_param: "id".to_string(),
                },
            ])),
        )
        .on(
            "ask",
            &["x"],
            vec![
                ret(collect_set(select(
                    vec![scan("rich", &["a", "b"])],
                    vec![v("a"), v("b")],
                ))),
                send(
                    "out",
                    select(vec![scan("total", &["z", "t"])], vec![v("t")]),
                ),
            ],
        )
        .build()
}

/// Serialized messages *after* an aborted one must read the rolled-back
/// values through the mid-tick mirror: if the rollback restored the state
/// but not the mirror (or vice versa), the third withdrawal below would
/// see the aborted balance. Runs identically under every engine.
#[test]
fn partial_snapshot_rollback_preserves_serialized_mirror_reads() {
    let iv = |x: i64| Value::Int(x);
    for mode in [
        EvalMode::Incremental,
        EvalMode::FreshSemiNaive,
        EvalMode::FreshNaive,
    ] {
        let mut app = Transducer::new(bank_program()).unwrap();
        app.set_eval_mode(mode);
        app.enqueue_ok("put", vec![iv(1), iv(10)]);
        app.enqueue_ok("put", vec![iv(2), iv(77)]);
        app.enqueue_ok("dep", vec![iv(5)]);
        app.tick().unwrap();

        // One tick, three serialized withdrawals: commit, abort
        // (reserve would go negative), commit against restored state.
        app.enqueue_ok("wd", vec![iv(1), iv(3)]);
        app.enqueue_ok("wd", vec![iv(1), iv(4)]);
        app.enqueue_ok("wd", vec![iv(1), iv(2)]);
        let out = app.tick().unwrap();
        let replies: Vec<&Value> = out.responses.iter().map(|r| &r.value).collect();
        assert_eq!(
            replies,
            vec![
                &Value::Str("OK".into()),
                &Value::Str("ABORT".into()),
                &Value::Str("OK".into())
            ],
            "{mode:?}"
        );
        assert_eq!(out.warnings.len(), 1, "{mode:?}: exactly one rollback");

        // bal: 10 − 3 − 2; reserve: 5 − 3 − 2; the aborted audit entry
        // vanished; the untouched account is untouched.
        assert_eq!(app.row("acct", &[iv(1)]), Some(&vec![iv(1), iv(5)]), "{mode:?}");
        assert_eq!(app.row("acct", &[iv(2)]), Some(&vec![iv(2), iv(77)]), "{mode:?}");
        assert_eq!(app.scalar("reserve"), Some(&iv(0)), "{mode:?}");
        assert_eq!(app.table_len("audit"), 2, "{mode:?}");
        assert_eq!(app.row("audit", &[iv(1), iv(4)]), None, "{mode:?}");

        // The next tick's views must reflect the *committed* facts only
        // (for the incremental engine this pins the delta classification
        // after a rollback: the journal folds the aborted writes to
        // no-ops).
        app.enqueue_ok("ask", vec![iv(0)]);
        let out = app.tick().unwrap();
        let rich = out.responses[0].value.as_set().unwrap();
        assert_eq!(
            rich.iter().collect::<Vec<_>>(),
            vec![
                &Value::Tuple(vec![iv(1), iv(5)]),
                &Value::Tuple(vec![iv(2), iv(77)])
            ],
            "{mode:?}"
        );
        let totals: Vec<&Vec<Value>> = out
            .sends
            .iter()
            .filter(|sd| sd.mailbox == "out")
            .map(|sd| &sd.row)
            .collect();
        assert_eq!(totals, vec![&vec![iv(82)]], "{mode:?}");
    }
}

/// A precondition failure (missing key) rejects the group *before* any
/// effect applies; the optimistic reply — and only this group's reply —
/// flips to ABORT via the recorded response range.
#[test]
fn precondition_failure_aborts_without_touching_state() {
    let iv = |x: i64| Value::Int(x);
    let mut app = Transducer::new(bank_program()).unwrap();
    app.enqueue_ok("put", vec![iv(1), iv(10)]);
    app.enqueue_ok("dep", vec![iv(100)]);
    app.tick().unwrap();

    app.enqueue_ok("wd", vec![iv(9), iv(1)]); // no account 9
    app.enqueue_ok("wd", vec![iv(1), iv(1)]); // fine
    let out = app.tick().unwrap();
    let replies: Vec<&Value> = out.responses.iter().map(|r| &r.value).collect();
    assert_eq!(
        replies,
        vec![&Value::Str("ABORT".into()), &Value::Str("OK".into())]
    );
    assert_eq!(app.scalar("reserve"), Some(&iv(99)));
    assert_eq!(app.row("acct", &[iv(1)]), Some(&vec![iv(1), iv(9)]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Linear recursion: transitive closure.
    #[test]
    fn recursion_agrees(
        es in prop::collection::vec((0i64..7, 0i64..7), 0..22),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// Non-linear recursion: two recursive atoms in one body, the case
    /// where a delta-join must still find (new, new) row pairs.
    #[test]
    fn nonlinear_recursion_agrees(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..18),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("tc", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// Mutual recursion between two heads in one stratum.
    #[test]
    fn mutual_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..16),
    ) {
        let program = base_two()
            .rule("p", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "p",
                vec![v("a"), v("c")],
                vec![scan("q", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule("q", vec![v("a"), v("b")], vec![scan("f", &["a", "b"])])
            .rule(
                "q",
                vec![v("a"), v("c")],
                vec![scan("p", &["a", "b"]), scan("f", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Negation below recursion: tc over (e − f).
    #[test]
    fn negation_feeding_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        let program = base_two()
            .rule(
                "live",
                vec![v("a"), v("b")],
                vec![scan("e", &["a", "b"]), neg("f", vec![v("a"), v("b")])],
            )
            .rule("tc", vec![v("a"), v("b")], vec![scan("live", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("live", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Negation above recursion: pairs not reachable.
    #[test]
    fn negation_over_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        let program = base_two()
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule(
                "unreachable",
                vec![v("a"), v("b")],
                vec![scan("f", &["a", "b"]), neg("tc", vec![v("a"), v("b")])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Aggregation over a recursive view (count/sum/min/max), i.e. an agg
    /// stratum strictly above the fixpoint stratum.
    #[test]
    fn aggregation_over_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
    ) {
        for agg in [AggFun::Count, AggFun::Sum, AggFun::Min, AggFun::Max] {
            let program = ProgramBuilder::new()
                .mailbox("e", 2)
                .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
                .rule(
                    "tc",
                    vec![v("a"), v("c")],
                    vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
                )
                .agg_rule("reach", vec![v("a")], agg, v("b"), vec![scan("tc", &["a", "b"])])
                .build();
            engines_agree(&program, &db_of(&[("e", &es)]));
        }
    }

    /// Guards and let-bindings interleaved with a recursive scan, plus a
    /// bounded-recursion pattern (depth counter in the head).
    #[test]
    fn guards_and_lets_in_recursion_agree(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..16),
        bound in 1i64..5,
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule(
                "walk",
                vec![v("a"), v("b"), i(1)],
                vec![scan("e", &["a", "b"])],
            )
            .rule(
                "walk",
                vec![v("a"), v("c"), v("n1")],
                vec![
                    scan("walk", &["a", "b", "n"]),
                    guard(lt(v("n"), i(bound))),
                    scan("e", &["b", "c"]),
                    let_("n1", add(v("n"), i(1))),
                ],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// The multi-tick property: over randomized insert/delete/block/
    /// unblock/query sequences — covering negation and aggregation strata
    /// and retraction cascades — an incrementally maintained transducer
    /// produces the same tick outputs and final state as a transducer
    /// that re-evaluates every view from a fresh snapshot each tick.
    #[test]
    fn multi_tick_incremental_agrees_with_fresh(
        raw in prop::collection::vec((0u8..7, 0i64..5, 0i64..5), 0..28),
    ) {
        let program = graph_program();
        ticks_agree(&program, &graph_ops(&raw), EvalMode::FreshSemiNaive);
    }

    /// The counting/DRed engine against the unit-recompute fallback and
    /// the fresh reference at once, over the full graph workload:
    /// counting on the negation-fed `live` stratum, DRed on the recursive
    /// `tc` stratum, delta-keyed groups on the `reach` aggregate, and
    /// negation *over* the recursion in `dead_end` — all under randomized
    /// insert/delete/block/unblock churn.
    #[test]
    fn counting_dred_agree_with_recompute_and_fresh(
        raw in prop::collection::vec((0u8..7, 0i64..5, 0i64..5), 0..28),
    ) {
        let program = graph_program();
        ticks_agree3(&program, &graph_ops(&raw));
    }

    /// Delta-keyed aggregate-group maintenance under key churn: Sum
    /// (fold retractions directly) and Min (group recount) over an
    /// upserted keyed table, counting vs recompute vs fresh.
    #[test]
    fn counting_agg_groups_agree_with_recompute_and_fresh(
        raw in prop::collection::vec((0u8..6, 0i64..4, 0i64..7), 0..28),
    ) {
        let program = agg_churn_program();
        ticks_agree3(&program, &agg_ops(&raw));
    }

    /// The bank workload three ways: serialized-group rollbacks
    /// interleave with counting maintenance, so an aborted group must
    /// leave support counts exactly as if it never ran.
    #[test]
    fn bank_counting_agrees_with_recompute_and_fresh(
        raw in prop::collection::vec((0u8..8, 0i64..4, 0i64..6), 0..28),
    ) {
        let program = bank_program();
        ticks_agree3(&program, &bank_ops(&raw));
    }

    /// Rollback under the partial snapshot: randomized invariant-violating
    /// serialized groups (withdrawals against a zero-seeded reserve and a
    /// churning account table) interleaved with incremental ticks must
    /// leave every observable — responses incl. ABORT rewrites, rollback
    /// warnings, end-of-tick state, and the *next* ticks' view deltas —
    /// identical to a fresh-per-tick reference that never snapshots at
    /// all. Any key the touched-keys restore missed (or restored wrongly,
    /// in state or mirror) diverges here.
    #[test]
    fn rollback_under_partial_snapshot_agrees_with_fresh(
        raw in prop::collection::vec((0u8..8, 0i64..4, 0i64..6), 0..28),
    ) {
        let program = bank_program();
        ticks_agree(&program, &bank_ops(&raw), EvalMode::FreshSemiNaive);
    }

    /// Wildcards and constants inside a recursive stratum: projections of
    /// the delta must respect term matching on both paths.
    #[test]
    fn wildcards_and_constants_in_recursion_agree(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
        k in 0i64..5,
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule(
                "from_k",
                vec![v("b")],
                vec![scan_terms(
                    "tc",
                    vec![
                        hydro_core::ast::Term::Const(Value::Int(k)),
                        hydro_core::ast::Term::Var("b".into()),
                    ],
                )],
            )
            .rule("sources", vec![v("a")], vec![scan("tc", &["a", "_"])])
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }
}
