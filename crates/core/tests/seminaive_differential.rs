//! Differential testing of the semi-naive evaluator against the retained
//! naive reference (`evaluate_views` vs [`evaluate_views_naive`]).
//!
//! The semi-naive rewrite changes the fixpoint algorithm (delta-driven
//! rounds, composite hash-index probes, greedy atom reordering) but must
//! not change a single derived row. Programs here cover the shapes the
//! interpreter supports — recursion (including mutual recursion and
//! multiple recursive atoms per body), stratified negation feeding and
//! following recursion, aggregation above recursion, guards, lets, and
//! wildcard/constant patterns — over random, collision-heavy fact sets.

use hydro_core::ast::{AggFun, Expr};
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::eval::{evaluate_views, evaluate_views_naive, Database, Relation, UdfHost};
use hydro_core::interp::{EvalMode, Transducer};
use hydro_core::{Program, TickOutput, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn db_of(rels: &[(&str, &[(i64, i64)])]) -> Database {
    let mut db = Database::default();
    for (name, rows) in rels {
        db.insert(
            name.to_string(),
            Relation::from_rows(
                rows.iter()
                    .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]),
            ),
        );
    }
    db
}

/// Evaluate with both engines; every view (and only the views) must hold
/// exactly the same row set.
fn engines_agree(program: &Program, base: &Database) {
    let seminaive = evaluate_views(program, base, &Default::default(), &mut UdfHost::new())
        .expect("semi-naive evaluates");
    let naive = evaluate_views_naive(program, base, &Default::default(), &mut UdfHost::new())
        .expect("naive evaluates");
    let views: BTreeSet<&String> = seminaive.keys().chain(naive.keys()).collect();
    for view in views {
        let a = seminaive.get(view).map(Relation::to_set).unwrap_or_default();
        let b = naive.get(view).map(Relation::to_set).unwrap_or_default();
        assert_eq!(a, b, "view {view:?} disagrees between engines");
    }
}

fn base_two() -> ProgramBuilder {
    ProgramBuilder::new().mailbox("e", 2).mailbox("f", 2)
}

/// Error behavior must match too: a guard that would error (unknown
/// scalar) sitting after a scan is only reached when the scan yields
/// rows. The planner must not hoist it ahead of the scan — with an empty
/// relation both engines succeed, with a nonempty one both fail.
#[test]
fn erroring_guard_after_scan_matches_naive_reachability() {
    use hydro_core::ast::Expr;
    let program = ProgramBuilder::new()
        .mailbox("e", 2)
        .rule(
            "g",
            vec![v("a")],
            vec![
                scan("e", &["a", "b"]),
                guard(ge(Expr::Scalar("no_such_scalar".into()), i(0))),
            ],
        )
        .build();

    let empty = db_of(&[("e", &[])]);
    assert!(
        evaluate_views(&program, &empty, &Default::default(), &mut UdfHost::new()).is_ok(),
        "guard after an empty scan is never evaluated"
    );
    assert!(
        evaluate_views_naive(&program, &empty, &Default::default(), &mut UdfHost::new()).is_ok()
    );

    let nonempty = db_of(&[("e", &[(1, 2)])]);
    assert!(
        evaluate_views(&program, &nonempty, &Default::default(), &mut UdfHost::new()).is_err(),
        "guard is reached once the scan yields a row"
    );
    assert!(
        evaluate_views_naive(&program, &nonempty, &Default::default(), &mut UdfHost::new())
            .is_err()
    );
}

/// A scan that would error (arity mismatch) behind an empty scan must
/// stay unreachable: the planner may not hoist the better-bound atom
/// ahead of the empty one.
#[test]
fn arity_error_behind_empty_scan_matches_naive_reachability() {
    let program = base_two()
        .rule(
            "j",
            vec![v("a")],
            vec![
                scan("e", &["a", "b"]),
                scan_terms(
                    "f",
                    vec![
                        hydro_core::ast::Term::Const(Value::Int(1)),
                        hydro_core::ast::Term::Const(Value::Int(2)),
                    ],
                ),
            ],
        )
        .build();
    // f holds arity-3 rows; the rule scans it with an arity-2 pattern.
    let mut db = db_of(&[("e", &[])]);
    db.insert(
        "f".to_string(),
        Relation::from_rows([vec![Value::Int(1), Value::Int(2), Value::Int(3)]]),
    );
    assert!(
        evaluate_views(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok(),
        "empty e short-circuits before f's arity check, as in source order"
    );
    assert!(evaluate_views_naive(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());

    let mut db2 = db_of(&[("e", &[(5, 6)])]);
    db2.insert(
        "f".to_string(),
        Relation::from_rows([vec![Value::Int(1), Value::Int(2), Value::Int(3)]]),
    );
    assert!(
        evaluate_views(&program, &db2, &Default::default(), &mut UdfHost::new()).is_err(),
        "a nonempty e reaches f and surfaces the mismatch"
    );
    assert!(
        evaluate_views_naive(&program, &db2, &Default::default(), &mut UdfHost::new()).is_err()
    );
}

/// The recursive variant of the same property: a same-stratum rule scans
/// the recursive head `tc` with the wrong arity behind an empty scan. A
/// delta *variant* of that rule must also evaluate in source order — if
/// the delta atom were hoisted to the front, a nonempty round-1 delta
/// would fire the arity check that source-order evaluation (and the
/// naive reference) never reaches.
#[test]
fn arity_error_in_delta_variant_matches_naive_reachability() {
    let program = base_two()
        .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
        .rule(
            "tc",
            vec![v("a"), v("c")],
            vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
        )
        .rule(
            "h2",
            vec![v("x")],
            vec![scan("f", &["x", "y"]), scan("tc", &["p", "q", "r"])],
        )
        .build();
    // e drives tc to a nonempty delta; f is empty, so h2's arity-3 scan
    // of the arity-2 tc must never be reached by either engine.
    let db = db_of(&[("e", &[(1, 2), (2, 3)]), ("f", &[])]);
    assert!(
        evaluate_views(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok(),
        "delta variants evaluate in source order; empty f short-circuits"
    );
    assert!(evaluate_views_naive(&program, &db, &Default::default(), &mut UdfHost::new()).is_ok());
}

// ---------------------------------------------------------------------
// Multi-tick differential: the cross-tick incremental engine against a
// fresh-evaluation-per-tick reference.
// ---------------------------------------------------------------------

/// A graph program exercising every maintenance regime at once: a
/// negation stratum over two mutable tables (`live`), recursion above it
/// (`tc`), aggregation above that (`reach`), and negation over the
/// recursive view (`dead_end`). Handlers insert *and delete* base rows,
/// so ticks carry retractions, not just growth.
fn graph_program() -> Program {
    let pair = |a: &str, b: &str| Expr::Tuple(vec![v(a), v(b)]);
    ProgramBuilder::new()
        .table("edge", vec![("a", atom()), ("b", atom())], &["a", "b"], None)
        .table(
            "blocked",
            vec![("a", atom()), ("b", atom())],
            &["a", "b"],
            None,
        )
        .rule(
            "live",
            vec![v("a"), v("b")],
            vec![scan("edge", &["a", "b"]), neg("blocked", vec![v("a"), v("b")])],
        )
        .rule("tc", vec![v("a"), v("b")], vec![scan("live", &["a", "b"])])
        .rule(
            "tc",
            vec![v("a"), v("c")],
            vec![scan("tc", &["a", "b"]), scan("live", &["b", "c"])],
        )
        .agg_rule(
            "reach",
            vec![v("a")],
            AggFun::Count,
            v("b"),
            vec![scan("tc", &["a", "b"])],
        )
        .rule(
            "dead_end",
            vec![v("a"), v("b")],
            vec![scan("edge", &["a", "b"]), neg("tc", vec![v("b"), v("a")])],
        )
        .on("add", &["a", "b"], vec![insert("edge", vec![v("a"), v("b")])])
        .on("rm", &["a", "b"], vec![delete("edge", pair("a", "b"))])
        .on(
            "block",
            &["a", "b"],
            vec![insert("blocked", vec![v("a"), v("b")])],
        )
        .on("unblock", &["a", "b"], vec![delete("blocked", pair("a", "b"))])
        .on(
            "ask",
            &["a"],
            vec![
                ret(collect_set(select(
                    vec![scan_terms(
                        "tc",
                        vec![
                            hydro_core::ast::Term::Var("a".into()),
                            hydro_core::ast::Term::Var("x".into()),
                        ],
                    )],
                    vec![v("x")],
                ))),
                send(
                    "out",
                    select(vec![scan("reach", &["p", "n"])], vec![v("p"), v("n")]),
                ),
                send(
                    "out",
                    select(vec![scan("dead_end", &["p", "q"])], vec![v("p"), v("q")]),
                ),
            ],
        )
        .build()
}

/// One enqueued message in a differential scenario.
type Op = (&'static str, Vec<Value>);

/// Enqueue + tick the same batches on both transducers and compare every
/// observable: responses (exact — message order matches), sends as
/// sorted multisets (the engines may materialize view rows in different
/// orders, which is the one observable the set semantics does not fix),
/// warnings, messages processed, and the full end-of-tick state.
fn ticks_agree(program: &Program, batches: &[Vec<Op>], reference: EvalMode) {
    let mut incr = Transducer::new(program.clone()).unwrap();
    incr.set_eval_mode(EvalMode::Incremental);
    let mut fresh = Transducer::new(program.clone()).unwrap();
    fresh.set_eval_mode(reference);
    for (t, batch) in batches.iter().enumerate() {
        for (mailbox, row) in batch {
            incr.enqueue_ok(mailbox, row.clone());
            fresh.enqueue_ok(mailbox, row.clone());
        }
        let a = incr.tick().unwrap();
        let b = fresh.tick().unwrap();
        let canon = |out: &TickOutput| {
            let mut sends: Vec<(String, Vec<Value>)> = out
                .sends
                .iter()
                .map(|s| (s.mailbox.clone(), s.row.clone()))
                .collect();
            sends.sort();
            (
                out.responses.clone(),
                sends,
                out.warnings.clone(),
                out.messages_processed,
            )
        };
        assert_eq!(canon(&a), canon(&b), "tick {t} outputs disagree");
        assert_eq!(incr.state(), fresh.state(), "tick {t} states disagree");
    }
}

/// Decode a proptest-generated op stream for [`graph_program`].
fn graph_ops(raw: &[(u8, i64, i64)]) -> Vec<Vec<Op>> {
    // Chunk into ticks of up to 3 ops; kind 6 is "end tick early", which
    // also yields fully empty (no-op) ticks.
    let mut batches: Vec<Vec<Op>> = vec![Vec::new()];
    for &(kind, a, b) in raw {
        let op: Option<Op> = match kind % 7 {
            0 | 1 => Some(("add", vec![Value::Int(a), Value::Int(b)])),
            2 => Some(("rm", vec![Value::Int(a), Value::Int(b)])),
            3 => Some(("block", vec![Value::Int(a), Value::Int(b)])),
            4 => Some(("unblock", vec![Value::Int(a), Value::Int(b)])),
            5 => Some(("ask", vec![Value::Int(a)])),
            _ => None,
        };
        match op {
            Some(op) if batches.last().unwrap().len() < 3 => {
                batches.last_mut().unwrap().push(op)
            }
            Some(op) => batches.push(vec![op]),
            None => batches.push(Vec::new()),
        }
    }
    // Always end with an ask plus a no-op tick so the final view state is
    // observed after the last mutation settled.
    batches.push(vec![("ask", vec![Value::Int(0)]), ("ask", vec![Value::Int(1)])]);
    batches.push(Vec::new());
    batches
}

/// Deletions must retract derived rows across ticks: remove a chain edge
/// and the closure behind it disappears from the next tick's answers.
#[test]
fn deletion_retracts_derived_rows_across_ticks() {
    let program = graph_program();
    let mut app = Transducer::new(program.clone()).unwrap();
    for (a, b) in [(0i64, 1i64), (1, 2), (2, 3)] {
        app.enqueue_ok("add", vec![Value::Int(a), Value::Int(b)]);
    }
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![Value::Int(0)]);
    let out = app.tick().unwrap();
    let set = out.responses[0].value.as_set().unwrap();
    assert_eq!(set.len(), 3, "0 reaches 1, 2, 3: {set:?}");

    app.enqueue_ok("rm", vec![Value::Int(1), Value::Int(2)]);
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![Value::Int(0)]);
    let out = app.tick().unwrap();
    let set = out.responses[0].value.as_set().unwrap();
    assert_eq!(
        set.iter().collect::<Vec<_>>(),
        vec![&Value::Int(1)],
        "severing 1→2 retracts 0→2 and 0→3"
    );

    // Blocking an edge (a negation input) must retract the same way.
    app.enqueue_ok("block", vec![Value::Int(0), Value::Int(1)]);
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![Value::Int(0)]);
    let out = app.tick().unwrap();
    assert!(
        out.responses[0].value.as_set().unwrap().is_empty(),
        "blocked edge leaves 0 isolated"
    );
}

/// The same deterministic scenario, differentially against both fresh
/// engines (insert, delete, block, unblock, interleaved with no-op ticks).
#[test]
fn multi_tick_deterministic_scenario_agrees_with_both_references() {
    let i = |x: i64| Value::Int(x);
    let batches: Vec<Vec<Op>> = vec![
        vec![("add", vec![i(0), i(1)]), ("add", vec![i(1), i(2)])],
        vec![("ask", vec![i(0)])],
        vec![],
        vec![("add", vec![i(2), i(0)]), ("block", vec![i(1), i(2)])],
        vec![("ask", vec![i(0)]), ("ask", vec![i(2)])],
        vec![("rm", vec![i(0), i(1)]), ("unblock", vec![i(1), i(2)])],
        vec![("ask", vec![i(1)])],
        vec![],
        vec![("add", vec![i(0), i(0)]), ("ask", vec![i(0)])],
    ];
    let program = graph_program();
    ticks_agree(&program, &batches, EvalMode::FreshSemiNaive);
    ticks_agree(&program, &batches, EvalMode::FreshNaive);
}

/// Writing a key column in place would detach a row from its storage key
/// — the one state shape where the persistent key mirror and a freshly
/// re-derived `key_of(row)` index disagree, making keyed reads
/// engine-dependent. Every engine rejects it identically (delete and
/// re-insert is the supported way to re-key).
#[test]
fn key_column_writes_are_rejected_by_every_engine() {
    let i = |x: i64| Value::Int(x);
    for mode in [
        EvalMode::Incremental,
        EvalMode::FreshSemiNaive,
        EvalMode::FreshNaive,
    ] {
        let program = ProgramBuilder::new()
            .table("t", vec![("k", atom()), ("v", atom())], &["k"], None)
            .on("put", &["k", "v"], vec![insert("t", vec![v("k"), v("v")])])
            .on(
                "setk",
                &["k", "nk"],
                vec![assign_field("t", v("k"), "k", v("nk"))],
            )
            .build();
        let mut app = Transducer::new(program).unwrap();
        app.set_eval_mode(mode);
        app.enqueue_ok("put", vec![i(1), i(7)]);
        app.tick().unwrap();
        app.enqueue_ok("setk", vec![i(1), i(2)]);
        let err = app.tick().unwrap_err();
        assert!(
            matches!(
                err,
                hydro_core::interp::TransducerError::KeyColumn { .. }
            ),
            "{mode:?}: {err}"
        );
        // The failed tick leaves state untouched, and the offending
        // message stays queued: a retry reproduces the same error (the
        // shared behavior of every engine on evaluation failure).
        assert_eq!(app.row("t", &[i(1)]), Some(&vec![i(1), i(7)]));
        assert!(app.tick().is_err(), "{mode:?}: retry reproduces the error");
    }
}

/// A head fed by both an aggregation rule and a plain rule entangles two
/// maintenance regimes on one relation; it is rejected at validation.
#[test]
fn shared_agg_and_plain_head_is_rejected() {
    let program = ProgramBuilder::new()
        .mailbox("e", 2)
        .rule("h", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
        .agg_rule(
            "h",
            vec![v("a")],
            AggFun::Count,
            v("b"),
            vec![scan("e", &["a", "b"])],
        )
        .build();
    assert!(Transducer::new(program).is_err());
}

/// COVID end-to-end differential: lattice-column merges (row updates,
/// i.e. delete+insert deltas), flatten over set columns, a recursive
/// view over them, and the serialized `vaccinate` handler with rollback.
#[test]
fn covid_multi_tick_incremental_agrees_with_fresh() {
    use hydro_core::examples::covid_program_with_vaccines;
    let i = |x: i64| Value::Int(x);
    let batches: Vec<Vec<Op>> = vec![
        vec![
            ("add_person", vec![i(1)]),
            ("add_person", vec![i(2)]),
            ("add_person", vec![i(3)]),
        ],
        vec![("add_contact", vec![i(1), i(2)])],
        vec![("trace", vec![i(1)]), ("add_contact", vec![i(2), i(3)])],
        vec![],
        vec![("diagnosed", vec![i(1)]), ("vaccinate", vec![i(2)])],
        // Second vaccinate exhausts the single dose: rollback + ABORT.
        vec![("vaccinate", vec![i(3)]), ("trace", vec![i(3)])],
        vec![("trace", vec![i(2)])],
        vec![],
    ];
    ticks_agree(
        &covid_program_with_vaccines(1),
        &batches,
        EvalMode::FreshSemiNaive,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Linear recursion: transitive closure.
    #[test]
    fn recursion_agrees(
        es in prop::collection::vec((0i64..7, 0i64..7), 0..22),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// Non-linear recursion: two recursive atoms in one body, the case
    /// where a delta-join must still find (new, new) row pairs.
    #[test]
    fn nonlinear_recursion_agrees(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..18),
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("tc", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// Mutual recursion between two heads in one stratum.
    #[test]
    fn mutual_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..16),
    ) {
        let program = base_two()
            .rule("p", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "p",
                vec![v("a"), v("c")],
                vec![scan("q", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule("q", vec![v("a"), v("b")], vec![scan("f", &["a", "b"])])
            .rule(
                "q",
                vec![v("a"), v("c")],
                vec![scan("p", &["a", "b"]), scan("f", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Negation below recursion: tc over (e − f).
    #[test]
    fn negation_feeding_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        let program = base_two()
            .rule(
                "live",
                vec![v("a"), v("b")],
                vec![scan("e", &["a", "b"]), neg("f", vec![v("a"), v("b")])],
            )
            .rule("tc", vec![v("a"), v("b")], vec![scan("live", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("live", &["b", "c"])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Negation above recursion: pairs not reachable.
    #[test]
    fn negation_over_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..14),
        fs in prop::collection::vec((0i64..5, 0i64..5), 0..14),
    ) {
        let program = base_two()
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule(
                "unreachable",
                vec![v("a"), v("b")],
                vec![scan("f", &["a", "b"]), neg("tc", vec![v("a"), v("b")])],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es), ("f", &fs)]));
    }

    /// Aggregation over a recursive view (count/sum/min/max), i.e. an agg
    /// stratum strictly above the fixpoint stratum.
    #[test]
    fn aggregation_over_recursion_agrees(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
    ) {
        for agg in [AggFun::Count, AggFun::Sum, AggFun::Min, AggFun::Max] {
            let program = ProgramBuilder::new()
                .mailbox("e", 2)
                .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
                .rule(
                    "tc",
                    vec![v("a"), v("c")],
                    vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
                )
                .agg_rule("reach", vec![v("a")], agg, v("b"), vec![scan("tc", &["a", "b"])])
                .build();
            engines_agree(&program, &db_of(&[("e", &es)]));
        }
    }

    /// Guards and let-bindings interleaved with a recursive scan, plus a
    /// bounded-recursion pattern (depth counter in the head).
    #[test]
    fn guards_and_lets_in_recursion_agree(
        es in prop::collection::vec((0i64..6, 0i64..6), 0..16),
        bound in 1i64..5,
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule(
                "walk",
                vec![v("a"), v("b"), i(1)],
                vec![scan("e", &["a", "b"])],
            )
            .rule(
                "walk",
                vec![v("a"), v("c"), v("n1")],
                vec![
                    scan("walk", &["a", "b", "n"]),
                    guard(lt(v("n"), i(bound))),
                    scan("e", &["b", "c"]),
                    let_("n1", add(v("n"), i(1))),
                ],
            )
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }

    /// The multi-tick property: over randomized insert/delete/block/
    /// unblock/query sequences — covering negation and aggregation strata
    /// and retraction cascades — an incrementally maintained transducer
    /// produces the same tick outputs and final state as a transducer
    /// that re-evaluates every view from a fresh snapshot each tick.
    #[test]
    fn multi_tick_incremental_agrees_with_fresh(
        raw in prop::collection::vec((0u8..7, 0i64..5, 0i64..5), 0..28),
    ) {
        let program = graph_program();
        ticks_agree(&program, &graph_ops(&raw), EvalMode::FreshSemiNaive);
    }

    /// Wildcards and constants inside a recursive stratum: projections of
    /// the delta must respect term matching on both paths.
    #[test]
    fn wildcards_and_constants_in_recursion_agree(
        es in prop::collection::vec((0i64..5, 0i64..5), 0..16),
        k in 0i64..5,
    ) {
        let program = ProgramBuilder::new()
            .mailbox("e", 2)
            .rule("tc", vec![v("a"), v("b")], vec![scan("e", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("e", &["b", "c"])],
            )
            .rule(
                "from_k",
                vec![v("b")],
                vec![scan_terms(
                    "tc",
                    vec![
                        hydro_core::ast::Term::Const(Value::Int(k)),
                        hydro_core::ast::Term::Var("b".into()),
                    ],
                )],
            )
            .rule("sources", vec![v("a")], vec![scan("tc", &["a", "_"])])
            .build();
        engines_agree(&program, &db_of(&[("e", &es)]));
    }
}
