//! Static reorder-safety: the verdicts of `hydro_core::reorder`, their
//! exposure as per-rule flags on the compiled plan (`ProgramCore`), and
//! the order-independence property they certify — a proven-safe rule
//! evaluates without binding/arity errors under *any* admissible
//! permutation of its body atoms, and all admissible orders agree.

use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::interp::{EvalMode, ProgramCore, Transducer};
use hydro_core::reorder::{ReorderIssue, ReorderReport, RuleKind};
use hydro_core::value::Value;
use hydro_core::Program;

/// kv(k, val) + aux(k, tag), a put handler for each, and a probe handler
/// reading the `joined` view. The view is the join under test.
fn join_program(body: Vec<hydro_core::ast::BodyAtom>) -> Program {
    ProgramBuilder::new()
        .table("kv", vec![("k", atom()), ("val", atom())], &["k"], Some("k"))
        .table("aux", vec![("k", atom()), ("tag", atom())], &["k"], Some("k"))
        .rule("joined", vec![v("x"), v("y"), v("t")], body)
        .on(
            "put",
            &["k", "v"],
            vec![insert("kv", vec![v("k"), v("v")]), ret(s("ok"))],
        )
        .on(
            "tag",
            &["k", "t"],
            vec![insert("aux", vec![v("k"), v("t")]), ret(s("ok"))],
        )
        .on(
            "probe",
            &["ignored"],
            vec![ret(collect_set(select(
                vec![scan("joined", &["a", "b", "c"])],
                vec![v("a"), v("b"), v("c")],
            )))],
        )
        .build()
}

#[test]
fn clean_join_is_reorder_safe_and_flagged_on_core() {
    let program = join_program(vec![
        scan("kv", &["x", "y"]),
        scan("aux", &["x", "t"]),
        guard(ge(v("y"), i(0))),
    ]);
    let report = ReorderReport::analyze(&program);
    assert!(report.all_safe(), "issues: {:?}", report);
    assert_eq!(report.rules.len(), 1);
    assert_eq!(report.rules[0].provenance.kind, RuleKind::Rule);
    assert_eq!(report.rules[0].provenance.head, "joined");

    let core = ProgramCore::new(program).unwrap();
    assert!(core.rule_reorder_safe(0));
    assert!(core.reorder().all_safe());
}

#[test]
fn unknown_relation_breaks_the_proof() {
    let program = join_program(vec![scan("kvz", &["x", "y"]), scan("aux", &["x", "t"])]);
    let report = ReorderReport::analyze(&program);
    assert!(report.rules[0]
        .issues
        .iter()
        .any(|i| matches!(i, ReorderIssue::UnknownRelation { rel } if rel == "kvz")));

    let core = ProgramCore::new(program).unwrap();
    assert!(!core.rule_reorder_safe(0));
}

#[test]
fn pattern_arity_mismatch_breaks_the_proof() {
    // kv has arity 2; a 3-wide pattern would only error at runtime if the
    // scan enumerates a row — exactly the order-dependence we exclude.
    let program = join_program(vec![
        scan("kv", &["x", "y", "t"]),
        scan("aux", &["x", "t"]),
    ]);
    let report = ReorderReport::analyze(&program);
    assert!(report.rules[0].issues.iter().any(|i| matches!(
        i,
        ReorderIssue::PatternArity { rel, pattern: 3, declared: 2 } if rel == "kv"
    )));
}

#[test]
fn guard_before_binder_is_not_admissible() {
    let program = join_program(vec![
        guard(ge(v("y"), i(0))),
        scan("kv", &["x", "y"]),
        scan("aux", &["x", "t"]),
    ]);
    let report = ReorderReport::analyze(&program);
    assert!(report.rules[0]
        .issues
        .iter()
        .any(|i| matches!(i, ReorderIssue::UnboundVar { var, .. } if var == "y")));
}

#[test]
fn unbound_head_projection_is_flagged() {
    let program = ProgramBuilder::new()
        .table("kv", vec![("k", atom()), ("val", atom())], &["k"], None)
        .rule("view", vec![v("z")], vec![scan("kv", &["x", "y"])])
        .build();
    let report = ReorderReport::analyze(&program);
    assert!(report.rules[0].issues.iter().any(|i| matches!(
        i,
        ReorderIssue::UnboundVar { var, context } if var == "z" && context == "head projection"
    )));
}

#[test]
fn negation_args_must_be_pre_bound() {
    let program = ProgramBuilder::new()
        .table("kv", vec![("k", atom()), ("val", atom())], &["k"], None)
        .rule(
            "view",
            vec![i(0)],
            vec![neg("kv", vec![v("x"), i(0)]), scan("kv", &["x", "y"])],
        )
        .build();
    let report = ReorderReport::analyze(&program);
    assert!(report.rules[0]
        .issues
        .iter()
        .any(|i| matches!(i, ReorderIssue::UnboundVar { var, .. } if var == "x")));
}

#[test]
fn conflicting_head_arities_are_flagged() {
    let program = ProgramBuilder::new()
        .table("kv", vec![("k", atom()), ("val", atom())], &["k"], None)
        .rule("view", vec![v("x")], vec![scan("kv", &["x", "y"])])
        .rule("view", vec![v("x"), v("y")], vec![scan("kv", &["x", "y"])])
        .build();
    let report = ReorderReport::analyze(&program);
    // The first definition establishes arity 1; the second conflicts.
    assert!(report.rules[0].reorder_safe());
    assert!(report.rules[1].issues.iter().any(|i| matches!(
        i,
        ReorderIssue::HeadArityConflict { head, arity: 2, prior: 1 } if head == "view"
    )));
}

#[test]
fn comprehension_bindings_are_scoped() {
    // `inner` is bound inside the collect_set comprehension only; a later
    // guard reading it is unbound.
    let program = ProgramBuilder::new()
        .table("kv", vec![("k", atom()), ("val", atom())], &["k"], None)
        .rule(
            "view",
            vec![v("x")],
            vec![
                scan("kv", &["x", "y"]),
                let_(
                    "set",
                    collect_set(select(vec![scan("kv", &["k2", "inner"])], vec![v("inner")])),
                ),
                guard(ge(v("inner"), i(0))),
            ],
        )
        .build();
    let report = ReorderReport::analyze(&program);
    assert!(report.rules[0]
        .issues
        .iter()
        .any(|i| matches!(i, ReorderIssue::UnboundVar { var, .. } if var == "inner")));
}

#[test]
fn handler_bodies_are_checked_too() {
    let program = ProgramBuilder::new()
        .table("kv", vec![("k", atom()), ("val", atom())], &["k"], None)
        .on("good", &["k"], vec![ret(v("k"))])
        .on("bad", &["k"], vec![ret(v("nope"))])
        .build();
    let report = ReorderReport::analyze(&program);
    assert_eq!(report.handlers.len(), 2);
    assert!(report.handlers[0].reorder_safe());
    assert!(report.handlers[1]
        .issues
        .iter()
        .any(|i| matches!(i, ReorderIssue::UnboundVar { var, .. } if var == "nope")));

    let core = ProgramCore::new(program).unwrap();
    assert!(!core.reorder().all_safe());
}

#[test]
fn agg_rules_get_verdicts_and_core_flags() {
    let program = ProgramBuilder::new()
        .table("kv", vec![("k", atom()), ("val", atom())], &["k"], None)
        .agg_rule(
            "counts",
            vec![v("x")],
            hydro_core::ast::AggFun::Count,
            v("y"),
            vec![scan("kv", &["x", "y"])],
        )
        .agg_rule(
            "bad_counts",
            vec![v("x")],
            hydro_core::ast::AggFun::Count,
            v("missing"),
            vec![scan("kv", &["x", "y"])],
        )
        .build();
    let report = ReorderReport::analyze(&program);
    assert!(report.agg_rules[0].reorder_safe());
    assert!(!report.agg_rules[1].reorder_safe());

    let core = ProgramCore::new(program).unwrap();
    assert!(core.agg_reorder_safe(0));
    assert!(!core.agg_reorder_safe(1));
}

/// The property the flag certifies: every admissible permutation of a
/// proven-safe body evaluates without binding/arity errors, and all
/// orders derive the same view — across all three engines.
#[test]
fn admissible_permutations_agree_across_engines() {
    let orders: Vec<Vec<hydro_core::ast::BodyAtom>> = vec![
        // Source order.
        vec![
            scan("kv", &["x", "y"]),
            scan("aux", &["x", "t"]),
            guard(ge(v("y"), i(0))),
        ],
        // Scans swapped (still admissible: guard's `y` bound by atom 2).
        vec![
            scan("aux", &["x", "t"]),
            scan("kv", &["x", "y"]),
            guard(ge(v("y"), i(0))),
        ],
        // Guard sunk between the scans' swap.
        vec![
            scan("kv", &["x", "y"]),
            guard(ge(v("y"), i(0))),
            scan("aux", &["x", "t"]),
        ],
    ];
    let mut probe_values: Vec<Value> = Vec::new();
    for body in orders {
        let program = join_program(body);
        assert!(
            ReorderReport::analyze(&program).rules[0].reorder_safe(),
            "every tested order must be admissible"
        );
        for mode in [
            EvalMode::Incremental,
            EvalMode::FreshSemiNaive,
            EvalMode::FreshNaive,
        ] {
            let mut t = Transducer::new(program.clone()).unwrap();
            t.set_eval_mode(mode);
            for k in 0..6i64 {
                t.enqueue_ok("put", vec![Value::Int(k), Value::Int(k * 10 - 20)]);
                t.enqueue_ok("tag", vec![Value::Int(k), Value::Int(k % 3)]);
            }
            t.tick().unwrap();
            t.enqueue_ok("probe", vec![Value::Int(0)]);
            let out = t.tick().unwrap();
            assert_eq!(out.responses.len(), 1, "probe must answer");
            probe_values.push(out.responses[0].value.clone());
        }
    }
    // 3 orders × 3 engines: every evaluation derived the same join.
    assert!(
        probe_values.windows(2).all(|w| w[0] == w[1]),
        "admissible orders diverged: {probe_values:?}"
    );
}
