//! Dedicated tests for the §3.1 transducer semantics.
//!
//! The paper's event-loop contract, item by item: snapshot reads,
//! end-of-tick atomic mutation, fixpoint queries with statement-order
//! independence, stratified negation and aggregation, UDF memoization
//! ("once per input per tick"), asynchronous sends, condition triggers,
//! and the runtime's error surface.

use hydro_core::ast::{AggFun, Expr};
use hydro_core::builder::dsl::*;
use hydro_core::builder::ProgramBuilder;
use hydro_core::interp::{Transducer, TransducerError};
use hydro_core::value::{LatticeKind, Value};

fn ints(row: &[i64]) -> Vec<Value> {
    row.iter().map(|&x| Value::Int(x)).collect()
}

// ------------------------------------------------------------ tick atomicity

/// Mutations are invisible within their tick: a handler that assigns a
/// scalar and a handler that reads it in the same tick must read the
/// snapshot value.
#[test]
fn mutations_defer_to_end_of_tick() {
    let program = ProgramBuilder::new()
        .var("x", Value::Int(0))
        .mailbox("log", 1)
        .on("bump", &[], vec![assign_scalar("x", add(scalar("x"), i(1)))])
        .on("read", &[], vec![send_row("log", vec![scalar("x")])])
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("bump", vec![]);
    app.enqueue_ok("read", vec![]);
    let out = app.tick().unwrap();
    let logged = out.sends.iter().find(|s| s.mailbox == "log").unwrap();
    assert_eq!(logged.row[0], Value::Int(0), "read sees the snapshot");
    assert_eq!(app.scalar("x"), Some(&Value::Int(1)), "bump applied after");
}

/// Two merges into the same lattice cell in one tick combine via join, not
/// last-write-wins.
#[test]
fn concurrent_merges_join() {
    let program = ProgramBuilder::new()
        .lattice_var("hi", LatticeKind::MaxInt)
        .on("offer", &["v"], vec![merge_scalar("hi", v("v"))])
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("offer", ints(&[30]));
    app.enqueue_ok("offer", ints(&[70]));
    app.enqueue_ok("offer", ints(&[50]));
    app.tick().unwrap();
    assert_eq!(app.scalar("hi"), Some(&Value::Int(70)));
}

/// Bare assignment is the non-monotone escape hatch: its outcome *does*
/// depend on message arrival order (which is why the CALM typechecker
/// flags it), but is reproducible for a given order.
#[test]
fn assignment_outcome_is_order_dependent_but_reproducible() {
    let build = || {
        ProgramBuilder::new()
            .var("x", Value::Int(0))
            .on("set", &["v"], vec![assign_scalar("x", v("v"))])
            .build()
    };
    let run = |values: &[i64]| {
        let mut app = Transducer::new(build()).unwrap();
        for &v in values {
            app.enqueue_ok("set", ints(&[v]));
        }
        app.tick().unwrap();
        app.scalar("x").cloned()
    };
    assert_eq!(run(&[1, 2]), run(&[1, 2]), "same order, same outcome");
    assert_ne!(
        run(&[1, 2]),
        run(&[2, 1]),
        "reordering non-monotone updates changes the result — the CALM \
         theorem's 'only if' direction in miniature"
    );
}

// ------------------------------------------------------ queries & strata

/// Multiple rules with one head union their results (the Datalog reading
/// of same-named queries).
#[test]
fn same_head_rules_union() {
    let program = ProgramBuilder::new()
        .table("a", vec![("x", atom())], &["x"], None)
        .table("b", vec![("x", atom())], &["x"], None)
        .rule("both", vec![v("x")], vec![scan("a", &["x"])])
        .rule("both", vec![v("x")], vec![scan("b", &["x"])])
        .mailbox("out", 1)
        .on(
            "ask",
            &[],
            vec![send(
                "out",
                select(vec![scan("both", &["x"])], vec![v("x")]),
            )],
        )
        .on("puta", &["x"], vec![insert("a", vec![v("x")])])
        .on("putb", &["x"], vec![insert("b", vec![v("x")])])
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("puta", ints(&[1]));
    app.enqueue_ok("putb", ints(&[2]));
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![]);
    let out = app.tick().unwrap();
    let got: Vec<i64> = out
        .sends
        .iter()
        .filter(|s| s.mailbox == "out")
        .filter_map(|s| s.row[0].as_int())
        .collect();
    assert_eq!(got.len(), 2);
    assert!(got.contains(&1) && got.contains(&2));
}

/// Stratified negation: `only_a(x) :- a(x), not b(x)` reflects the
/// snapshot, including after deletes.
#[test]
fn stratified_negation_tracks_snapshot() {
    let program = ProgramBuilder::new()
        .table("a", vec![("x", atom())], &["x"], None)
        .table("b", vec![("x", atom())], &["x"], None)
        .rule(
            "only_a",
            vec![v("x")],
            vec![scan("a", &["x"]), neg("b", vec![v("x")])],
        )
        .mailbox("out", 1)
        .on("puta", &["x"], vec![insert("a", vec![v("x")])])
        .on("putb", &["x"], vec![insert("b", vec![v("x")])])
        .on("dropb", &["x"], vec![delete("b", v("x"))])
        .on(
            "ask",
            &[],
            vec![send(
                "out",
                select(vec![scan("only_a", &["x"])], vec![v("x")]),
            )],
        )
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("puta", ints(&[1]));
    app.enqueue_ok("puta", ints(&[2]));
    app.enqueue_ok("putb", ints(&[2]));
    app.tick().unwrap();

    app.enqueue_ok("ask", vec![]);
    let out = app.tick().unwrap();
    let got: Vec<i64> = out.sends.iter().filter_map(|s| s.row[0].as_int()).collect();
    assert_eq!(got, vec![1], "2 is suppressed by b(2)");

    app.enqueue_ok("dropb", ints(&[2]));
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![]);
    let out = app.tick().unwrap();
    let mut got: Vec<i64> = out.sends.iter().filter_map(|s| s.row[0].as_int()).collect();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2], "delete re-admits 2 (non-monotone, visible next tick)");
}

/// Aggregation rules group and fold; count over an empty group is absent
/// (Datalog semantics), not zero.
#[test]
fn aggregation_groups_and_folds() {
    let program = ProgramBuilder::new()
        .table("edges", vec![("src", atom()), ("dst", atom())], &["src", "dst"], None)
        .agg_rule(
            "outdeg",
            vec![v("s")],
            AggFun::Count,
            v("d"),
            vec![scan("edges", &["s", "d"])],
        )
        .mailbox("out", 2)
        .on("put", &["s", "d"], vec![insert("edges", vec![v("s"), v("d")])])
        .on(
            "ask",
            &[],
            vec![send(
                "out",
                select(vec![scan("outdeg", &["s", "n"])], vec![v("s"), v("n")]),
            )],
        )
        .build();
    let mut app = Transducer::new(program).unwrap();
    for (s, d) in [(1, 2), (1, 3), (2, 3)] {
        app.enqueue_ok("put", ints(&[s, d]));
    }
    app.tick().unwrap();
    app.enqueue_ok("ask", vec![]);
    let out = app.tick().unwrap();
    let mut got: Vec<(i64, i64)> = out
        .sends
        .iter()
        .map(|s| (s.row[0].as_int().unwrap(), s.row[1].as_int().unwrap()))
        .collect();
    got.sort_unstable();
    assert_eq!(got, vec![(1, 2), (2, 1)], "no (3, 0) row");
}

// ------------------------------------------------------------------- UDFs

/// §3.1: "each UDF is invoked once per input per tick (memoized by the
/// runtime)".
#[test]
fn udfs_are_memoized_per_input_per_tick() {
    let program = ProgramBuilder::new()
        .on("score", &["x"], vec![ret(call("model", vec![v("x")]))])
        .udf("model")
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.register_udf("model", |args| {
        Value::Int(args[0].as_int().unwrap() * 10)
    });
    // Three messages, two distinct inputs.
    app.enqueue_ok("score", ints(&[1]));
    app.enqueue_ok("score", ints(&[1]));
    app.enqueue_ok("score", ints(&[2]));
    let out = app.tick().unwrap();
    assert_eq!(out.responses.len(), 3);
    assert_eq!(app.udf_invocations("model"), 2, "memoized within the tick");

    // The memo resets across ticks (UDFs may be stateful).
    app.enqueue_ok("score", ints(&[1]));
    app.tick().unwrap();
    assert_eq!(app.udf_invocations("model"), 3);
}

// ------------------------------------------------------------------ sends

/// Sends are buffered in the tick output, never applied to local state —
/// "sends are not visible during the current tick".
#[test]
fn sends_are_asynchronous() {
    let program = ProgramBuilder::new()
        .mailbox("loopback", 1)
        .on("go", &[], vec![send_row("loopback", vec![i(7)])])
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("go", vec![]);
    let out = app.tick().unwrap();
    assert_eq!(out.sends.len(), 1);
    assert_eq!(app.pending("loopback"), 0, "not self-delivered");
}

// ------------------------------------------------------- condition triggers

/// Condition handlers (Appendix A.2) fire when their guard holds over the
/// snapshot, once per tick, with no message consumed.
#[test]
fn condition_handlers_fire_on_snapshot() {
    let program = ProgramBuilder::new()
        .var("n", Value::Int(0))
        .mailbox("done", 1)
        .on("bump", &[], vec![assign_scalar("n", add(scalar("n"), i(1)))])
        .on_condition(
            "watch",
            ge(scalar("n"), i(2)),
            vec![send_row("done", vec![scalar("n")])],
        )
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("bump", vec![]);
    let out = app.tick().unwrap();
    assert!(out.sends.is_empty(), "n=0 at snapshot time");
    app.enqueue_ok("bump", vec![]);
    let out = app.tick().unwrap();
    assert!(out.sends.is_empty(), "n=1 at snapshot time");
    let out = app.tick().unwrap();
    assert_eq!(out.sends.len(), 1, "n=2 now visible");
    assert_eq!(out.sends[0].row[0], Value::Int(2));
}

// ---------------------------------------------------------------- errors

#[test]
fn unknown_mailbox_enqueue_is_an_error() {
    let program = ProgramBuilder::new().build();
    let mut app = Transducer::new(program).unwrap();
    let err = app.enqueue("ghost", vec![]).unwrap_err();
    assert!(matches!(err, TransducerError::NoSuchMailbox(_)));
}

#[test]
fn division_by_zero_surfaces_as_eval_error() {
    let program = ProgramBuilder::new()
        .var("x", Value::Int(1))
        .on(
            "crash",
            &["d"],
            vec![assign_scalar("x", Expr::Arith(
                hydro_core::ast::ArithOp::Div,
                Box::new(scalar("x")),
                Box::new(v("d")),
            ))],
        )
        .build();
    let mut app = Transducer::new(program).unwrap();
    app.enqueue_ok("crash", ints(&[0]));
    let err = app.tick().unwrap_err();
    assert!(matches!(err, TransducerError::Eval(_)), "{err}");
}

#[test]
fn unstratifiable_programs_are_rejected_at_construction() {
    // p(x) :- q(x), not p(x): negation in a cycle.
    let program = ProgramBuilder::new()
        .table("q", vec![("x", atom())], &["x"], None)
        .rule(
            "p",
            vec![v("x")],
            vec![scan("q", &["x"]), neg("p", vec![v("x")])],
        )
        .build();
    assert!(Transducer::new(program).is_err());
}

// ----------------------------------------------------- order independence

/// The §3.1 headline: "the results of a tick are independent of the order
/// in which statements appear in the program". Two programs with reversed
/// statement lists compute identical state.
#[test]
fn statement_order_within_a_tick_is_irrelevant() {
    let forward = ProgramBuilder::new()
        .table("t", vec![("k", atom()), ("s", lat(LatticeKind::SetUnion))], &["k"], None)
        .on(
            "both",
            &["k", "a", "b"],
            vec![
                merge_field("t", v("k"), "s", v("a")),
                merge_field("t", v("k"), "s", v("b")),
            ],
        )
        .build();
    let backward = ProgramBuilder::new()
        .table("t", vec![("k", atom()), ("s", lat(LatticeKind::SetUnion))], &["k"], None)
        .on(
            "both",
            &["k", "a", "b"],
            vec![
                merge_field("t", v("k"), "s", v("b")),
                merge_field("t", v("k"), "s", v("a")),
            ],
        )
        .build();
    let mut f = Transducer::new(forward).unwrap();
    let mut g = Transducer::new(backward).unwrap();
    for app in [&mut f, &mut g] {
        app.enqueue_ok("both", ints(&[1, 10, 20]));
        app.tick().unwrap();
    }
    assert_eq!(f.row("t", &[Value::Int(1)]), g.row("t", &[Value::Int(1)]));
}

/// Recursive queries reach the same fixpoint regardless of how facts are
/// spread across ticks (growing input, growing output — monotonicity).
#[test]
fn fixpoint_is_batch_insensitive_for_monotone_queries() {
    let build = || {
        ProgramBuilder::new()
            .table("edge", vec![("a", atom()), ("b", atom())], &["a", "b"], None)
            .rule("tc", vec![v("a"), v("b")], vec![scan("edge", &["a", "b"])])
            .rule(
                "tc",
                vec![v("a"), v("c")],
                vec![scan("tc", &["a", "b"]), scan("edge", &["b", "c"])],
            )
            .mailbox("out", 2)
            .on("put", &["a", "b"], vec![insert("edge", vec![v("a"), v("b")])])
            .on(
                "ask",
                &[],
                vec![send(
                    "out",
                    select(vec![scan("tc", &["a", "b"])], vec![v("a"), v("b")]),
                )],
            )
            .build()
    };
    let edges = [(1i64, 2i64), (2, 3), (3, 4), (2, 5)];

    // All at once.
    let mut one = Transducer::new(build()).unwrap();
    for (a, b) in edges {
        one.enqueue_ok("put", ints(&[a, b]));
    }
    one.tick().unwrap();
    one.enqueue_ok("ask", vec![]);
    let out1 = one.tick().unwrap();

    // One edge per tick, reverse order.
    let mut two = Transducer::new(build()).unwrap();
    for (a, b) in edges.iter().rev() {
        two.enqueue_ok("put", ints(&[*a, *b]));
        two.tick().unwrap();
    }
    two.enqueue_ok("ask", vec![]);
    let out2 = two.tick().unwrap();

    let collect = |out: &hydro_core::TickOutput| {
        let mut v: Vec<(i64, i64)> = out
            .sends
            .iter()
            .map(|s| (s.row[0].as_int().unwrap(), s.row[1].as_int().unwrap()))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(collect(&out1), collect(&out2));
    assert!(collect(&out1).contains(&(1, 5)));
}
