//! Property test: the evaluator's access-path selection is invisible.
//!
//! `eval_select` chooses between a full relation scan and a hash-index
//! probe per scan atom, depending on which terms are already bound. Both
//! paths must produce exactly the same matches in exactly the same
//! (nested-loop, insertion) order — including duplicates. This suite
//! compares the evaluator against an independently-written brute-force
//! nested-loop reference over randomized relations and scan patterns.

use hydro_core::ast::{BodyAtom, Expr, Select, Term};
use hydro_core::builder::ProgramBuilder;
use hydro_core::eval::{eval_select, Bindings, Database, EvalCtx, Relation, Row, UdfHost};
use hydro_core::Value;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Brute-force nested-loop evaluation of scan-only bodies: no indexes, no
/// cleverness — the semantic ground truth.
fn reference_eval(db: &BTreeMap<String, Vec<Row>>, body: &[(String, Vec<Term>)]) -> Vec<Row> {
    fn go(
        db: &BTreeMap<String, Vec<Row>>,
        body: &[(String, Vec<Term>)],
        bound: &mut BTreeMap<String, Value>,
        vars: &[String],
        out: &mut Vec<Row>,
    ) {
        let Some(((rel, terms), rest)) = body.split_first() else {
            out.push(vars.iter().map(|v| bound[v].clone()).collect());
            return;
        };
        'rows: for row in &db[rel] {
            let mut added: Vec<&String> = Vec::new();
            let mut ok = true;
            for (t, v) in terms.iter().zip(row.iter()) {
                match t {
                    Term::Wildcard => {}
                    Term::Const(c) => {
                        if c != v {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(name) => match bound.get(name) {
                        Some(b) => {
                            if b != v {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bound.insert(name.clone(), v.clone());
                            added.push(name);
                        }
                    },
                }
            }
            if ok {
                go(db, rest, bound, vars, out);
            }
            for name in added {
                bound.remove(name);
            }
            if !ok {
                continue 'rows;
            }
        }
    }
    // Projection: every variable, in first-occurrence order.
    let mut vars: Vec<String> = Vec::new();
    for (_, terms) in body {
        for t in terms {
            if let Term::Var(v) = t {
                if !vars.contains(v) {
                    vars.push(v.clone());
                }
            }
        }
    }
    let mut out = Vec::new();
    go(db, body, &mut BTreeMap::new(), &vars, &mut out);
    out
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")]
            .prop_map(|v: &str| Term::Var(v.to_string())),
        1 => (0i64..4).prop_map(|x| Term::Const(Value::Int(x))),
        1 => Just(Term::Wildcard),
    ]
}

/// A relation: arity 1..=3, up to 8 rows of small ints (collision-heavy so
/// index buckets hold several rows).
fn relation_strategy() -> impl Strategy<Value = Vec<Row>> {
    (1usize..=3).prop_flat_map(|arity| {
        proptest::collection::vec(
            proptest::collection::vec((0i64..4).prop_map(Value::Int), arity),
            0..8,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn indexed_evaluation_equals_nested_loop_reference(
        rels in proptest::collection::vec(relation_strategy(), 1..=3),
        picks in proptest::collection::vec((0usize..3, proptest::collection::vec(term_strategy(), 3)), 1..=3),
    ) {
        // Name the relations and fix each body atom's terms to the
        // relation's arity.
        let names: Vec<String> = (0..rels.len()).map(|i| format!("r{i}")).collect();
        let mut ref_db: BTreeMap<String, Vec<Row>> = BTreeMap::new();
        let mut db = Database::default();
        for (name, rows) in names.iter().zip(&rels) {
            // The evaluator's Relation dedups; feed the reference the
            // deduped row list so both see identical inputs.
            let rel = Relation::from_rows(rows.clone());
            ref_db.insert(name.clone(), rel.iter().cloned().collect());
            db.insert(name.clone(), rel);
        }
        let body: Vec<(String, Vec<Term>)> = picks
            .into_iter()
            .map(|(i, terms)| {
                let i = i % rels.len();
                let arity = rels[i].first().map_or(1, Vec::len).max(1);
                (names[i].clone(), terms.into_iter().take(arity).collect::<Vec<Term>>())
            })
            .filter(|(name, terms)| {
                // Skip arity mismatches (the evaluator rejects them; the
                // reference has no error channel).
                ref_db[name].first().is_none_or(|r| r.len() == terms.len())
            })
            .collect();
        prop_assume!(!body.is_empty());

        let expect = reference_eval(&ref_db, &body);

        // Build the equivalent Select: projection = all vars in
        // first-occurrence order.
        let mut vars: Vec<String> = Vec::new();
        for (_, terms) in &body {
            for t in terms {
                if let Term::Var(v) = t {
                    if !vars.contains(v) {
                        vars.push(v.clone());
                    }
                }
            }
        }
        let select = Select {
            body: body
                .iter()
                .map(|(rel, terms)| BodyAtom::Scan { rel: rel.clone(), terms: terms.clone() })
                .collect(),
            projection: vars.iter().map(|v| Expr::Var(v.clone())).collect(),
        };
        let program = ProgramBuilder::new().build();
        let mut udfs = UdfHost::new();
        let mut ctx = EvalCtx {
            program: &program,
            db: &db,
            scalars: &Default::default(),
            key_index: &Default::default(),
            udfs: &mut udfs,
            scan_cache: Default::default(),
        };
        let got = eval_select(&select, &Bindings::default(), &mut ctx).unwrap();
        prop_assert_eq!(got, expect);
    }
}
