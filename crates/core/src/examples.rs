//! The paper's running examples as library fixtures.
//!
//! [`covid_program`] is Figure 3 — the COVID-19 tracker in HydroLogic —
//! complete with its consistency, availability and target facets.
//! [`cart_program`] is the §7.1 shopping-cart whose checkout is made
//! coordination-free by client-side sealing. Both are used across the test
//! suites, examples, and benchmarks (experiments E1, E2, E6, E10).

use crate::ast::{Expr, Handler, Program, Trigger};
use crate::builder::dsl::*;
use crate::builder::ProgramBuilder;
use crate::facets::{
    AvailReq, ConsistencyReq, FailureDomain, Invariant, Processor, TargetReq,
};
use crate::value::{LatticeKind, Value};

/// Figure 3: the COVID-19 tracker.
///
/// * `people(pid, country, contacts, covid, vaccinated)` keyed by `pid`,
///   partitioned by `country`; `contacts` is a set lattice and the two
///   flags are boolean-or lattices.
/// * `transitive` is the recursive contact closure (monotone query).
/// * `vaccinate` is the one serializable handler, with the
///   `vaccine_count >= 0` and `people.has_key(pid)` invariants.
/// * Availability: tolerate 2 AZ failures by default, 1 for the
///   GPU-hungry `likelihood`.
/// * Targets: 100 ms / 0.01 units default; GPU and 0.1 units for
///   `likelihood`.
///
/// The `covid_predict` UDF must be registered on the transducer before
/// `likelihood` is invoked.
pub fn covid_program() -> Program {
    covid_program_with_vaccines(100)
}

/// [`covid_program`] with a configurable initial vaccine inventory.
pub fn covid_program_with_vaccines(vaccine_count: i64) -> Program {
    ProgramBuilder::new()
        .table(
            "people",
            vec![
                ("pid", atom()),
                ("country", atom()),
                ("contacts", lat(LatticeKind::SetUnion)),
                ("covid", lat(LatticeKind::BoolOr)),
                ("vaccinated", lat(LatticeKind::BoolOr)),
            ],
            &["pid"],
            Some("country"),
        )
        .var("vaccine_count", Value::Int(vaccine_count))
        // query transitive: base case over direct contacts...
        .rule(
            "contact_pairs",
            vec![v("p"), v("p1")],
            vec![
                scan("people", &["p", "_", "cs", "_", "_"]),
                flatten("p1", v("cs")),
            ],
        )
        .rule(
            "transitive",
            vec![v("p"), v("p1")],
            vec![scan("contact_pairs", &["p", "p1"])],
        )
        // ...and the inductive case (recursive, still monotone).
        .rule(
            "transitive",
            vec![v("p"), v("p2")],
            vec![
                scan("transitive", &["p", "p1"]),
                scan("contact_pairs", &["p1", "p2"]),
            ],
        )
        .on(
            "add_person",
            &["pid"],
            vec![
                // people.merge(Person(pid)) — monotonic mutation.
                insert(
                    "people",
                    vec![
                        v("pid"),
                        s(""),
                        Expr::Const(Value::empty_set()),
                        b(false),
                        b(false),
                    ],
                ),
                ret(Expr::Const(Value::ok())),
            ],
        )
        .on(
            "add_contact",
            &["id1", "id2"],
            vec![
                // p.contacts.merge(p1); p1.contacts.merge(p) — monotonic.
                merge_field("people", v("id1"), "contacts", v("id2")),
                merge_field("people", v("id2"), "contacts", v("id1")),
                ret(Expr::Const(Value::ok())),
            ],
        )
        .on(
            "trace",
            &["pid"],
            vec![ret(collect_set(select(
                vec![scan("transitive", &["pid", "p2"])],
                vec![v("p2")],
            )))],
        )
        .on(
            "diagnosed",
            &["pid"],
            vec![
                merge_field("people", v("pid"), "covid", b(true)),
                // send alert {p for p in trace(pid)} — asynchronous.
                send(
                    "alert",
                    select(vec![scan("transitive", &["pid", "p2"])], vec![v("p2")]),
                ),
                ret(Expr::Const(Value::ok())),
            ],
        )
        .on(
            "likelihood",
            &["pid"],
            vec![ret(call("covid_predict", vec![row("people", v("pid"))]))],
        )
        .on_with(
            "vaccinate",
            &["pid"],
            vec![
                merge_field("people", v("pid"), "vaccinated", b(true)), // monotonic
                assign_scalar("vaccine_count", sub(scalar("vaccine_count"), i(1))), // NON-monotonic
                ret(Expr::Const(Value::ok())),
            ],
            Some(ConsistencyReq::serializable(vec![
                Invariant::NonNegative("vaccine_count".to_string()),
                Invariant::HasKey {
                    table: "people".to_string(),
                    key_param: "pid".to_string(),
                },
            ])),
        )
        .availability_default(AvailReq {
            domain: FailureDomain::Az,
            failures: 2,
        })
        .availability_for(
            "likelihood",
            AvailReq {
                domain: FailureDomain::Az,
                failures: 1,
            },
        )
        .target_default(TargetReq {
            latency_ms: Some(100),
            cost_milli: Some(10),
            processor: None,
        })
        .target_for(
            "likelihood",
            TargetReq {
                latency_ms: None,
                cost_milli: Some(100),
                processor: Some(Processor::Gpu),
            },
        )
        .udf("covid_predict")
        .build()
}

/// [`covid_program`] plus a `remove_person(pid)` handler — the churn
/// variant the deletion-maintenance work (counting + DRed) is exercised
/// and benchmarked against (experiment E19). Deleting a person retracts
/// their `people` row, which cascades: their `contact_pairs` edges
/// retract by support counting, and the affected part of the recursive
/// `transitive` closure retracts by delete-and-rederive — paths that
/// survive via other contacts stay put.
pub fn covid_churn_program() -> Program {
    let mut p = covid_program();
    p.handlers.push(Handler {
        name: "remove_person".to_string(),
        params: vec!["pid".to_string()],
        trigger: Trigger::OnMessage,
        body: vec![delete("people", v("pid")), ret(Expr::Const(Value::ok()))],
        consistency: None,
    });
    p
}

/// §7.1's shopping cart with client-side sealing.
///
/// * `add_item(session, item)` grows the cart monotonically.
/// * `checkout(session, manifest)` carries the client's sealed manifest; a
///   replica confirms unilaterally once its own grown cart matches — no
///   replica coordination. While the replica lags the manifest, the request
///   re-queues itself (`checkout_wait`), modelling "each replica can
///   eagerly move to checkout once its contents match the manifest".
pub fn cart_program() -> Program {
    ProgramBuilder::new()
        .table(
            "carts",
            vec![("session", atom()), ("items", lat(LatticeKind::SetUnion))],
            &["session"],
            None,
        )
        .on(
            "add_item",
            &["session", "item"],
            vec![
                insert(
                    "carts",
                    vec![v("session"), Expr::SetBuild(vec![v("item")])],
                ),
                ret(Expr::Const(Value::ok())),
            ],
        )
        .on(
            "checkout",
            &["session", "manifest"],
            vec![if_(
                eq(field("carts", v("session"), "items"), v("manifest")),
                vec![send_row("checkout_ok", vec![v("session"), v("manifest")])],
                vec![send_row("checkout_wait", vec![v("session"), v("manifest")])],
            )],
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Transducer;

    fn person(app: &mut Transducer, pid: i64) {
        app.enqueue_ok("add_person", vec![Value::Int(pid)]);
    }

    fn contact(app: &mut Transducer, a: i64, b: i64) {
        app.enqueue_ok("add_contact", vec![Value::Int(a), Value::Int(b)]);
    }

    #[test]
    fn covid_end_to_end_matches_fig2_semantics() {
        let mut app = Transducer::new(covid_program()).unwrap();
        for pid in 1..=4 {
            person(&mut app, pid);
        }
        app.tick().unwrap();
        assert_eq!(app.table_len("people"), 4);

        // Chain 1-2-3; 4 isolated.
        contact(&mut app, 1, 2);
        contact(&mut app, 2, 3);
        app.tick().unwrap();

        // Diagnose 1: alerts must reach 2 and 3 (transitively) but not 4.
        app.enqueue_ok("diagnosed", vec![Value::Int(1)]);
        let out = app.tick().unwrap();
        let alerted: std::collections::BTreeSet<i64> = out
            .sends
            .iter()
            .filter(|s| s.mailbox == "alert")
            .filter_map(|s| s.row[0].as_int())
            .collect();
        assert!(alerted.contains(&2) && alerted.contains(&3));
        assert!(!alerted.contains(&4));
        // covid flag merged at end of tick.
        assert_eq!(
            app.row("people", &[Value::Int(1)]).unwrap()[3],
            Value::Bool(true)
        );
    }

    #[test]
    fn trace_returns_transitive_set() {
        let mut app = Transducer::new(covid_program()).unwrap();
        for pid in 1..=3 {
            person(&mut app, pid);
        }
        app.tick().unwrap();
        contact(&mut app, 1, 2);
        contact(&mut app, 2, 3);
        app.tick().unwrap();
        app.enqueue_ok("trace", vec![Value::Int(1)]);
        let out = app.tick().unwrap();
        let resp = &out.responses[0];
        let set = resp.value.as_set().unwrap();
        // 1's transitive contacts: 2, 3 — and 1 itself via the symmetric
        // edge back (1-2-1), matching the recursive query's semantics.
        assert!(set.contains(&Value::Int(2)));
        assert!(set.contains(&Value::Int(3)));
    }

    #[test]
    fn vaccinate_enforces_inventory_invariant() {
        let mut app = Transducer::new(covid_program_with_vaccines(1)).unwrap();
        person(&mut app, 1);
        person(&mut app, 2);
        app.tick().unwrap();

        app.enqueue_ok("vaccinate", vec![Value::Int(1)]);
        app.enqueue_ok("vaccinate", vec![Value::Int(2)]);
        let out = app.tick().unwrap();
        let oks = out
            .responses
            .iter()
            .filter(|r| r.handler == "vaccinate" && r.value == Value::ok())
            .count();
        let aborts = out
            .responses
            .iter()
            .filter(|r| r.handler == "vaccinate" && r.value == Value::from("ABORT"))
            .count();
        // Only one dose existed: exactly one succeeds, one aborts.
        assert_eq!((oks, aborts), (1, 1));
        assert_eq!(app.scalar("vaccine_count"), Some(&Value::Int(0)));
    }

    #[test]
    fn vaccinate_requires_existing_person() {
        let mut app = Transducer::new(covid_program()).unwrap();
        app.enqueue_ok("vaccinate", vec![Value::Int(99)]);
        let out = app.tick().unwrap();
        assert_eq!(out.responses[0].value, Value::from("ABORT"));
        // Inventory untouched by the aborted attempt.
        assert_eq!(app.scalar("vaccine_count"), Some(&Value::Int(100)));
    }

    #[test]
    fn likelihood_invokes_registered_udf() {
        let mut app = Transducer::new(covid_program()).unwrap();
        app.register_udf("covid_predict", |args| {
            // Model: non-null row → likelihood 87.
            if args[0] == Value::Null {
                Value::Int(0)
            } else {
                Value::Int(87)
            }
        });
        person(&mut app, 7);
        app.tick().unwrap();
        app.enqueue_ok("likelihood", vec![Value::Int(7)]);
        let out = app.tick().unwrap();
        assert_eq!(out.responses[0].value, Value::Int(87));
    }

    #[test]
    fn facets_match_figure_3() {
        let p = covid_program();
        assert_eq!(p.availability.for_handler("add_contact").failures, 2);
        assert_eq!(p.availability.for_handler("likelihood").failures, 1);
        let t = p.targets.for_handler("likelihood");
        assert_eq!(t.processor, Some(Processor::Gpu));
        assert_eq!(t.cost_milli, Some(100));
        assert_eq!(t.latency_ms, Some(100)); // inherited default
        assert_eq!(
            p.consistency_of("vaccinate").level,
            crate::facets::ConsistencyLevel::Serializable
        );
        assert_eq!(
            p.consistency_of("add_person").level,
            crate::facets::ConsistencyLevel::Eventual
        );
    }

    #[test]
    fn cart_checkout_seals_when_manifest_matches() {
        let mut app = Transducer::new(cart_program()).unwrap();
        app.enqueue_ok("add_item", vec![Value::from("s1"), Value::from("apple")]);
        app.enqueue_ok("add_item", vec![Value::from("s1"), Value::from("pear")]);
        app.tick().unwrap();

        let manifest = Value::set_of([Value::from("apple"), Value::from("pear")]);
        app.enqueue_ok("checkout", vec![Value::from("s1"), manifest.clone()]);
        let out = app.tick().unwrap();
        assert!(out.sends.iter().any(|s| s.mailbox == "checkout_ok"));

        // A manifest the replica hasn't caught up to waits instead.
        let bigger = Value::set_of([
            Value::from("apple"),
            Value::from("pear"),
            Value::from("plum"),
        ]);
        app.enqueue_ok("checkout", vec![Value::from("s1"), bigger]);
        let out2 = app.tick().unwrap();
        assert!(out2.sends.iter().any(|s| s.mailbox == "checkout_wait"));
    }
}
