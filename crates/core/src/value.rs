//! The dynamic value model of the HydroLogic IR.
//!
//! HydroLogic programs are data: they are constructed, analyzed, lowered and
//! deployed at runtime. Their values therefore use a self-describing
//! [`Value`] enum rather than Rust generics; the statically-typed lattice
//! layer (`hydro-lattice`) sits underneath, and [`LatticeKind`] names which
//! lattice discipline governs a given variable or column so that `merge`
//! mutations (§3.1) have well-defined, ACI semantics over `Value`s.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A dynamically typed HydroLogic value.
///
/// `Value` is totally ordered (derive `Ord`) so values can live in sets and
/// serve as keys; the ordering is structural and has no semantic meaning
/// beyond determinism.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Absent/unit value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (HydroLogic's only numeric type; targets-facet money
    /// is expressed in integer milli-units to stay `Eq`).
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Fixed-arity tuple.
    Tuple(Vec<Value>),
    /// Set of values.
    Set(BTreeSet<Value>),
    /// String-keyed map.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// The conventional "OK" status value returned by handlers (Fig. 3).
    pub fn ok() -> Value {
        Value::Str("OK".to_string())
    }

    /// An empty set.
    pub fn empty_set() -> Value {
        Value::Set(BTreeSet::new())
    }

    /// Build a set from values.
    pub fn set_of(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// Build a tuple from values.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Tuple(items.into_iter().collect())
    }

    /// Read as integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Read as boolean. Integers are *not* coerced.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Read as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Read as set.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Read as tuple.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Truthiness for guards: `Bool(b)` is `b`; everything else is an error
    /// surfaced by the evaluator, so this returns `Option`.
    pub fn truthy(&self) -> Option<bool> {
        self.as_bool()
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// The lattice discipline governing a mergeable variable or column.
///
/// This is the IR-level counterpart of the typed lattices in
/// `hydro-lattice`; the monotonicity typechecker (in `hydro-analysis`)
/// treats a `merge` into any of these as a monotone mutation, and the
/// runtime enforces the corresponding join when applying end-of-tick
/// effects.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LatticeKind {
    /// `Max` over integers.
    MaxInt,
    /// `Min` over integers (dual order: numerically smaller is "bigger").
    MinInt,
    /// Boolean-or (a.k.a. `Max<bool>`): one-way flags like `covid`.
    BoolOr,
    /// Grow-only set union.
    SetUnion,
    /// Map union with a uniform value lattice.
    MapUnion(Box<LatticeKind>),
    /// Last-writer-wins register encoded as `Tuple[ts, writer, value]`.
    Lww,
    /// Grow-only counter encoded as `Map<writer, Int>`; read = sum.
    GCounter,
}

/// Errors from dynamic lattice operations over [`Value`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LatticeValueError {
    /// The value's shape does not match the declared lattice kind.
    Shape {
        /// The lattice kind expected.
        kind: LatticeKind,
        /// Rendering of the offending value.
        value: String,
    },
}

impl std::fmt::Display for LatticeValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatticeValueError::Shape { kind, value } => {
                write!(f, "value {value} does not inhabit lattice {kind:?}")
            }
        }
    }
}

impl std::error::Error for LatticeValueError {}

impl LatticeKind {
    /// The bottom element of this lattice, used to initialize declared
    /// variables and freshly inserted lattice columns.
    pub fn bottom(&self) -> Value {
        match self {
            LatticeKind::MaxInt => Value::Int(i64::MIN),
            LatticeKind::MinInt => Value::Int(i64::MAX),
            LatticeKind::BoolOr => Value::Bool(false),
            LatticeKind::SetUnion => Value::empty_set(),
            LatticeKind::MapUnion(_) | LatticeKind::GCounter => Value::Map(BTreeMap::new()),
            LatticeKind::Lww => Value::Tuple(vec![Value::Int(i64::MIN), Value::Int(0), Value::Null]),
        }
    }

    fn shape_err(&self, v: &Value) -> LatticeValueError {
        LatticeValueError::Shape {
            kind: self.clone(),
            value: format!("{v:?}"),
        }
    }

    /// Merge `delta` into `target` under this lattice; returns whether
    /// `target` changed. This is the dynamic mirror of
    /// [`hydro_lattice::Lattice::merge`] and obeys the same ACI laws
    /// (property-tested below and in `hydro-analysis`).
    pub fn merge(&self, target: &mut Value, delta: Value) -> Result<bool, LatticeValueError> {
        match self {
            LatticeKind::MaxInt => {
                let (Value::Int(t), Value::Int(d)) = (&mut *target, &delta) else {
                    return Err(self.shape_err(target));
                };
                if d > t {
                    *t = *d;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            LatticeKind::MinInt => {
                let (Value::Int(t), Value::Int(d)) = (&mut *target, &delta) else {
                    return Err(self.shape_err(target));
                };
                if d < t {
                    *t = *d;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            LatticeKind::BoolOr => {
                let (Value::Bool(t), Value::Bool(d)) = (&mut *target, &delta) else {
                    return Err(self.shape_err(target));
                };
                if *d && !*t {
                    *t = true;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            LatticeKind::SetUnion => {
                let Value::Set(t) = target else {
                    return Err(self.shape_err(target));
                };
                // A non-set delta is treated as a singleton insertion, which
                // is the common `s.merge(x)` idiom of Fig. 3.
                match delta {
                    Value::Set(d) => {
                        let mut changed = false;
                        for v in d {
                            changed |= t.insert(v);
                        }
                        Ok(changed)
                    }
                    other => Ok(t.insert(other)),
                }
            }
            LatticeKind::MapUnion(inner) => {
                let Value::Map(t) = target else {
                    return Err(self.shape_err(target));
                };
                let Value::Map(d) = delta else {
                    return Err(self.shape_err(&delta));
                };
                let mut changed = false;
                for (k, v) in d {
                    match t.entry(k) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(v);
                            changed = true;
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            changed |= inner.merge(e.get_mut(), v)?;
                        }
                    }
                }
                Ok(changed)
            }
            LatticeKind::GCounter => {
                LatticeKind::MapUnion(Box::new(LatticeKind::MaxInt)).merge(target, delta)
            }
            LatticeKind::Lww => {
                let (Some(t), Some(d)) = (target.as_tuple(), delta.as_tuple()) else {
                    return Err(self.shape_err(target));
                };
                if t.len() != 3 || d.len() != 3 {
                    return Err(self.shape_err(target));
                }
                // Compare (ts, writer) lexicographically; bigger stamp wins.
                let t_stamp = (t[0].clone(), t[1].clone());
                let d_stamp = (d[0].clone(), d[1].clone());
                if d_stamp > t_stamp {
                    *target = delta;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// The observable reading of a lattice value (e.g. a `GCounter` map
    /// reads as the sum of its slots).
    pub fn read(&self, v: &Value) -> Value {
        match (self, v) {
            (LatticeKind::GCounter, Value::Map(m)) => {
                Value::Int(m.values().filter_map(Value::as_int).sum())
            }
            (LatticeKind::Lww, Value::Tuple(t)) if t.len() == 3 => t[2].clone(),
            _ => v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bottoms_are_identities() {
        for kind in [
            LatticeKind::MaxInt,
            LatticeKind::BoolOr,
            LatticeKind::SetUnion,
            LatticeKind::GCounter,
        ] {
            let mut b = kind.bottom();
            let before = b.clone();
            assert!(!kind.merge(&mut b, before.clone()).unwrap());
            assert_eq!(b, before);
        }
    }

    #[test]
    fn set_merge_accepts_singletons() {
        let mut s = Value::empty_set();
        assert!(LatticeKind::SetUnion.merge(&mut s, Value::Int(3)).unwrap());
        assert!(!LatticeKind::SetUnion.merge(&mut s, Value::Int(3)).unwrap());
        assert_eq!(s, Value::set_of([Value::Int(3)]));
    }

    #[test]
    fn lww_bigger_stamp_wins() {
        let mut r = LatticeKind::Lww.bottom();
        let w1 = Value::tuple([Value::Int(5), Value::Int(1), Value::from("a")]);
        let w2 = Value::tuple([Value::Int(5), Value::Int(2), Value::from("b")]);
        LatticeKind::Lww.merge(&mut r, w1).unwrap();
        LatticeKind::Lww.merge(&mut r, w2).unwrap();
        assert_eq!(LatticeKind::Lww.read(&r), Value::from("b"));
    }

    #[test]
    fn gcounter_reads_as_sum() {
        let mut c = LatticeKind::GCounter.bottom();
        let delta = Value::Map(
            [("1".to_string(), Value::Int(4)), ("2".to_string(), Value::Int(2))]
                .into_iter()
                .collect(),
        );
        LatticeKind::GCounter.merge(&mut c, delta.clone()).unwrap();
        LatticeKind::GCounter.merge(&mut c, delta).unwrap(); // redelivery
        assert_eq!(LatticeKind::GCounter.read(&c), Value::Int(6));
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut b = Value::Bool(false);
        let err = LatticeKind::MaxInt.merge(&mut b, Value::Int(1));
        assert!(err.is_err());
    }

    fn arb_set() -> impl Strategy<Value = Value> {
        proptest::collection::btree_set(0i64..20, 0..8)
            .prop_map(|s| Value::Set(s.into_iter().map(Value::Int).collect()))
    }

    proptest! {
        #[test]
        fn dynamic_set_lattice_is_aci(a in arb_set(), b in arb_set(), c in arb_set()) {
            let k = LatticeKind::SetUnion;
            // associativity & commutativity via both groupings
            let mut ab_c = a.clone();
            k.merge(&mut ab_c, b.clone()).unwrap();
            k.merge(&mut ab_c, c.clone()).unwrap();
            let mut bc = b.clone();
            k.merge(&mut bc, c.clone()).unwrap();
            let mut a_bc = a.clone();
            k.merge(&mut a_bc, bc).unwrap();
            prop_assert_eq!(&ab_c, &a_bc);
            // idempotence
            let mut aa = a.clone();
            prop_assert!(!k.merge(&mut aa, a.clone()).unwrap());
            prop_assert_eq!(&aa, &a);
        }

        #[test]
        fn dynamic_maxint_is_aci(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
            let k = LatticeKind::MaxInt;
            let (a, b, c) = (Value::Int(a.into()), Value::Int(b.into()), Value::Int(c.into()));
            let mut x = a.clone();
            k.merge(&mut x, b.clone()).unwrap();
            k.merge(&mut x, c.clone()).unwrap();
            let mut y = b;
            k.merge(&mut y, c).unwrap();
            k.merge(&mut y, a).unwrap();
            prop_assert_eq!(x, y);
        }
    }
}
