//! The transducer interpreter: HydroLogic's event loop (§3.1).
//!
//! Each [`Transducer::tick`]:
//!
//! 1. reveals the tick's inputs: in the default incremental mode
//!    ([`EvalMode::Incremental`]) the effects committed by the previous
//!    tick are folded into per-relation deltas that update a *persistent*
//!    materialized database in place (see [`crate::eval::EvalState`]);
//!    the fresh modes snapshot program state wholesale instead;
//! 2. brings every declared view up to date (stratified, to fixpoint;
//!    see [`crate::eval`]) — incrementally from the deltas, or by full
//!    re-derivation in the fresh modes;
//! 3. runs handlers over their mailboxes — message handlers once per
//!    pending message, condition handlers once if their guard holds —
//!    *reading only the snapshot* and recording mutations/sends as effects;
//! 4. applies the recorded mutations atomically at end-of-tick; handlers
//!    never observe each other's writes within a tick, so "handlers do not
//!    experience race conditions within a tick" (§2.3);
//! 5. emits responses and asynchronous sends. Sends are *not* delivered
//!    locally: delivery timing belongs to the network (simulated with
//!    unbounded, nondeterministic delay in `hydro-deploy`), which is the
//!    only source of nondeterminism in the model.
//!
//! Handlers whose consistency facet declares invariants get *transactional*
//! per-message effect groups: a group that would violate an invariant is
//! rolled back and its message answered `ABORT`. On a single node this is
//! enough for serializability (ticks already execute sequentially);
//! distributed enforcement is synthesized in `hydro-deploy`.
//!
//! # The core / instance split
//!
//! A transducer is two halves with very different lifetimes:
//!
//! * [`ProgramCore`] — the **immutable, plan-time artifacts**: the
//!   validated [`Program`], every handler's slot-compiled body
//!   ([`CompiledHandler`]: `CStmt`s, frame layouts, invariant key slots),
//!   and the compiled evaluation plan (`eval::ProgramPlan`: stratification,
//!   SCC evaluation units, delta-variant tables, probe layouts). It is
//!   built once by [`ProgramCore::new`] and shared behind an `Arc`.
//! * [`Transducer`] — the **per-instance mutable half**: [`State`]
//!   (tables + scalars), mailboxes, the persistent incremental
//!   [`EvalState`], the effect journal, message-id and tick counters, and
//!   the UDF host.
//!
//! Any number of instances — replicas in `hydro-deploy`, the shards of a
//! [`crate::shard::ShardedTransducer`], differential-test twins — run off
//! one `ProgramCore` via [`Transducer::from_core`], paying compilation
//! once and sharing the read-only plan. [`Transducer::new`] remains the
//! single-instance convenience (compile + instantiate).

use crate::ast::{
    response_mailbox, AssignTarget, ColumnKind, Handler, MergeTarget, Program, Stmt, Trigger,
};
use crate::eval::{
    build_key_indexes, eval_cexpr, eval_cselect, evaluate_views, CExpr, CSelect, Database,
    EvalError, EvalState, Frame, ProgramPlan, RelDelta, Relation, Row, SlotCompiler, UdfHost,
};
use crate::facets::Invariant;
use crate::value::Value;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A message waiting in a mailbox.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Unique id assigned at enqueue time (drives response correlation).
    pub id: u64,
    /// Payload row.
    pub row: Row,
}

/// A handler's reply to a specific message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Responding handler.
    pub handler: String,
    /// The message being answered.
    pub message_id: u64,
    /// Reply payload.
    pub value: Value,
}

/// An asynchronous send emitted by a tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendOut {
    /// Destination mailbox (may be another node's handler, a declared
    /// mailbox, or an external endpoint like `alert`).
    pub mailbox: String,
    /// Payload row.
    pub row: Row,
    /// Send provenance: the handler that produced this send. Together
    /// with [`SendOut::source_msg`] this identifies the producing
    /// invocation, which is what lets a sharded driver merge per-shard
    /// send streams back into the exact single-node emission order.
    pub handler: String,
    /// The id of the message the producing invocation was handling, or 0
    /// for condition-triggered handlers (message ids start at 1).
    pub source_msg: u64,
}

/// Everything a tick produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TickOutput {
    /// Per-message handler replies.
    pub responses: Vec<Response>,
    /// Asynchronous sends (undelivered; routing is the deployment's job).
    pub sends: Vec<SendOut>,
    /// Non-fatal runtime warnings (e.g. merge into a missing row).
    pub warnings: Vec<String>,
    /// Number of messages consumed this tick.
    pub messages_processed: usize,
}

/// Validation / runtime errors from the transducer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransducerError {
    /// Query or expression evaluation failed.
    Eval(EvalError),
    /// A merge targeted a non-lattice scalar or column.
    NotMergeable(String),
    /// A statement referenced an unknown name.
    Unknown(String),
    /// An insert's value count disagrees with the table arity.
    InsertArity {
        /// Table name.
        table: String,
        /// Values provided.
        given: usize,
        /// Columns declared.
        expected: usize,
    },
    /// Enqueue targeted a mailbox that is neither a handler nor declared.
    NoSuchMailbox(String),
    /// A merge or assignment targeted a key column. Key columns identify
    /// the row — rewriting one in place would detach the row from its
    /// storage key (and make keyed reads engine-dependent); delete and
    /// re-insert instead.
    KeyColumn {
        /// Table name.
        table: String,
        /// Key column name.
        column: String,
    },
}

impl From<EvalError> for TransducerError {
    fn from(e: EvalError) -> Self {
        TransducerError::Eval(e)
    }
}

impl std::fmt::Display for TransducerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransducerError::Eval(e) => write!(f, "evaluation error: {e}"),
            TransducerError::NotMergeable(t) => {
                write!(f, "merge into non-lattice target {t:?} (use assignment)")
            }
            TransducerError::Unknown(n) => write!(f, "unknown name {n:?}"),
            TransducerError::InsertArity {
                table,
                given,
                expected,
            } => write!(
                f,
                "insert into {table:?} has {given} values, table has {expected} columns"
            ),
            TransducerError::NoSuchMailbox(m) => write!(f, "no such mailbox {m:?}"),
            TransducerError::KeyColumn { table, column } => write!(
                f,
                "cannot write key column {column:?} of table {table:?} in place \
                 (delete and re-insert the row instead)"
            ),
        }
    }
}

impl std::error::Error for TransducerError {}

/// A deferred state mutation, tagged with its effect group (handler
/// invocation) for transactional invariant enforcement.
#[derive(Clone, Debug)]
enum Effect {
    MergeScalar(String, Value),
    AssignScalar(String, Value),
    MergeField {
        table: String,
        key: Row,
        col: usize,
        value: Value,
    },
    AssignField {
        table: String,
        key: Row,
        col: usize,
        value: Value,
    },
    InsertRow {
        table: String,
        row: Row,
    },
    DeleteRow {
        table: String,
        key: Row,
    },
    ClearMailbox(String),
}

/// Tables a set of effects writes (the scope of end-of-tick FD checks).
fn touched_tables(effects: &[Effect]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for e in effects {
        match e {
            Effect::MergeField { table, .. }
            | Effect::AssignField { table, .. }
            | Effect::InsertRow { table, .. }
            | Effect::DeleteRow { table, .. } => {
                out.insert(table.clone());
            }
            Effect::MergeScalar(..) | Effect::AssignScalar(..) | Effect::ClearMailbox(..) => {}
        }
    }
    out
}

/// One handler invocation's worth of effects plus its invariants.
struct EffectGroup {
    handler: String,
    message_id: Option<u64>,
    effects: Vec<Effect>,
    invariants: Vec<Invariant>,
    /// Invariant parameter values (e.g. `HasKey.key_param`) captured at
    /// group creation, one per invariant (`Null` where the invariant takes
    /// no parameter or the name was unbound) — the slot-frame replacement
    /// for cloning the whole bindings map per group.
    inv_keys: Vec<Value>,
    /// The contiguous range of `TickOutput::responses` this group's
    /// execution produced, so a rollback rewrites exactly its optimistic
    /// replies instead of scanning every response of the tick.
    resp_range: std::ops::Range<usize>,
}

// ---------------------------------------------------------------------------
// Compiled handlers: slot-resolved statements over a reusable frame.
// ---------------------------------------------------------------------------

/// Slot-compiled mirror of [`MergeTarget`].
enum CMergeTarget {
    /// Merge into a lattice scalar.
    Scalar(String),
    /// Merge into a lattice column of the row keyed by `key`.
    TableField {
        /// Table name.
        table: String,
        /// Key expression.
        key: CExpr,
        /// Column name (resolved per execution, like the reference — an
        /// unknown column only errors if the statement runs).
        field: String,
    },
}

/// Slot-compiled mirror of [`AssignTarget`].
enum CAssignTarget {
    /// Assign a bare scalar.
    Scalar(String),
    /// Overwrite a column of the row keyed by `key`.
    TableField {
        /// Table name.
        table: String,
        /// Key expression.
        key: CExpr,
        /// Column name.
        field: String,
    },
}

/// Slot-compiled mirror of [`Stmt`]: every variable reference resolves
/// through the handler's frame; names survive only where resolution is
/// deliberately dynamic (tables, columns, scalars, mailboxes, UDFs).
enum CStmt {
    /// Deferred lattice merge.
    Merge(CMergeTarget, CExpr),
    /// Deferred assignment.
    Assign(CAssignTarget, CExpr),
    /// Deferred row insert.
    Insert {
        /// Table name.
        table: String,
        /// Row expressions.
        values: Vec<CExpr>,
    },
    /// Deferred row delete.
    Delete {
        /// Table name.
        table: String,
        /// Key expression.
        key: CExpr,
    },
    /// Asynchronous send of each projected row.
    Send {
        /// Destination mailbox.
        mailbox: String,
        /// Rows to send.
        select: CSelect,
    },
    /// Respond to the message being handled.
    Return(CExpr),
    /// Conditional execution.
    If {
        /// Condition.
        cond: CExpr,
        /// Statements when true.
        then: Vec<CStmt>,
        /// Statements when false.
        els: Vec<CStmt>,
    },
    /// Execute statements once per comprehension match. The select's
    /// projection is the comprehension's bindable variables (matching the
    /// reference's `collect_bound_vars` projection exactly); each match
    /// row is spread into `vars` slots — saving priors, restoring after —
    /// instead of cloning a bindings map per match.
    ForEach {
        /// Comprehension whose projection is `vars`.
        select: CSelect,
        /// Slots the projection binds, positionally.
        vars: Vec<u32>,
        /// Statements run under each binding.
        stmts: Vec<CStmt>,
    },
    /// Clear a declared mailbox at end-of-tick.
    ClearMailbox(String),
}

/// A handler compiled once at [`Transducer::new`]: body statements with
/// every variable resolved to a dense slot of one per-invocation frame.
/// Executing a message costs indexed slot stores (params, `__msg_id`) and
/// zero string hashing on the statement/select hot path.
struct CompiledHandler {
    /// Slot → variable name (for `UnboundVar` rendering; its length is the
    /// frame size).
    names: Vec<String>,
    /// One slot per handler parameter, positionally.
    param_slots: Vec<u32>,
    /// Slot of the implicit `__msg_id` binding.
    msg_id_slot: u32,
    /// Compiled condition (condition-triggered handlers only).
    cond: Option<CExpr>,
    /// Compiled body.
    body: Vec<CStmt>,
    /// Per invariant: the slot of its key parameter, if the name resolves
    /// (`HasKey` invariants; `None` reads as `Null`, like the reference's
    /// missing-binding lookup).
    inv_key_slots: Vec<Option<u32>>,
}

impl CompiledHandler {
    fn compile(handler: &Handler, invariants: &[Invariant]) -> Self {
        let mut sc = SlotCompiler::new();
        let param_slots: Vec<u32> = handler.params.iter().map(|p| sc.slot(p)).collect();
        let msg_id_slot = sc.slot("__msg_id");
        // Message handlers enter their body with params + `__msg_id`
        // bound; condition handlers enter with nothing bound (their
        // condition and body read only the snapshot), exactly like the
        // reference's empty bindings map.
        let cond = match &handler.trigger {
            Trigger::OnMessage => {
                for &s in &param_slots {
                    sc.mark_bound(s);
                }
                sc.mark_bound(msg_id_slot);
                None
            }
            Trigger::OnCondition(c) => Some(sc.compile_expr(c)),
        };
        let body = compile_stmts(&handler.body, &mut sc);
        let inv_key_slots = invariants
            .iter()
            .map(|inv| match inv {
                Invariant::HasKey { key_param, .. } => sc.lookup(key_param),
                _ => None,
            })
            .collect();
        CompiledHandler {
            param_slots,
            msg_id_slot,
            cond,
            body,
            inv_key_slots,
            names: sc.into_names(),
        }
    }

    /// Capture the invariant parameter values for a new effect group.
    fn capture_inv_keys(&self, frame: &Frame) -> Vec<Value> {
        self.inv_key_slots
            .iter()
            .map(|s| match s {
                Some(s) => frame.get(*s).cloned().unwrap_or(Value::Null),
                None => Value::Null,
            })
            .collect()
    }
}

/// Compile a statement list against the current boundness scope.
fn compile_stmts(stmts: &[Stmt], sc: &mut SlotCompiler) -> Vec<CStmt> {
    stmts
        .iter()
        .map(|stmt| match stmt {
            Stmt::Merge(target, expr) => {
                let value = sc.compile_expr(expr);
                let target = match target {
                    MergeTarget::Scalar(name) => CMergeTarget::Scalar(name.clone()),
                    MergeTarget::TableField { table, key, field } => CMergeTarget::TableField {
                        table: table.clone(),
                        key: sc.compile_expr(key),
                        field: field.clone(),
                    },
                };
                CStmt::Merge(target, value)
            }
            Stmt::Assign(target, expr) => {
                let value = sc.compile_expr(expr);
                let target = match target {
                    AssignTarget::Scalar(name) => CAssignTarget::Scalar(name.clone()),
                    AssignTarget::TableField { table, key, field } => CAssignTarget::TableField {
                        table: table.clone(),
                        key: sc.compile_expr(key),
                        field: field.clone(),
                    },
                };
                CStmt::Assign(target, value)
            }
            Stmt::Insert { table, values } => CStmt::Insert {
                table: table.clone(),
                values: values.iter().map(|e| sc.compile_expr(e)).collect(),
            },
            Stmt::Delete { table, key } => CStmt::Delete {
                table: table.clone(),
                key: sc.compile_expr(key),
            },
            Stmt::Send { mailbox, select } => {
                let (cselect, introduced) = sc.compile_select(select);
                sc.unmark(&introduced);
                CStmt::Send {
                    mailbox: mailbox.clone(),
                    select: cselect,
                }
            }
            Stmt::Return(expr) => CStmt::Return(sc.compile_expr(expr)),
            Stmt::If { cond, then, els } => CStmt::If {
                cond: sc.compile_expr(cond),
                then: compile_stmts(then, sc),
                els: compile_stmts(els, sc),
            },
            Stmt::ForEach { select, stmts } => {
                // Compile the body first (allocating/binding its slots),
                // then project every bindable variable of the body — the
                // same set, in the same order, as the reference's
                // `collect_bound_vars` projection.
                let (cbody, introduced) = sc.compile_body(&select.body);
                let mut vars: Vec<String> = Vec::new();
                collect_bound_vars(&select.body, &mut vars);
                let var_slots: Vec<u32> = vars.iter().map(|v| sc.slot(v)).collect();
                let projection: Vec<CExpr> =
                    var_slots.iter().map(|&s| CExpr::Var(s)).collect();
                // Nested statements run under the select's scope (base
                // bindings plus everything the body introduced); the
                // scope closes after them.
                let stmts = compile_stmts(stmts, sc);
                sc.unmark(&introduced);
                CStmt::ForEach {
                    select: CSelect {
                        body: cbody,
                        projection,
                    },
                    vars: var_slots,
                    stmts,
                }
            }
            Stmt::ClearMailbox(name) => CStmt::ClearMailbox(name.clone()),
        })
        .collect()
}

/// Mutable program state: keyed tables and scalars.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct State {
    /// Table name → key → row. `BTreeMap` gives deterministic iteration.
    pub tables: BTreeMap<String, BTreeMap<Row, Row>>,
    /// Scalar name → value.
    pub scalars: BTreeMap<String, Value>,
}

/// Hash-map mirrors of the parts of [`State`] that *serialized* handlers
/// read mid-tick (table key indexes and scalars). Built at most once per
/// **transducer** — on the first serialized message, by cloning the
/// tick-start snapshot — then kept on [`Transducer::serial_mirror`] and
/// maintained incrementally as each effect commits (serialized *and*
/// deferred), instead of re-snapshotting the whole state per tick. The
/// one-time clone costs O(resident state); every subsequent tick pays
/// only O(effects), which is what lets serialized handlers serve
/// million-key tables at micro-batch granularity.
#[derive(Clone, Default)]
struct TickMirror {
    key_index: FxHashMap<String, FxHashMap<Row, Row>>,
    scalars: FxHashMap<String, Value>,
}

impl TickMirror {
    /// Re-mirror one table row (or its absence) after an effect landed.
    fn refresh_row(&mut self, state: &State, table: &str, key: &Row) {
        let slot = self.key_index.entry(table.to_string()).or_default();
        match state.tables.get(table).and_then(|t| t.get(key)) {
            Some(row) => {
                slot.insert(key.clone(), row.clone());
            }
            None => {
                slot.remove(key);
            }
        }
    }
}

/// Which evaluation engine a transducer's ticks use. Semantics are
/// identical across all three (the differential suites enforce it); only
/// cost differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Cross-tick incremental view maintenance (the default): persistent
    /// materialized views and scan indexes, delta-driven ticks. See
    /// [`EvalState`].
    #[default]
    Incremental,
    /// Re-derive every view from a fresh snapshot each tick with the
    /// semi-naive evaluator (the PR 1 path, kept as the incremental
    /// engine's differential reference and benchmark baseline).
    FreshSemiNaive,
    /// Re-derive with the original naive nested-loop evaluator.
    FreshNaive,
}

/// Journal of base-state changes made by committed effects since the last
/// incremental evaluation. Folded into per-relation [`RelDelta`]s at the
/// next tick start. Recording keeps *first-touch* originals and compares
/// them against the final state, so a transactional rollback naturally
/// folds to "no change".
///
/// The same note sites optionally feed a second, independently-drained
/// consumer: the **recovery journal** ([`JournalNotes`]), enabled by
/// [`Transducer::set_journaling`] and drained by
/// [`Transducer::take_journal_delta`] into replayable [`JournalDelta`]
/// records. The two consumers have separate lifecycles — the eval notes
/// are consumed every incremental tick, the recovery notes whenever the
/// host decides to emit a delta record — so each keeps its own
/// first-touch maps.
struct PendingDeltas {
    /// Whether eval notes are recorded at all — only the incremental
    /// engine reads them; the fresh modes would discard them unread, so
    /// they skip the per-effect clones entirely.
    enabled: bool,
    /// table → key → row as of the last evaluation (`None` = absent).
    tables: FxHashMap<String, FxHashMap<Row, Option<Row>>>,
    /// scalar → value as of the last evaluation.
    scalars: FxHashMap<String, Value>,
    /// Mailboxes whose queues changed (enqueue or drain).
    mailboxes: FxHashSet<String>,
    /// Recovery-journal notes (`None` = journaling off). Recorded
    /// regardless of `enabled`: the recovery journal tracks committed
    /// state for replay, whatever evaluation engine runs the ticks.
    journal: Option<JournalNotes>,
    /// Recycled per-table first-touch maps, shared by both consumers: the
    /// incremental tick's fold and [`Transducer::take_journal_delta`]
    /// drain their `tables` and return the emptied inner maps here, so a
    /// steady-state tick's delta recording allocates no fresh maps.
    table_pool: Vec<FxHashMap<Row, Option<Row>>>,
}

/// First-touch notes for the recovery journal, relative to the last
/// [`Transducer::take_journal_delta`] drain.
#[derive(Default)]
struct JournalNotes {
    tables: FxHashMap<String, FxHashMap<Row, Option<Row>>>,
    scalars: FxHashMap<String, Value>,
    mailboxes: FxHashSet<String>,
    /// Counters as of the last drain, so a drain can tell "nothing
    /// happened" apart from "a tick ran but changed no base state".
    last_next_msg_id: u64,
    last_tick_no: u64,
}

impl Default for PendingDeltas {
    fn default() -> Self {
        PendingDeltas {
            enabled: true,
            tables: FxHashMap::default(),
            scalars: FxHashMap::default(),
            mailboxes: FxHashSet::default(),
            journal: None,
            table_pool: Vec::new(),
        }
    }
}

impl PendingDeltas {
    fn clear(&mut self) {
        for (_, mut m) in self.tables.drain() {
            m.clear();
            self.table_pool.push(m);
        }
        self.scalars.clear();
        self.mailboxes.clear();
    }

    /// Record `old` as the first-touch original of `table[key]`, if this
    /// is indeed the first touch since the last evaluation.
    fn note_table(&mut self, table: &str, key: &Row, old: Option<&Row>) {
        if self.enabled {
            if !self.tables.contains_key(table) {
                let slot = self.table_pool.pop().unwrap_or_default();
                self.tables.insert(table.to_string(), slot);
            }
            let slot = self.tables.get_mut(table).expect("just inserted");
            if !slot.contains_key(key) {
                slot.insert(key.clone(), old.cloned());
            }
        }
        if let Some(j) = &mut self.journal {
            if !j.tables.contains_key(table) {
                let slot = self.table_pool.pop().unwrap_or_default();
                j.tables.insert(table.to_string(), slot);
            }
            let slot = j.tables.get_mut(table).expect("just inserted");
            if !slot.contains_key(key) {
                slot.insert(key.clone(), old.cloned());
            }
        }
    }

    /// Record `old` as the first-touch original of a scalar.
    fn note_scalar(&mut self, name: &str, old: &Value) {
        if self.enabled && !self.scalars.contains_key(name) {
            self.scalars.insert(name.to_string(), old.clone());
        }
        if let Some(j) = &mut self.journal {
            if !j.scalars.contains_key(name) {
                j.scalars.insert(name.to_string(), old.clone());
            }
        }
    }

    /// Record that a mailbox's queue changed.
    fn note_mailbox(&mut self, name: &str) {
        if self.enabled {
            self.mailboxes.insert(name.to_string());
        }
        if let Some(j) = &mut self.journal {
            j.mailboxes.insert(name.to_string());
        }
    }
}

/// A point-in-time image of everything that defines a transducer's
/// replayable state: tables, scalars, mailbox queues (with message ids),
/// and the message-id / tick counters. [`Transducer::restore`] rebuilds a
/// replacement instance from one bit-identically — the evaluation state
/// is deliberately *not* captured; it rebuilds deterministically from the
/// restored base state on the next tick (the same path error recovery
/// uses).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Tables and scalars.
    pub state: State,
    /// Mailbox queues, ids included (in-flight requests survive replay).
    pub mailboxes: BTreeMap<String, Vec<Message>>,
    /// Message-id counter.
    pub next_msg_id: u64,
    /// Ticks executed.
    pub tick_no: u64,
}

impl Checkpoint {
    /// Fold one journaled delta into this image (deltas carry final
    /// values, so application is idempotent — replaying a record twice is
    /// harmless, replaying out of order is not).
    pub fn apply(&mut self, delta: &JournalDelta) {
        for (table, key, row) in &delta.tables {
            let slot = self.state.tables.entry(table.clone()).or_default();
            match row {
                Some(r) => {
                    slot.insert(key.clone(), r.clone());
                }
                None => {
                    slot.remove(key);
                }
            }
        }
        for (name, value) in &delta.scalars {
            self.state.scalars.insert(name.clone(), value.clone());
        }
        for (mailbox, queue) in &delta.mailboxes {
            self.mailboxes.insert(mailbox.clone(), queue.clone());
        }
        self.next_msg_id = delta.next_msg_id;
        self.tick_no = delta.tick_no;
    }
}

/// One committed recovery-journal record: every table key, scalar and
/// mailbox whose value changed since the previous record was drained,
/// with its **final** value (not the mutation) — so records are
/// idempotent to re-apply and fold trivially into a [`Checkpoint`].
/// Entries are sorted by name/key, so identical histories yield identical
/// records byte-for-byte.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournalDelta {
    /// `(table, key, row)` — `None` = key now absent.
    pub tables: Vec<(String, Row, Option<Row>)>,
    /// `(scalar, value)`.
    pub scalars: Vec<(String, Value)>,
    /// `(mailbox, full queue now)` for every mailbox whose queue changed.
    pub mailboxes: Vec<(String, Vec<Message>)>,
    /// Message-id counter after this delta.
    pub next_msg_id: u64,
    /// Tick counter after this delta.
    pub tick_no: u64,
}

impl JournalDelta {
    /// Whether the record carries any change at all.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.scalars.is_empty() && self.mailboxes.is_empty()
    }
}

/// One tick's net changes to a shard's exchange-shipped tables:
/// `(table, [(key, final row — None = deleted)])`, sorted by table and
/// key. Like [`JournalDelta`], entries carry **final** values, so
/// application is idempotent; rolled-back transactions fold to "no
/// change" and never ship. Produced by [`Transducer::exchange_delta`] on
/// the owning shard after a tick, consumed by
/// [`Transducer::apply_exchange_delta`] on the gather shard before its
/// next tick — the delta-exchange operator's wire format.
pub type ExchangeDelta = Vec<(String, Vec<(Row, Option<Row>)>)>;

/// A replayable recovery log: a base [`Checkpoint`] plus the
/// [`JournalDelta`]s committed since. Appending folds the log into a
/// fresh base every `checkpoint_every` records (the checkpoint cadence),
/// bounding both replay work and retained memory; [`RecoveryLog::restore`]
/// rebuilds a replacement [`Transducer`] whose observable state —
/// tables, scalars, mailbox queues, counters — is bit-identical to the
/// instance the deltas were drained from.
#[derive(Clone, Debug)]
pub struct RecoveryLog {
    base: Checkpoint,
    deltas: Vec<JournalDelta>,
    checkpoint_every: usize,
}

impl RecoveryLog {
    /// A log rooted at `base`, compacting every `checkpoint_every`
    /// appended deltas (0 is treated as 1: compact on every append).
    pub fn new(base: Checkpoint, checkpoint_every: usize) -> Self {
        RecoveryLog {
            base,
            deltas: Vec::new(),
            checkpoint_every: checkpoint_every.max(1),
        }
    }

    /// Append one journaled delta, compacting at the checkpoint cadence.
    pub fn append(&mut self, delta: JournalDelta) {
        self.deltas.push(delta);
        if self.deltas.len() >= self.checkpoint_every {
            self.compact();
        }
    }

    /// Fold every retained delta into the base checkpoint now.
    pub fn compact(&mut self) {
        for d in self.deltas.drain(..) {
            self.base.apply(&d);
        }
    }

    /// Deltas appended since the last checkpoint fold.
    pub fn deltas_since_checkpoint(&self) -> usize {
        self.deltas.len()
    }

    /// The current image: base checkpoint plus retained deltas.
    pub fn image(&self) -> Checkpoint {
        let mut ck = self.base.clone();
        for d in &self.deltas {
            ck.apply(d);
        }
        ck
    }

    /// Replay the log into a replacement instance over `core` (UDFs must
    /// be re-registered by the caller — closures don't journal).
    pub fn restore(&self, core: Arc<ProgramCore>) -> Transducer {
        Transducer::restore(core, &self.image())
    }
}

/// The immutable, plan-time half of a transducer: the validated program,
/// its slot-compiled handlers, and the compiled evaluation plan. Built
/// once, shared behind an `Arc` by every instance that interprets the
/// same program — replicas, shards, differential twins (see the module
/// docs). Contains no mutable state, so sharing is free and thread-safe.
pub struct ProgramCore {
    program: Program,
    /// Handler bodies paired with their resolved consistency facets and
    /// their slot-compiled form (a tick borrows these off the `Arc`
    /// while holding `&mut` to the instance state).
    handlers: Vec<(Handler, crate::facets::ConsistencyReq, CompiledHandler)>,
    /// The compiled evaluation plan every instance's [`EvalState`] runs
    /// against.
    plan: Arc<ProgramPlan>,
}

impl ProgramCore {
    /// Validate and compile a program: stratification, SCC evaluation
    /// units, handler slot compilation. Unstratifiable programs are
    /// rejected here, so instantiation is infallible.
    pub fn new(program: Program) -> Result<Arc<Self>, TransducerError> {
        let plan = Arc::new(ProgramPlan::compile(&program)?);
        let handlers = program
            .handlers
            .iter()
            .map(|h| {
                let consistency = program.consistency_of(&h.name).clone();
                let compiled = CompiledHandler::compile(h, &consistency.invariants);
                (h.clone(), consistency, compiled)
            })
            .collect();
        Ok(Arc::new(ProgramCore {
            program,
            handlers,
            plan,
        }))
    }

    /// The program this core was compiled from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Whether `name` is a mailbox of this program (a handler's implicit
    /// mailbox or a declared handler-less one).
    pub fn has_mailbox(&self, name: &str) -> bool {
        self.program.handler(name).is_some()
            || self.program.mailboxes.iter().any(|m| m.name == name)
    }

    /// The static reorder-safety report computed when this core's plan
    /// was compiled (see [`crate::reorder`]).
    pub fn reorder(&self) -> &crate::reorder::ReorderReport {
        self.plan.reorder()
    }

    /// Whether plain rule `index` (into `Program::rules`) is proven
    /// reorder-safe — the per-rule license for join reordering, sideways
    /// information passing, and counting maintenance (ROADMAP item 3).
    pub fn rule_reorder_safe(&self, index: usize) -> bool {
        self.plan.rule_reorder_safe(index)
    }

    /// Whether aggregation rule `index` (into `Program::agg_rules`) is
    /// proven reorder-safe.
    pub fn agg_reorder_safe(&self, index: usize) -> bool {
        self.plan.agg_reorder_safe(index)
    }
}

// The parallel shard driver shares one `Arc<ProgramCore>` across worker
// threads; keep that capability from silently regressing (e.g. an `Rc`
// or `RefCell` creeping into the compiled plan).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProgramCore>();
    assert_send_sync::<State>();
    assert_send_sync::<TickOutput>();
    assert_send_sync::<Checkpoint>();
    assert_send_sync::<TransducerError>();
};

/// The HydroLogic interpreter for one logical node: the per-instance
/// mutable half ([`State`], mailboxes, journal, evaluation state, UDFs)
/// over a shared [`ProgramCore`].
pub struct Transducer {
    core: Arc<ProgramCore>,
    state: State,
    mailboxes: BTreeMap<String, Vec<Message>>,
    udfs: UdfHost,
    next_msg_id: u64,
    tick_no: u64,
    eval_mode: EvalMode,
    /// Persistent incremental evaluation state (`None` until the first
    /// incremental tick, and dropped on evaluation error or mode switch —
    /// the next incremental tick rebuilds it from `state`).
    eval: Option<EvalState>,
    /// Base-state changes since the last incremental evaluation.
    pending: PendingDeltas,
    /// Whether condition-triggered handlers run on this instance. Shards
    /// other than shard 0 of a [`crate::shard::ShardedTransducer`] disable
    /// them: condition handlers read global state, which the partition
    /// analysis pins to shard 0 — letting every shard evaluate the
    /// condition against its slice would fire the handler once per shard.
    run_condition_handlers: bool,
    /// Tables whose per-tick net changes this instance exports as
    /// [`ExchangeDelta`]s (the *sender* half of the delta-exchange
    /// operator; empty outside exchange-configured shard drivers).
    exchange_tables: std::collections::BTreeSet<String>,
    /// Foreign rows received via [`Transducer::apply_exchange_delta`]
    /// (the *receiver* half): a persistent per-table mirror of other
    /// shards' partitions, keyed like [`State::tables`]. Disjoint from
    /// the local partition by construction (hash routing), merged into
    /// every snapshot and evaluation-state rebuild.
    foreign: BTreeMap<String, BTreeMap<Row, Row>>,
    /// Foreign-row transitions received since the last tick, folded into
    /// the incremental engine's deltas at the next tick (last-wins per
    /// key, exactly like the local journal's first-touch fold).
    exchange_in: FxHashMap<String, FxHashMap<Row, Option<Row>>>,
    /// View heads this instance must not evaluate (their inputs are
    /// shipped away to the gather shard instead). Installed into the
    /// evaluation state at rebuild.
    skip_view_heads: std::collections::BTreeSet<String>,
    /// Whether counting/DRed deletion maintenance is enabled (see
    /// [`EvalState::set_counting`]). On by default; off, retractions fall
    /// back to unit recompute — the differential reference.
    counting: bool,
    /// Persistent serialized-handler mirror (see [`TickMirror`]): built
    /// once — a clone of the key indexes and scalars on the first
    /// serialized message this instance ever runs — then maintained
    /// incrementally through every committed effect, including the
    /// deferred end-of-tick commits. Without persistence the serving hot
    /// path would re-clone the full key index every tick that carries a
    /// serialized message, a cost proportional to *resident state* (ruinous
    /// at millions of keys) rather than to the tick's batch. Dropped (and
    /// lazily rebuilt) when state changes outside the effect pipeline:
    /// exchange-received foreign rows and evaluation errors.
    serial_mirror: Option<TickMirror>,
}

impl Transducer {
    /// Validate a program and build its transducer: the single-instance
    /// convenience over [`ProgramCore::new`] + [`Transducer::from_core`].
    pub fn new(program: Program) -> Result<Self, TransducerError> {
        Ok(Self::from_core(ProgramCore::new(program)?))
    }

    /// Instantiate a fresh transducer (empty tables, initial scalars,
    /// empty mailboxes) over a shared, already-compiled core.
    pub fn from_core(core: Arc<ProgramCore>) -> Self {
        let program = &core.program;
        let mut state = State::default();
        for t in &program.tables {
            state.tables.insert(t.name.clone(), BTreeMap::new());
        }
        for s in &program.scalars {
            state.scalars.insert(s.name.clone(), s.init.clone());
        }
        let mut mailboxes = BTreeMap::new();
        for h in &program.handlers {
            mailboxes.insert(h.name.clone(), Vec::new());
        }
        for m in &program.mailboxes {
            mailboxes.insert(m.name.clone(), Vec::new());
        }
        Transducer {
            core,
            state,
            mailboxes,
            udfs: UdfHost::new(),
            next_msg_id: 1,
            tick_no: 0,
            eval_mode: EvalMode::default(),
            eval: None,
            pending: PendingDeltas::default(),
            run_condition_handlers: true,
            exchange_tables: std::collections::BTreeSet::new(),
            foreign: BTreeMap::new(),
            exchange_in: FxHashMap::default(),
            skip_view_heads: std::collections::BTreeSet::new(),
            counting: true,
            serial_mirror: None,
        }
    }

    /// The shared compiled core this instance runs on.
    pub fn core(&self) -> &Arc<ProgramCore> {
        &self.core
    }

    /// Enable or disable condition-triggered handlers on this instance
    /// (see [`ProgramCore`]'s sharding story; defaults to enabled).
    pub fn set_run_condition_handlers(&mut self, run: bool) {
        self.run_condition_handlers = run;
    }

    /// Select the evaluation engine (see [`EvalMode`]). Takes effect at
    /// the next tick; switching away from and back to incremental mode
    /// rebuilds the persistent state from scratch.
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.eval_mode = mode;
        self.pending.enabled = mode == EvalMode::Incremental;
    }

    /// Enable or disable counting/DRed deletion maintenance in the
    /// incremental engine (on by default). Off, every retraction falls
    /// back to unit-local recompute — the differential-testing reference
    /// and the E19 benchmark comparison point. Semantics are identical;
    /// only cost differs.
    pub fn set_counting(&mut self, on: bool) {
        self.counting = on;
        if let Some(eval) = &mut self.eval {
            eval.set_counting(on);
        }
    }

    /// Evaluate views with the retained naive reference evaluator instead
    /// of the default engine. For differential tests and the E1/E8
    /// before/after benchmarks; semantics are identical, only cost differs.
    pub fn set_naive_eval(&mut self, naive: bool) {
        self.set_eval_mode(if naive {
            EvalMode::FreshNaive
        } else {
            EvalMode::Incremental
        });
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.core.program
    }

    /// Register a UDF implementation.
    pub fn register_udf(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&[Value]) -> Value + 'static,
    ) {
        self.udfs.register(name, f);
    }

    /// Direct read access to current state (between ticks).
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Lifetime count of real (non-memoized) invocations of a UDF —
    /// observable evidence for the §3.1 "once per input per tick" contract.
    pub fn udf_invocations(&self, name: &str) -> u64 {
        self.udfs.invocation_count(name)
    }

    /// Read a scalar's current value.
    pub fn scalar(&self, name: &str) -> Option<&Value> {
        self.state.scalars.get(name)
    }

    /// Read a table row by key.
    pub fn row(&self, table: &str, key: &[Value]) -> Option<&Row> {
        self.state.tables.get(table)?.get(key)
    }

    /// Number of rows in a table.
    pub fn table_len(&self, table: &str) -> usize {
        self.state.tables.get(table).map_or(0, BTreeMap::len)
    }

    /// Ticks executed so far.
    pub fn tick_no(&self) -> u64 {
        self.tick_no
    }

    /// Messages currently pending in a mailbox.
    pub fn pending(&self, mailbox: &str) -> usize {
        self.mailboxes.get(mailbox).map_or(0, Vec::len)
    }

    /// Enqueue a message; returns its id. The message becomes visible at
    /// the *next* tick (it joins the snapshot then).
    pub fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError> {
        let q = self
            .mailboxes
            .get_mut(mailbox)
            .ok_or_else(|| TransducerError::NoSuchMailbox(mailbox.to_string()))?;
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        q.push(Message { id, row });
        self.pending.note_mailbox(mailbox);
        Ok(id)
    }

    /// Enqueue, panicking on unknown mailbox — for tests and examples.
    pub fn enqueue_ok(&mut self, mailbox: &str, row: Row) -> u64 {
        self.enqueue(mailbox, row).expect("known mailbox")
    }

    /// Enqueue a message under a caller-assigned id. Used by the sharded
    /// driver (and the deployment layer's journal replay), which owns the
    /// global id sequence so that responses across shards correlate
    /// exactly like a single transducer's would. The local counter is
    /// advanced past `id` so locally-assigned ids can never collide with
    /// driver-assigned ones.
    pub fn enqueue_with_id(
        &mut self,
        id: u64,
        mailbox: &str,
        row: Row,
    ) -> Result<(), TransducerError> {
        let q = self
            .mailboxes
            .get_mut(mailbox)
            .ok_or_else(|| TransducerError::NoSuchMailbox(mailbox.to_string()))?;
        q.push(Message { id, row });
        self.next_msg_id = self.next_msg_id.max(id + 1);
        self.pending.note_mailbox(mailbox);
        Ok(())
    }

    /// Total messages pending across all mailboxes.
    pub fn pending_total(&self) -> usize {
        self.mailboxes.values().map(Vec::len).sum()
    }

    // ---- delta exchange --------------------------------------------------

    /// Configure the tables whose per-tick net changes this instance
    /// exports via [`Transducer::exchange_delta`]. Exchange piggybacks on
    /// the incremental engine's effect journal, so it only functions in
    /// [`EvalMode::Incremental`] (the default). Used by the shard drivers
    /// for tables feeding `NeedsExchange` views.
    pub fn set_exchange_tables(
        &mut self,
        tables: impl IntoIterator<Item = String>,
    ) {
        self.exchange_tables = tables.into_iter().collect();
    }

    /// Configure view heads this instance must *not* evaluate: the
    /// exchange plan computes them on the gather shard from shipped
    /// deltas, so evaluating them here would derive partial (and wasted)
    /// results. Drops the persistent evaluation state; the next tick
    /// rebuilds it with the exclusion installed.
    pub fn set_skip_view_heads(&mut self, heads: impl IntoIterator<Item = String>) {
        self.skip_view_heads = heads.into_iter().collect();
        self.eval = None;
    }

    /// Export the last tick's net changes to the configured exchange
    /// tables, without consuming the underlying journal (the incremental
    /// engine still drains it at the next tick). Mirrors
    /// [`Transducer::take_journal_delta`]'s fold: first-touch originals
    /// against final state, rolled-back effects vanish, entries carry
    /// final values and are sorted — the same tick always exports the
    /// same bytes. Call between ticks, after the tick whose changes are
    /// being shipped.
    pub fn exchange_delta(&self) -> ExchangeDelta {
        debug_assert!(
            self.exchange_tables.is_empty() || self.eval_mode == EvalMode::Incremental,
            "delta exchange requires the incremental engine's journal"
        );
        let mut out = ExchangeDelta::new();
        for table in &self.exchange_tables {
            let Some(keys) = self.pending.tables.get(table) else {
                continue;
            };
            let current = self.state.tables.get(table);
            let mut rows: Vec<(Row, Option<Row>)> = Vec::new();
            for (key, old) in keys {
                let new = current.and_then(|t| t.get(key));
                if old.as_ref() == new {
                    continue; // rolled back / rewritten to the original
                }
                rows.push((key.clone(), new.cloned()));
            }
            if rows.is_empty() {
                continue;
            }
            rows.sort();
            out.push((table.clone(), rows));
        }
        out
    }

    /// Receive another shard's [`ExchangeDelta`]: update the persistent
    /// foreign mirror immediately (snapshots and rebuilds see it) and
    /// queue the transitions for the incremental engine's next delta
    /// fold. Last-wins per key, so applying several shards' deltas (or a
    /// retransmission of the same delta) before the next tick is safe —
    /// shard partitions are key-disjoint and entries are idempotent.
    pub fn apply_exchange_delta(&mut self, delta: ExchangeDelta) {
        // Foreign rows land in the key indexes that serialized handlers
        // read, but arrive outside the effect pipeline that maintains the
        // persistent mirror — drop it and let the next serialized message
        // re-clone. (Exchange-configured gather shards paid the per-tick
        // clone before this mirror persisted; they are no worse off.)
        self.serial_mirror = None;
        for (table, rows) in delta {
            // Exchange deltas ship *net* signed rows (`Some` = upsert,
            // `None` = retraction), sorted and key-unique by construction
            // in `exchange_delta` — the counting/DRed engine consumes the
            // fold directly, so a duplicated or unsorted key would
            // corrupt its support accounting. Assert the wire invariant.
            debug_assert!(
                rows.windows(2).all(|w| w[0].0 < w[1].0),
                "exchange delta rows must be sorted and key-unique"
            );
            let mirror = self.foreign.entry(table.clone()).or_default();
            let queued = self.exchange_in.entry(table).or_default();
            for (key, new) in rows {
                match &new {
                    Some(row) => {
                        mirror.insert(key.clone(), row.clone());
                    }
                    None => {
                        mirror.remove(&key);
                    }
                }
                queued.insert(key, new);
            }
        }
    }

    // ---- recovery journal ------------------------------------------------

    /// Enable or disable the recovery journal. While enabled, every
    /// committed base-state mutation (tables, scalars, mailbox queues) is
    /// noted first-touch, and [`Transducer::take_journal_delta`] drains
    /// the notes into replayable [`JournalDelta`] records. Off by default;
    /// independent of the evaluation mode.
    pub fn set_journaling(&mut self, on: bool) {
        if on {
            if self.pending.journal.is_none() {
                self.pending.journal = Some(JournalNotes {
                    last_next_msg_id: self.next_msg_id,
                    last_tick_no: self.tick_no,
                    ..JournalNotes::default()
                });
            }
        } else {
            self.pending.journal = None;
        }
    }

    /// Whether the recovery journal is currently recording.
    pub fn journaling(&self) -> bool {
        self.pending.journal.is_some()
    }

    /// Capture a full [`Checkpoint`] of the current replayable state.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            state: self.state.clone(),
            mailboxes: self.mailboxes.clone(),
            next_msg_id: self.next_msg_id,
            tick_no: self.tick_no,
        }
    }

    /// Drain the recovery journal into one [`JournalDelta`] covering every
    /// change since the previous drain (or since journaling was enabled).
    /// Returns `None` when journaling is off or literally nothing happened
    /// — no noted mutation and unchanged counters. Note that `tick_no`
    /// advances on every tick, so a live instance yields a (possibly
    /// state-empty) record per tick: the delta stream doubles as a
    /// liveness signal for whoever consumes it.
    ///
    /// Entries carry *final* values and are sorted, so the same history
    /// always drains to the same bytes.
    pub fn take_journal_delta(&mut self) -> Option<JournalDelta> {
        let j = self.pending.journal.as_mut()?;
        if j.tables.is_empty()
            && j.scalars.is_empty()
            && j.mailboxes.is_empty()
            && j.last_next_msg_id == self.next_msg_id
            && j.last_tick_no == self.tick_no
        {
            return None;
        }
        // Take the note maps out (releasing the `self.pending` borrow so
        // state lookups below can run), drain them rather than consuming
        // them, and hand the emptied maps back — the outer maps to the
        // journal, the per-table first-touch maps to the shared
        // `table_pool` — so a steady-state drain cycle allocates no fresh
        // maps (the serving loop drains once per micro-batch tick).
        let mut tables = std::mem::take(&mut j.tables);
        let mut scalars = std::mem::take(&mut j.scalars);
        let mut mailboxes = std::mem::take(&mut j.mailboxes);
        j.last_next_msg_id = self.next_msg_id;
        j.last_tick_no = self.tick_no;

        let mut delta = JournalDelta {
            next_msg_id: self.next_msg_id,
            tick_no: self.tick_no,
            ..JournalDelta::default()
        };
        for (table, mut keys) in tables.drain() {
            let current = self.state.tables.get(&table);
            for (key, old) in keys.drain() {
                let new = current.and_then(|t| t.get(&key));
                if old.as_ref() == new {
                    continue; // rolled back / rewritten to the original
                }
                delta.tables.push((table.clone(), key, new.cloned()));
            }
            self.pending.table_pool.push(keys);
        }
        delta.tables.sort();
        for (name, old) in scalars.drain() {
            let current = self.state.scalars.get(&name);
            if current == Some(&old) {
                continue;
            }
            if let Some(v) = current {
                delta.scalars.push((name, v.clone()));
            }
        }
        delta.scalars.sort();
        for m in mailboxes.drain() {
            let queue = self.mailboxes.get(&m).cloned().unwrap_or_default();
            delta.mailboxes.push((m, queue));
        }
        delta.mailboxes.sort_by(|a, b| a.0.cmp(&b.0));
        let j = self.pending.journal.as_mut().expect("journal still on");
        j.tables = tables;
        j.scalars = scalars;
        j.mailboxes = mailboxes;
        Some(delta)
    }

    /// Rebuild a replacement instance over `core` from a checkpoint image:
    /// [`Transducer::from_core`] with the captured tables, scalars,
    /// mailbox queues and counters installed. Evaluation state is rebuilt
    /// lazily from the restored base on the next tick, so the replacement
    /// is observably bit-identical to the checkpointed instance. UDFs must
    /// be re-registered by the caller (closures don't journal), and
    /// journaling starts off.
    pub fn restore(core: Arc<ProgramCore>, checkpoint: &Checkpoint) -> Transducer {
        let mut t = Transducer::from_core(core);
        t.state = checkpoint.state.clone();
        t.mailboxes = checkpoint.mailboxes.clone();
        t.next_msg_id = checkpoint.next_msg_id;
        t.tick_no = checkpoint.tick_no;
        t
    }

    /// Whether a mailbox exists on this transducer (handler or declared).
    pub fn has_mailbox(&self, name: &str) -> bool {
        self.mailboxes.contains_key(name)
    }

    /// Build the snapshot database: tables (local partition plus any
    /// exchange-received foreign mirror) + mailbox relations.
    fn snapshot_db(&self) -> Database {
        let mut db = Database::default();
        for (name, rows) in &self.state.tables {
            let foreign = self.foreign.get(name);
            db.insert(
                name.clone(),
                Relation::from_rows(
                    rows.values()
                        .cloned()
                        .chain(foreign.into_iter().flat_map(|f| f.values().cloned())),
                ),
            );
        }
        for (name, msgs) in &self.mailboxes {
            db.insert(
                name.clone(),
                Relation::from_rows(msgs.iter().map(|m| m.row.clone())),
            );
        }
        db
    }

    /// Execute one tick of the transducer loop.
    pub fn tick(&mut self) -> Result<TickOutput, TransducerError> {
        self.tick_no += 1;
        self.udfs.start_tick();
        match self.eval_mode {
            EvalMode::Incremental => self.tick_incremental(),
            EvalMode::FreshSemiNaive => self.tick_fresh(false),
            EvalMode::FreshNaive => self.tick_fresh(true),
        }
    }

    /// The fresh-per-tick paths: snapshot the whole state, re-derive every
    /// view, rebuild the key indexes. Kept as differential references and
    /// benchmark baselines for the incremental engine.
    fn tick_fresh(&mut self, naive: bool) -> Result<TickOutput, TransducerError> {
        // The journal only feeds the incremental engine; a fresh tick
        // re-reads everything, and any later switch back to incremental
        // mode rebuilds from state, so stale entries are dropped.
        self.pending.clear();
        self.eval = None;

        // 1–2: snapshot + views to fixpoint.
        let base = self.snapshot_db();
        let scalars: FxHashMap<String, Value> = self
            .state
            .scalars
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let db = if naive {
            crate::eval::evaluate_views_naive(&self.core.program, &base, &scalars, &mut self.udfs)?
        } else {
            evaluate_views(&self.core.program, &base, &scalars, &mut self.udfs)?
        };
        let key_index = build_key_indexes(&self.core.program, &base);
        self.run_handlers(&db, &scalars, &key_index)
    }

    /// The incremental path: fold the effect journal of the previous tick
    /// into per-relation deltas, maintain the persistent materialized
    /// views from them (see [`EvalState::evaluate`]), and run handlers
    /// against the persistent database. A no-op tick (empty journal)
    /// skips view evaluation entirely.
    fn tick_incremental(&mut self) -> Result<TickOutput, TransducerError> {
        let mut eval = match self.eval.take() {
            Some(e) => e,
            None => {
                self.pending.clear();
                self.rebuild_eval_state()?
            }
        };

        // Fold the journal into deltas. First-touch originals are compared
        // against final state, so rolled-back effects vanish here. The
        // three eval maps are drained individually — `pending.journal`
        // (the recovery journal) has its own drain cycle and must survive
        // the tick.
        // Scratch maps and deltas come from the evaluation state's
        // recycling pools (refilled after each evaluation), so this fold
        // allocates nothing in the steady state; the emptied first-touch
        // maps return to the journal's own pool the same way.
        let mut pending_tables = std::mem::take(&mut self.pending.tables);
        let pending_scalars = std::mem::take(&mut self.pending.scalars);
        let pending_mailboxes = std::mem::take(&mut self.pending.mailboxes);
        let mut changed: FxHashMap<String, RelDelta> = eval.take_changed_scratch();
        for (table, mut keys) in pending_tables.drain() {
            let current = self.state.tables.get(&table);
            let mut delta = eval.pooled_delta();
            let mut touched = false;
            for (key, old) in keys.drain() {
                let new = current.and_then(|t| t.get(&key));
                if old.as_ref() == new {
                    continue;
                }
                touched = true;
                eval.note_key_transition(&table, key, old, new, &mut delta);
            }
            self.pending.table_pool.push(keys);
            // A key transition can net to an *empty* row-set delta (two
            // keys holding identical rows), yet still change what keyed
            // expressions (`FieldOf`/`RowOf`/`HasKey`) observe — so any
            // touched table must be marked changed for the non-monotone
            // classification, not just tables whose row set moved.
            if touched {
                changed.insert(table, delta);
            } else {
                eval.recycle_delta(delta);
            }
        }
        self.pending.tables = pending_tables;
        // Fold exchange-received foreign transitions exactly like local
        // journal entries: previous foreign value looked up in the
        // persistent key index (shard partitions are key-disjoint, so a
        // foreign key can never collide with a local fold above), no-op
        // transitions skipped, deltas merged with any local delta for the
        // same table.
        for (table, keys) in std::mem::take(&mut self.exchange_in) {
            let locally_touched = changed.contains_key(&table);
            let mut delta = changed
                .remove(&table)
                .unwrap_or_else(|| eval.pooled_delta());
            let mut touched = locally_touched;
            for (key, new) in keys {
                let old = eval.key_index.get(&table).and_then(|t| t.get(&key)).cloned();
                if old.as_ref() == new.as_ref() {
                    continue;
                }
                touched = true;
                eval.note_key_transition(&table, key, old, new.as_ref(), &mut delta);
            }
            if touched {
                changed.insert(table, delta);
            } else {
                eval.recycle_delta(delta);
            }
        }
        for m in pending_mailboxes {
            // Diff the queue against the materialized mailbox relation
            // without materializing a cloned `Relation` first: membership
            // goes through borrowed-row hash sets, so a resident message
            // that didn't move costs a hash probe, never a row clone. A
            // mailbox whose queue and materialized relation are both
            // empty (enqueued and drained within one tick) is skipped
            // outright. Orders are preserved exactly as `RelDelta::diff`
            // produced them: removals in materialized insertion order,
            // additions in queue first-occurrence order.
            let queue: &[Message] = self.mailboxes.get(&m).map_or(&[], Vec::as_slice);
            if queue.is_empty() && eval.db.get(&m).is_none_or(Relation::is_empty) {
                continue;
            }
            let mut delta = eval.pooled_delta();
            let old = eval.db.get(&m);
            let queue_rows: FxHashSet<&Row> = queue.iter().map(|msg| &msg.row).collect();
            if let Some(old) = old {
                for row in old.iter() {
                    if !queue_rows.contains(row) {
                        delta.removed.push(row.clone());
                    }
                }
            }
            let mut seen: FxHashSet<&Row> = FxHashSet::default();
            for msg in queue {
                if seen.insert(&msg.row) && !old.is_some_and(|o| o.contains(&msg.row)) {
                    delta.added.push(msg.row.clone());
                }
            }
            if !delta.is_empty() {
                changed.insert(m, delta);
            } else {
                eval.recycle_delta(delta);
            }
        }
        let mut changed_scalars: FxHashSet<String> = FxHashSet::default();
        for (name, old) in pending_scalars {
            let current = self.state.scalars.get(&name);
            if current != Some(&old) {
                changed_scalars.insert(name.clone());
            }
            // Keep the persistent scalar snapshot in sync (journaled
            // scalars only — unchanged ones are already mirrored).
            match current {
                Some(v) => {
                    eval.scalars.insert(name, v.clone());
                }
                None => {
                    eval.scalars.remove(&name);
                }
            }
        }
        for (rel, delta) in &changed {
            eval.apply_base_delta(rel, delta);
        }

        // 1–2 (incremental): views maintained from the deltas. On error
        // `eval` is dropped (partially updated), and the next tick
        // rebuilds it from state — errors stay reproducible.
        eval.evaluate(&self.core.program, changed, &changed_scalars, &mut self.udfs)?;
        let out = self.run_handlers(&eval.db, &eval.scalars, &eval.key_index);
        if out.is_ok() {
            self.eval = Some(eval);
        }
        out
    }

    /// Rebuild the persistent evaluation state from the current tables,
    /// scalars and mailboxes (first incremental tick, or recovery after an
    /// evaluation error).
    fn rebuild_eval_state(&self) -> Result<EvalState, TransducerError> {
        let mut eval = EvalState::with_plan(&self.core.program, Arc::clone(&self.core.plan));
        eval.scalars = self
            .state
            .scalars
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, rows) in &self.state.tables {
            for (key, row) in rows {
                eval.seed_table_row(name, key.clone(), row.clone());
            }
        }
        // Exchange-received foreign rows are part of this instance's view
        // of the table, just not of its owned partition.
        for (name, rows) in &self.foreign {
            for (key, row) in rows {
                eval.seed_table_row(name, key.clone(), row.clone());
            }
        }
        for (name, msgs) in &self.mailboxes {
            for m in msgs {
                eval.seed_row(name, m.row.clone());
            }
        }
        if !self.skip_view_heads.is_empty() {
            eval.set_skip_heads(self.skip_view_heads.iter().cloned());
        }
        eval.set_counting(self.counting);
        Ok(eval)
    }

    /// Steps 3–5 of the tick, shared by every evaluation mode: run
    /// handlers against the snapshot `db`/`scalars`/`key_index`, apply
    /// effects, monitor functional dependencies.
    fn run_handlers(
        &mut self,
        db: &Database,
        scalars: &FxHashMap<String, Value>,
        key_index: &FxHashMap<String, FxHashMap<Row, Row>>,
    ) -> Result<TickOutput, TransducerError> {
        // 3: run handlers against the snapshot, recording effects. Tables
        // written anywhere this tick are collected for FD monitoring.
        // Serialized handlers additionally read committed mid-tick state
        // through `mirror` — the *persistent* mirror carried across ticks
        // on `self.serial_mirror` (taken here, put back at the end), built
        // lazily on the first serialized message ever and updated
        // incrementally as effects land. An early error return leaves it
        // `None`; the next serialized message re-clones.
        let mut groups: Vec<EffectGroup> = Vec::new();
        let mut touched: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut out = TickOutput::default();
        let mut mirror: Option<TickMirror> = self.serial_mirror.take();
        // One frame for the whole handler phase: reset (cheap — a handful
        // of slots) and refilled per invocation. Param binding is an
        // indexed store; no per-message map allocation or string hashing.
        let mut frame = Frame::default();
        let core = Arc::clone(&self.core);
        for (handler, consistency, compiled) in core.handlers.iter() {
            let invariants = consistency.invariants.clone();
            // Serializable handlers (and any handler carrying invariants)
            // execute *serially against current state*, each message seeing
            // the committed effects of the previous one — the enforcement
            // mechanism §7 says the compiler must interpose. Everything
            // else reads the tick-start snapshot and defers its effects.
            let serial = consistency.level == crate::facets::ConsistencyLevel::Serializable
                || !invariants.is_empty();
            match &handler.trigger {
                Trigger::OnMessage => {
                    let msgs = self
                        .mailboxes
                        .get(&handler.name)
                        .cloned()
                        .unwrap_or_default();
                    for msg in &msgs {
                        frame.reset(compiled.names.len());
                        for (&s, v) in compiled.param_slots.iter().zip(msg.row.iter()) {
                            frame.replace(s, Some(v.clone()));
                        }
                        frame.replace(compiled.msg_id_slot, Some(Value::Int(msg.id as i64)));
                        let resp_start = out.responses.len();
                        let mut group = EffectGroup {
                            handler: handler.name.clone(),
                            message_id: Some(msg.id),
                            effects: Vec::new(),
                            invariants: invariants.clone(),
                            inv_keys: compiled.capture_inv_keys(&frame),
                            resp_range: resp_start..resp_start,
                        };
                        if serial {
                            // Current view of scalars/table keys including
                            // prior serialized commits of this tick,
                            // maintained incrementally across messages.
                            let m = mirror.get_or_insert_with(|| TickMirror {
                                key_index: key_index.clone(),
                                scalars: scalars.clone(),
                            });
                            self.exec_stmts(
                                &compiled.body,
                                &compiled.names,
                                &mut frame,
                                db,
                                &m.scalars,
                                &m.key_index,
                                &mut group,
                                &mut out,
                                handler,
                                Some(msg.id),
                            )?;
                            group.resp_range = resp_start..out.responses.len();
                            // Commit immediately (transactionally if
                            // invariants are present).
                            touched.extend(touched_tables(&group.effects));
                            self.apply_group(group, &mut out, mirror.as_mut())?;
                        } else {
                            self.exec_stmts(
                                &compiled.body,
                                &compiled.names,
                                &mut frame,
                                db,
                                scalars,
                                key_index,
                                &mut group,
                                &mut out,
                                handler,
                                Some(msg.id),
                            )?;
                            group.resp_range = resp_start..out.responses.len();
                            groups.push(group);
                        }
                        out.messages_processed += 1;
                    }
                    // Message handlers consume their mailbox at end of tick.
                    if let Some(q) = self.mailboxes.get_mut(&handler.name) {
                        if !q.is_empty() {
                            q.clear();
                            self.pending.note_mailbox(&handler.name);
                        }
                    }
                }
                Trigger::OnCondition(_) => {
                    if !self.run_condition_handlers {
                        continue;
                    }
                    frame.reset(compiled.names.len());
                    let fire = {
                        let mut ctx = crate::eval::EvalCtx {
                            program: &self.core.program,
                            db,
                            scalars,
                            key_index,
                            udfs: &mut self.udfs,
                            scan_cache: Default::default(),
                        };
                        let cond = compiled.cond.as_ref().expect("condition trigger compiled");
                        eval_cexpr(cond, &mut frame, &compiled.names, &mut ctx)?
                            .as_bool()
                            .unwrap_or(false)
                    };
                    if fire {
                        let resp_start = out.responses.len();
                        let mut group = EffectGroup {
                            handler: handler.name.clone(),
                            message_id: None,
                            effects: Vec::new(),
                            invariants: invariants.clone(),
                            inv_keys: compiled.capture_inv_keys(&frame),
                            resp_range: resp_start..resp_start,
                        };
                        self.exec_stmts(
                            &compiled.body,
                            &compiled.names,
                            &mut frame,
                            db,
                            scalars,
                            key_index,
                            &mut group,
                            &mut out,
                            handler,
                            None,
                        )?;
                        group.resp_range = resp_start..out.responses.len();
                        groups.push(group);
                    }
                }
            }
        }

        // 4: apply effects atomically; invariant groups transactionally.
        // The serialized-handler mirror survives the tick now, so these
        // commits maintain it too — it must keep tracking committed state
        // for the next tick's serialized messages.
        for group in &groups {
            touched.extend(touched_tables(&group.effects));
        }
        for group in groups {
            self.apply_group(group, &mut out, mirror.as_mut())?;
        }
        self.serial_mirror = mirror;

        // 5: functional dependencies (§5 relational constraints) are
        // monitored on every table written this tick. Transactional
        // handlers already rolled back on violation (see
        // `postconditions_hold`); anything that slipped through an
        // eventually-consistent handler is surfaced as a warning rather
        // than silently accepted.
        for table in touched {
            out.warnings.extend(self.fd_warnings(&table));
        }

        Ok(out)
    }

    /// Check every FD of `table` against current state; one message per
    /// violated dependency.
    fn fd_warnings(&self, table: &str) -> Vec<String> {
        let Some(decl) = self.core.program.table(table) else {
            return Vec::new();
        };
        if decl.fds.is_empty() {
            return Vec::new();
        }
        let Some(rows) = self.state.tables.get(table) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for fd in &decl.fds {
            if let Some((a, b)) = decl.fd_violation(fd, rows.values().map(|r| r.as_slice())) {
                out.push(format!(
                    "table {table:?}: functional dependency `{}` violated by rows {a:?} and {b:?}",
                    decl.fd_display(fd)
                ));
            }
        }
        out
    }

    /// Convenience driver: repeatedly tick, re-delivering any sends whose
    /// mailbox exists locally (immediate, in-order delivery — the
    /// zero-delay schedule). External sends accumulate in the returned
    /// output. Stops when quiescent or after `max_ticks`.
    pub fn run_to_quiescence(&mut self, max_ticks: usize) -> Result<TickOutput, TransducerError> {
        let mut all = TickOutput::default();
        for _ in 0..max_ticks {
            let pending: usize = self.mailboxes.values().map(Vec::len).sum();
            if pending == 0 {
                break;
            }
            let out = self.tick()?;
            all.responses.extend(out.responses);
            all.warnings.extend(out.warnings);
            all.messages_processed += out.messages_processed;
            for send in out.sends {
                if self.has_mailbox(&send.mailbox) {
                    self.enqueue(&send.mailbox, send.row)?;
                } else {
                    all.sends.push(send);
                }
            }
        }
        Ok(all)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_stmts(
        &mut self,
        stmts: &[CStmt],
        names: &[String],
        frame: &mut Frame,
        db: &Database,
        scalars: &FxHashMap<String, Value>,
        key_index: &FxHashMap<String, FxHashMap<Row, Row>>,
        group: &mut EffectGroup,
        out: &mut TickOutput,
        handler: &Handler,
        msg_id: Option<u64>,
    ) -> Result<(), TransducerError> {
        for stmt in stmts {
            match stmt {
                CStmt::Merge(target, expr) => {
                    let value = self.eval(expr, names, frame, db, scalars, key_index)?;
                    match target {
                        CMergeTarget::Scalar(name) => {
                            group.effects.push(Effect::MergeScalar(name.clone(), value));
                        }
                        CMergeTarget::TableField { table, key, field } => {
                            let (key, col) = self
                                .resolve_field(table, key, field, names, frame, db, scalars, key_index)?;
                            group.effects.push(Effect::MergeField {
                                table: table.clone(),
                                key,
                                col,
                                value,
                            });
                        }
                    }
                }
                CStmt::Assign(target, expr) => {
                    let value = self.eval(expr, names, frame, db, scalars, key_index)?;
                    match target {
                        CAssignTarget::Scalar(name) => {
                            group
                                .effects
                                .push(Effect::AssignScalar(name.clone(), value));
                        }
                        CAssignTarget::TableField { table, key, field } => {
                            let (key, col) = self
                                .resolve_field(table, key, field, names, frame, db, scalars, key_index)?;
                            group.effects.push(Effect::AssignField {
                                table: table.clone(),
                                key,
                                col,
                                value,
                            });
                        }
                    }
                }
                CStmt::Insert { table, values } => {
                    let decl = self.core.program
                        .table(table)
                        .ok_or_else(|| TransducerError::Unknown(table.clone()))?
                        .clone();
                    if values.len() != decl.arity() {
                        return Err(TransducerError::InsertArity {
                            table: table.clone(),
                            given: values.len(),
                            expected: decl.arity(),
                        });
                    }
                    let row: Row = values
                        .iter()
                        .map(|e| self.eval(e, names, frame, db, scalars, key_index))
                        .collect::<Result<_, _>>()?;
                    group.effects.push(Effect::InsertRow {
                        table: table.clone(),
                        row,
                    });
                }
                CStmt::Delete { table, key } => {
                    let k = self.eval(key, names, frame, db, scalars, key_index)?;
                    let key_row = key_row_of(k);
                    group.effects.push(Effect::DeleteRow {
                        table: table.clone(),
                        key: key_row,
                    });
                }
                CStmt::Send { mailbox, select } => {
                    let rows = self.eval_select_rows(select, names, frame, db, scalars, key_index)?;
                    for row in rows {
                        out.sends.push(SendOut {
                            mailbox: mailbox.clone(),
                            row,
                            handler: handler.name.clone(),
                            source_msg: msg_id.unwrap_or(0),
                        });
                    }
                }
                CStmt::Return(expr) => {
                    let value = self.eval(expr, names, frame, db, scalars, key_index)?;
                    if let Some(id) = msg_id {
                        out.responses.push(Response {
                            handler: handler.name.clone(),
                            message_id: id,
                            value: value.clone(),
                        });
                        out.sends.push(SendOut {
                            mailbox: response_mailbox(&handler.name),
                            row: vec![Value::Int(id as i64), value],
                            handler: handler.name.clone(),
                            source_msg: id,
                        });
                    }
                }
                CStmt::If { cond, then, els } => {
                    let c = self
                        .eval(cond, names, frame, db, scalars, key_index)?
                        .as_bool()
                        .unwrap_or(false);
                    let branch = if c { then } else { els };
                    self.exec_stmts(
                        branch, names, frame, db, scalars, key_index, group, out, handler, msg_id,
                    )?;
                }
                CStmt::ForEach { select, vars, stmts } => {
                    // Evaluate the comprehension (its projection is the
                    // bindable variables), then run the nested statements
                    // once per match, spreading each row into the slots via
                    // the frame's value-preserving save stack — priors are
                    // restored by mark/truncate, so the enclosing scope
                    // (and the next match) is undisturbed and no per-match
                    // `Vec` is allocated. The matches are fully
                    // materialized *before* any nested statement runs,
                    // preserving the reference's effect and UDF ordering.
                    let rows = self.eval_select_rows(select, names, frame, db, scalars, key_index)?;
                    for row in rows {
                        let mark = frame.save_mark();
                        for (&s, v) in vars.iter().zip(row) {
                            frame.save_replace(s, Some(v));
                        }
                        let run = self.exec_stmts(
                            stmts, names, frame, db, scalars, key_index, group, out, handler,
                            msg_id,
                        );
                        frame.restore_saved(mark);
                        run?;
                    }
                }
                CStmt::ClearMailbox(name) => {
                    group.effects.push(Effect::ClearMailbox(name.clone()));
                }
            }
        }
        Ok(())
    }

    fn eval(
        &mut self,
        expr: &CExpr,
        names: &[String],
        frame: &mut Frame,
        db: &Database,
        scalars: &FxHashMap<String, Value>,
        key_index: &FxHashMap<String, FxHashMap<Row, Row>>,
    ) -> Result<Value, TransducerError> {
        let mut ctx = crate::eval::EvalCtx {
            program: &self.core.program,
            db,
            scalars,
            key_index,
            udfs: &mut self.udfs,
            scan_cache: Default::default(),
        };
        Ok(eval_cexpr(expr, frame, names, &mut ctx)?)
    }

    fn eval_select_rows(
        &mut self,
        select: &CSelect,
        names: &[String],
        frame: &mut Frame,
        db: &Database,
        scalars: &FxHashMap<String, Value>,
        key_index: &FxHashMap<String, FxHashMap<Row, Row>>,
    ) -> Result<Vec<Row>, TransducerError> {
        let mut ctx = crate::eval::EvalCtx {
            program: &self.core.program,
            db,
            scalars,
            key_index,
            udfs: &mut self.udfs,
            scan_cache: Default::default(),
        };
        Ok(eval_cselect(select, frame, names, &mut ctx)?)
    }

    /// Resolve a `table[key].field` target to (key row, column index).
    #[allow(clippy::too_many_arguments)]
    fn resolve_field(
        &mut self,
        table: &str,
        key: &CExpr,
        field: &str,
        names: &[String],
        frame: &mut Frame,
        db: &Database,
        scalars: &FxHashMap<String, Value>,
        key_index: &FxHashMap<String, FxHashMap<Row, Row>>,
    ) -> Result<(Row, usize), TransducerError> {
        let decl = self.core.program
            .table(table)
            .ok_or_else(|| TransducerError::Unknown(table.to_string()))?;
        let col = decl
            .column_index(field)
            .ok_or_else(|| TransducerError::Unknown(format!("{table}.{field}")))?;
        // Key columns are the row's identity: rewriting one in place would
        // detach the stored row from its key, making every keyed read
        // ambiguous. Enforced here so the invariant "storage key ==
        // key_of(row)" holds for all evaluation engines.
        if decl.key.contains(&col) {
            return Err(TransducerError::KeyColumn {
                table: table.to_string(),
                column: field.to_string(),
            });
        }
        let k = self.eval(key, names, frame, db, scalars, key_index)?;
        Ok((key_row_of(k), col))
    }

    /// Apply one effect group; transactional if it carries invariants.
    /// `mirror`, when present, is kept consistent with the state — through
    /// rollbacks included.
    fn apply_group(
        &mut self,
        mut group: EffectGroup,
        out: &mut TickOutput,
        mut mirror: Option<&mut TickMirror>,
    ) -> Result<(), TransducerError> {
        if group.invariants.is_empty() {
            let effects = std::mem::take(&mut group.effects);
            for e in effects {
                self.apply_effect(e, out, mirror.as_deref_mut())?;
            }
            return Ok(());
        }
        // Preconditions (referential integrity) are checked against the
        // pre-state: a merge must not be allowed to conjure the row that
        // would justify it.
        if !self.preconditions_hold(&group)? {
            self.reject_group(&group, out);
            return Ok(());
        }
        // Transactional: snapshot, apply, check postconditions,
        // commit-or-rollback. Declared functional dependencies on the
        // tables this group wrote count as postconditions. The snapshot
        // covers *only what the group writes* — the first-touch original
        // of every (table, key) its effects name and of every scalar they
        // set — so a guarded message costs O(|its writes|), not O(|state|).
        // Mailbox clears live outside `State` and are not transactional
        // (the old whole-state clone never covered them either).
        let touched = touched_tables(&group.effects);
        let mut saved_rows: FxHashMap<(String, Row), Option<Row>> = FxHashMap::default();
        let mut saved_scalars: FxHashMap<String, Value> = FxHashMap::default();
        {
            let mut save_row = |state: &State, table: &str, key: &Row| {
                saved_rows
                    .entry((table.to_string(), key.clone()))
                    .or_insert_with(|| state.tables.get(table).and_then(|t| t.get(key)).cloned());
            };
            for e in &group.effects {
                match e {
                    Effect::MergeScalar(name, _) | Effect::AssignScalar(name, _) => {
                        if let Some(v) = self.state.scalars.get(name) {
                            saved_scalars
                                .entry(name.clone())
                                .or_insert_with(|| v.clone());
                        }
                    }
                    Effect::MergeField { table, key, .. }
                    | Effect::AssignField { table, key, .. }
                    | Effect::DeleteRow { table, key } => save_row(&self.state, table, key),
                    Effect::InsertRow { table, row } => {
                        if let Some(decl) = self.core.program.table(table) {
                            let key = decl.key_of(row);
                            save_row(&self.state, table, &key);
                        }
                    }
                    Effect::ClearMailbox(_) => {}
                }
            }
        }
        let effects = std::mem::take(&mut group.effects);
        for e in effects {
            self.apply_effect(e, out, mirror.as_deref_mut())?;
        }
        if self.postconditions_hold(&group)?
            && touched.iter().all(|t| self.fd_warnings(t).is_empty())
        {
            return Ok(());
        }
        // Roll back: put the first-touch originals back and re-mirror
        // exactly the touched entries — the mirror, like the state, is
        // repaired per key, never re-cloned wholesale. (Restores are
        // per-key independent, so the map's iteration order is
        // immaterial.)
        for ((table, key), old) in saved_rows {
            if let Some(t) = self.state.tables.get_mut(&table) {
                match old {
                    Some(row) => {
                        t.insert(key.clone(), row);
                    }
                    None => {
                        t.remove(&key);
                    }
                }
            }
            if let Some(m) = mirror.as_deref_mut() {
                m.refresh_row(&self.state, &table, &key);
            }
        }
        for (name, old) in saved_scalars {
            if let Some(m) = mirror.as_deref_mut() {
                m.scalars.insert(name.clone(), old.clone());
            }
            self.state.scalars.insert(name, old);
        }
        self.reject_group(&group, out);
        Ok(())
    }

    /// Replace the optimistic OK responses this group produced with ABORT
    /// and record a warning. The group's recorded response range makes
    /// this O(|its own replies|) — abort-heavy ticks no longer rescan
    /// every response per rolled-back group.
    fn reject_group(&mut self, group: &EffectGroup, out: &mut TickOutput) {
        if let Some(id) = group.message_id {
            for r in &mut out.responses[group.resp_range.clone()] {
                if r.message_id == id && r.handler == group.handler {
                    r.value = Value::Str("ABORT".to_string());
                }
            }
        }
        out.warnings.push(format!(
            "handler {:?} message {:?}: invariant violated, effects rolled back",
            group.handler, group.message_id
        ));
    }

    /// Referential-integrity preconditions, evaluated on the pre-state
    /// against the key values captured at group creation.
    fn preconditions_hold(&self, group: &EffectGroup) -> Result<bool, TransducerError> {
        for (inv, key) in group.invariants.iter().zip(&group.inv_keys) {
            if let Invariant::HasKey { table, .. } = inv {
                let key_row = key_row_of(key.clone());
                let present = self
                    .state
                    .tables
                    .get(table)
                    .is_some_and(|t| t.contains_key(&key_row));
                if !present {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Value-range postconditions, evaluated on the post-state.
    fn postconditions_hold(&self, group: &EffectGroup) -> Result<bool, TransducerError> {
        for inv in &group.invariants {
            if let Invariant::NonNegative(scalar) = inv {
                let v = self
                    .state
                    .scalars
                    .get(scalar)
                    .ok_or_else(|| TransducerError::Unknown(scalar.clone()))?;
                if v.as_int().is_some_and(|i| i < 0) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn apply_effect(
        &mut self,
        effect: Effect,
        out: &mut TickOutput,
        mirror: Option<&mut TickMirror>,
    ) -> Result<(), TransducerError> {
        match effect {
            Effect::MergeScalar(name, value) => {
                let decl = self.core.program
                    .scalar(&name)
                    .ok_or_else(|| TransducerError::Unknown(name.clone()))?;
                let Some(kind) = decl.lattice.clone() else {
                    return Err(TransducerError::NotMergeable(name));
                };
                let slot = self
                    .state
                    .scalars
                    .get_mut(&name)
                    .ok_or_else(|| TransducerError::Unknown(name.clone()))?;
                self.pending.note_scalar(&name, slot);
                kind.merge(slot, value)
                    .map_err(|e| TransducerError::Eval(EvalError::Type {
                        expected: "lattice-shaped value",
                        got: e.to_string(),
                    }))?;
                if let Some(m) = mirror {
                    m.scalars.insert(name, slot.clone());
                }
            }
            Effect::AssignScalar(name, value) => {
                let slot = self
                    .state
                    .scalars
                    .get_mut(&name)
                    .ok_or_else(|| TransducerError::Unknown(name.clone()))?;
                self.pending.note_scalar(&name, slot);
                *slot = value;
                if let Some(m) = mirror {
                    m.scalars.insert(name, slot.clone());
                }
            }
            Effect::MergeField {
                table,
                key,
                col,
                value,
            } => {
                let decl = self.core.program
                    .table(&table)
                    .ok_or_else(|| TransducerError::Unknown(table.clone()))?
                    .clone();
                let ColumnKind::Lattice(kind) = &decl.columns[col].kind else {
                    return Err(TransducerError::NotMergeable(format!(
                        "{table}.{}",
                        decl.columns[col].name
                    )));
                };
                // MapUnion semantics: merging into an absent key creates
                // the row at lattice bottom first, keeping merges total and
                // order-insensitive (required for CALM confluence).
                let tab = self
                    .state
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| TransducerError::Unknown(table.clone()))?;
                self.pending.note_table(&table, &key, tab.get(&key));
                let row = tab
                    .entry(key.clone())
                    .or_insert_with(|| bottom_row(&decl, &key));
                kind.merge(&mut row[col], value).map_err(|e| {
                    TransducerError::Eval(EvalError::Type {
                        expected: "lattice-shaped value",
                        got: e.to_string(),
                    })
                })?;
                if let Some(m) = mirror {
                    m.refresh_row(&self.state, &table, &key);
                }
            }
            Effect::AssignField {
                table,
                key,
                col,
                value,
            } => {
                if let Some(t) = self.state.tables.get(&table) {
                    self.pending.note_table(&table, &key, t.get(&key));
                }
                match self
                    .state
                    .tables
                    .get_mut(&table)
                    .and_then(|t| t.get_mut(&key))
                {
                    Some(row) => {
                        row[col] = value;
                        if let Some(m) = mirror {
                            m.refresh_row(&self.state, &table, &key);
                        }
                    }
                    None => out.warnings.push(format!(
                        "assign into missing row {key:?} of {table:?} ignored"
                    )),
                }
            }
            Effect::InsertRow { table, row } => {
                let decl = self.core.program
                    .table(&table)
                    .ok_or_else(|| TransducerError::Unknown(table.clone()))?
                    .clone();
                let key = decl.key_of(&row);
                let slot = self
                    .state
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| TransducerError::Unknown(table.clone()))?;
                self.pending.note_table(&table, &key, slot.get(&key));
                match slot.entry(key.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(row);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // Upsert: lattice columns merge; atom columns
                        // overwrite (a non-monotone act the typechecker
                        // flags when it can happen).
                        let existing = e.get_mut();
                        for (i, v) in row.into_iter().enumerate() {
                            match &decl.columns[i].kind {
                                ColumnKind::Lattice(kind) => {
                                    kind.merge(&mut existing[i], v).map_err(|err| {
                                        TransducerError::Eval(EvalError::Type {
                                            expected: "lattice-shaped value",
                                            got: err.to_string(),
                                        })
                                    })?;
                                }
                                ColumnKind::Atom => existing[i] = v,
                            }
                        }
                    }
                }
                if let Some(m) = mirror {
                    m.refresh_row(&self.state, &table, &key);
                }
            }
            Effect::DeleteRow { table, key } => {
                if let Some(t) = self.state.tables.get_mut(&table) {
                    self.pending.note_table(&table, &key, t.get(&key));
                    t.remove(&key);
                }
                if let Some(m) = mirror {
                    m.refresh_row(&self.state, &table, &key);
                }
            }
            Effect::ClearMailbox(name) => {
                if let Some(q) = self.mailboxes.get_mut(&name) {
                    if !q.is_empty() {
                        q.clear();
                        self.pending.note_mailbox(&name);
                    }
                }
            }
        }
        Ok(())
    }
}

/// A fresh row at lattice bottom for a table: key columns take the key's
/// values, lattice columns their bottoms, atom columns `Null`.
fn bottom_row(decl: &crate::ast::TableDecl, key: &[Value]) -> Row {
    let mut row: Row = decl
        .columns
        .iter()
        .map(|c| match &c.kind {
            ColumnKind::Lattice(kind) => kind.bottom(),
            ColumnKind::Atom => Value::Null,
        })
        .collect();
    for (slot, v) in decl.key.iter().zip(key.iter()) {
        row[*slot] = v.clone();
    }
    row
}

/// Normalize a key expression value into a key row: tuples spread into
/// multi-column keys, anything else is a single-column key.
fn key_row_of(v: Value) -> Row {
    match v {
        Value::Tuple(parts) => parts,
        single => vec![single],
    }
}

fn collect_bound_vars(body: &[crate::ast::BodyAtom], vars: &mut Vec<String>) {
    use crate::ast::{BodyAtom, Term};
    for atom in body {
        match atom {
            BodyAtom::Scan { terms, .. } => {
                for t in terms {
                    if let Term::Var(v) = t {
                        if !vars.contains(v) {
                            vars.push(v.clone());
                        }
                    }
                }
            }
            BodyAtom::Let { var, .. } | BodyAtom::Flatten { var, .. } => {
                if !vars.contains(var) {
                    vars.push(var.clone());
                }
            }
            BodyAtom::Neg { .. } | BodyAtom::Guard(_) => {}
        }
    }
}
