//! Open-loop serving layer: event-loop ingress with adaptive
//! micro-batching over any sharded (or single) transducer driver.
//!
//! Everything measured before this module was closed-loop wall-ms per
//! tick; the paper's pitch is programs that *serve heavy traffic*, and
//! the number that decides serving architectures is tail latency under
//! arrival pressure. [`ServeLoop`] is the missing ingress: clients
//! `offer` timestamped requests, the loop queues them per shard, and an
//! event loop (a [`TimerWheel`] min-heap, the Boon `event_loop` shape)
//! decides when the underlying driver ticks and how many requests each
//! tick drains.
//!
//! # Micro-batching and the budget controller
//!
//! Every tick of the underlying transducer pays a fixed overhead —
//! incremental-plan setup, journal folding, output merging — that PR 6's
//! parallel runtime and PR 8's O(delta) maintenance have made *the*
//! dominant cost of a one-message tick. Draining a batch of `b` queued
//! requests into one tick amortizes that overhead `b`-fold, at the price
//! of holding the batch's earliest request for the tick's duration.
//! The [`BatchController`] walks that trade-off live, per the classic
//! adaptive group-commit scheme:
//!
//! * the per-shard drain budget starts at 1 (light load ⇒ every request
//!   ticks immediately ⇒ minimal latency);
//! * a tick that leaves backlog behind while service time stays under
//!   [`ServeConfig::latency_target_ns`] doubles the budget (pressure ⇒
//!   grow toward [`BatchPolicy::Adaptive`]'s cap);
//! * a tick whose service time overruns the target halves it, and an
//!   under-full drain decays it — so the budget tracks the offered load
//!   instead of sticking at the cap.
//!
//! A tick is triggered by whichever comes first: a shard's queue
//! reaching the current budget (tick *now*), or the flush timer armed
//! [`ServeConfig::flush_delay_ns`] after an arrival (bounds the wait of
//! a sub-budget batch). A drain takes at most the budget in messages
//! and [`ServeConfig::batch_bytes`] in estimated payload bytes per
//! shard — but always at least one message per non-empty eligible
//! queue, so a single oversized request cannot wedge the loop.
//!
//! # Backpressure contract
//!
//! Ingress queues are bounded ([`ServeConfig::queue_cap`] per shard).
//! An [`ServeLoop::offer`] against a full queue is **rejected
//! immediately** — the request never enters the system, the caller gets
//! [`OfferOutcome::Overloaded`] (the wire-level `OVERLOADED` reply),
//! and the rejection is counted in
//! [`ServeStats::rejected_queue_full`], distinct from any other shed
//! path. Accepted requests are never dropped: every one is eventually
//! drained, ticked, and measured. This is an *open-loop* contract —
//! arrival timestamps come from the caller and are never gated on
//! service progress, so the loop under overload reports honest queueing
//! delay and rejection counts instead of the closed-loop's coordinated
//! omission.
//!
//! # Clock and determinism story
//!
//! The loop runs on a **virtual nanosecond clock**. Arrival times are
//! caller-supplied; service time per tick comes from the
//! [`ServiceModel`]: `Measured` folds the real (wall-clock) tick
//! duration into the virtual clock — the benchmarking mode — while
//! `Fixed` charges a deterministic `tick_ns + per_msg_ns · batch`,
//! making **every** observable of a run — batch boundaries, tick
//! times, the latency histogram, stats — a pure function of the offered
//! (timestamp, mailbox, row) sequence. The differential and
//! determinism suites run on `Fixed`; CI double-runs them and diffs.
//!
//! Latency is recorded enqueue→reply: from the offered arrival
//! timestamp to the virtual completion time of the tick that processed
//! the request, captured in an HDR-style log-bucketed
//! [`LatencyHistogram`] (≈3% relative resolution, fixed footprint).
//!
//! # Batching transparency — which programs can't tell
//!
//! Micro-batching changes *tick boundaries*, and two handler classes
//! observe them:
//!
//! * **Serialized handlers** (`Serializable` level, or any handler
//!   carrying invariants) execute one message at a time against
//!   committed mid-tick state — read-your-writes holds *within* a
//!   batch, not just across batches. One caveat: within a tick the
//!   interpreter runs handlers in *program order* (all of handler A's
//!   mailbox, then all of handler B's), so when requests fan out over
//!   several handlers, cross-handler arrival order inside one batch is
//!   not preserved. Full batch-split invariance — *any* two batch
//!   partitions of a request stream produce identical responses, sends,
//!   and state — therefore requires routing traffic through a **single
//!   serialized entry handler** (a `req(op, …)` multiplexer), where
//!   within-tick order is exactly arrival order. That is the E20
//!   serving shape, and the property the `serve_batching` proptests
//!   pin.
//! * **Snapshot (eventual) handlers** read the tick-*start* snapshot:
//!   a read batched into the same tick as an earlier same-key write
//!   sees the pre-tick value. That is precisely the consistency the
//!   program declared — but it means batch boundaries are observable,
//!   so only runs fed *identical* batch boundaries compare
//!   bit-identically (the differential suite does exactly that).
//! * **Condition handlers** fire per tick, not per message — batching
//!   coalesces their firings by construction.

use crate::eval::Row;
use crate::interp::{TickOutput, TransducerError};
use crate::shard::RoutingSpec;
use crate::value::Value;
use std::collections::{BinaryHeap, VecDeque};

/// Anything the serve loop can drive: one tick-based transducer exposing
/// sequential message-id enqueue and a tick barrier. Implemented by
/// [`crate::interp::Transducer`] (one shard),
/// [`crate::shard::ShardedTransducer`] and
/// [`crate::shard::ParallelShardedTransducer`] — all three produce
/// bit-identical outputs for the same enqueue/tick sequence, which is
/// what lets the differential suite swap them freely under the loop.
pub trait ServeDriver {
    /// Enqueue one message, returning its globally sequential id.
    fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError>;
    /// Run one tick over everything enqueued since the last.
    fn tick(&mut self) -> Result<TickOutput, TransducerError>;
    /// Number of shards (= ingress queues the loop maintains).
    fn shard_count(&self) -> usize;
}

impl ServeDriver for crate::interp::Transducer {
    fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError> {
        crate::interp::Transducer::enqueue(self, mailbox, row)
    }
    fn tick(&mut self) -> Result<TickOutput, TransducerError> {
        crate::interp::Transducer::tick(self)
    }
    fn shard_count(&self) -> usize {
        1
    }
}

impl ServeDriver for crate::shard::ShardedTransducer {
    fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError> {
        crate::shard::ShardedTransducer::enqueue(self, mailbox, row)
    }
    fn tick(&mut self) -> Result<TickOutput, TransducerError> {
        crate::shard::ShardedTransducer::tick(self)
    }
    fn shard_count(&self) -> usize {
        crate::shard::ShardedTransducer::shard_count(self)
    }
}

impl ServeDriver for crate::shard::ParallelShardedTransducer {
    fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError> {
        crate::shard::ParallelShardedTransducer::enqueue(self, mailbox, row)
    }
    fn tick(&mut self) -> Result<TickOutput, TransducerError> {
        crate::shard::ParallelShardedTransducer::tick(self)
    }
    fn shard_count(&self) -> usize {
        crate::shard::ParallelShardedTransducer::shard_count(self)
    }
}

/// Where a tick's service time comes from (see the module docs).
#[derive(Clone, Copy, Debug)]
pub enum ServiceModel {
    /// Charge the measured wall-clock duration of `driver.tick()` —
    /// latencies and throughput come out in real nanoseconds.
    Measured,
    /// Charge a deterministic `tick_ns + per_msg_ns · batch_size` — the
    /// reproducible model the differential/determinism suites run on.
    Fixed {
        /// Fixed cost charged per tick.
        tick_ns: u64,
        /// Marginal cost charged per drained message.
        per_msg_ns: u64,
    },
}

/// Per-shard drain-budget policy.
#[derive(Clone, Copy, Debug)]
pub enum BatchPolicy {
    /// Constant budget (batch=1 is the no-batching baseline the E20
    /// saturation arm compares against).
    Fixed(usize),
    /// Adaptive between 1 and `cap` (see [`BatchController`]).
    Adaptive {
        /// Upper bound the budget may grow to.
        cap: usize,
    },
}

/// Configuration for a [`ServeLoop`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Bounded per-shard ingress queue depth; offers beyond it are
    /// rejected `OVERLOADED`.
    pub queue_cap: usize,
    /// Drain-budget policy.
    pub batch: BatchPolicy,
    /// Per-shard per-tick estimated-payload byte budget (at least one
    /// message per shard is always drained).
    pub batch_bytes: usize,
    /// The latency target the adaptive controller steers toward: growth
    /// is gated on tick service time staying under it.
    pub latency_target_ns: u64,
    /// How long a sub-budget batch may wait for company before the
    /// flush timer forces a tick.
    pub flush_delay_ns: u64,
    /// Service-time model.
    pub service: ServiceModel,
    /// Record every tick's drained `(mailbox, row)` batch in order —
    /// the differential suites replay these against a reference driver.
    pub record_batches: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 8192,
            batch: BatchPolicy::Adaptive { cap: 512 },
            batch_bytes: 1 << 20,
            latency_target_ns: 5_000_000,
            flush_delay_ns: 100_000,
            service: ServiceModel::Measured,
            record_batches: false,
        }
    }
}

/// Outcome of one [`ServeLoop::offer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Queued; it will be drained, ticked and measured.
    Accepted,
    /// The target shard's ingress queue was full — rejected without
    /// entering the system (the `OVERLOADED` backpressure reply).
    Overloaded,
}

/// Counters a [`ServeLoop`] maintains (all deterministic under
/// [`ServiceModel::Fixed`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Offers accepted into an ingress queue.
    pub accepted: u64,
    /// Offers rejected because the target shard's queue was at cap —
    /// the distinct queue-full backpressure counter.
    pub rejected_queue_full: u64,
    /// Requests fully served (drained into a tick that completed).
    pub completed: u64,
    /// Ticks the loop ran.
    pub ticks: u64,
    /// Largest single-tick drain (messages, across all shards).
    pub max_batch: usize,
    /// Deepest any ingress queue got.
    pub max_queue_depth: usize,
    /// Largest budget the adaptive controller reached.
    pub budget_peak: usize,
}

/// HDR-style log-bucketed latency histogram: 32 linear sub-buckets per
/// power-of-two magnitude (≈3% relative resolution), fixed footprint,
/// exact counts. Values are nanoseconds.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32 linear sub-buckets per magnitude

impl Default for LatencyHistogram {
    fn default() -> Self {
        // Highest index bucket_of can produce is for v = u64::MAX:
        // (63 - SUB_BITS + 1) * SUB + (SUB - 1).
        let len = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;
        LatencyHistogram {
            buckets: vec![0; len],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS
        let shift = msb - SUB_BITS as u64;
        let block = (msb - SUB_BITS as u64 + 1) as usize;
        block * SUB as usize + ((v >> shift) & (SUB - 1)) as usize
    }

    /// Lower bound of the value range bucket `i` covers — what
    /// [`LatencyHistogram::percentile`] reports, so reported quantiles
    /// never exceed the true ones.
    fn bucket_floor(i: usize) -> u64 {
        let block = i / SUB as usize;
        if block == 0 {
            return i as u64;
        }
        let shift = (block - 1) as u32;
        (SUB + (i % SUB as usize) as u64) << shift
    }

    /// Record one latency (ns).
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (exact sum / count; 0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Value at quantile `q ∈ [0, 1]` (e.g. 0.999 for p999): the floor
    /// of the bucket containing the `ceil(q · count)`-th smallest
    /// recorded value; 0 when empty. `q = 1` reports the exact max.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max
    }
}

/// One pending wake-up in the [`TimerWheel`]. Ordered soonest-first
/// (reversed `Ord`, so `BinaryHeap`'s max-heap pops the minimum), ties
/// broken by schedule order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TimerEvent {
    deadline: u64,
    seq: u64,
}

impl Ord for TimerEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimerEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of wake-up deadlines (virtual ns). Stale timers are cheap:
/// firing one against empty queues is a no-op, so the loop schedules
/// liberally (one per arrival, one per leftover backlog) and never
/// needs cancellation.
#[derive(Debug, Default)]
struct TimerWheel {
    heap: BinaryHeap<TimerEvent>,
    seq: u64,
}

impl TimerWheel {
    fn schedule(&mut self, deadline: u64) {
        self.seq += 1;
        self.heap.push(TimerEvent {
            deadline,
            seq: self.seq,
        });
    }

    fn peek_deadline(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.deadline)
    }

    fn pop(&mut self) -> Option<u64> {
        self.heap.pop().map(|e| e.deadline)
    }
}

/// One queued request.
#[derive(Clone, Debug)]
struct Ingress {
    arrived: u64,
    seq: u64,
    mailbox: String,
    row: Row,
}

/// The adaptive drain-budget controller (see the module docs for the
/// policy). Kept as its own type so its transition function is unit
/// testable without a loop around it.
#[derive(Clone, Copy, Debug)]
pub struct BatchController {
    budget: usize,
    cap: usize,
}

impl BatchController {
    /// Start at budget 1 (tick-per-message under light load).
    pub fn new(cap: usize) -> Self {
        BatchController {
            budget: 1,
            cap: cap.max(1),
        }
    }

    /// Current per-shard drain budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Feed one tick's observation: the largest per-shard drain it took,
    /// whether backlog remained after the drain, and its service time
    /// against the latency target.
    pub fn observe(
        &mut self,
        largest_drain: usize,
        backlog_remains: bool,
        service_ns: u64,
        target_ns: u64,
    ) {
        if service_ns > target_ns {
            // Over target: back off regardless of pressure.
            self.budget = (self.budget / 2).max(1);
        } else if backlog_remains {
            // Under target with queued work left: amortize harder.
            self.budget = (self.budget * 2).min(self.cap);
        } else if largest_drain * 2 <= self.budget {
            // Drained everything at well under budget: decay toward
            // tick-per-message latency.
            self.budget = (self.budget / 2).max(1);
        }
    }
}

/// Estimated wire size of one request payload, for the byte budget:
/// enum footprint plus string/collection heap bytes. An estimate is
/// fine — the budget bounds memory pressure, not exact bytes.
fn row_cost(row: &Row) -> usize {
    fn value_cost(v: &Value) -> usize {
        let base = std::mem::size_of::<Value>();
        match v {
            Value::Str(s) => base + s.len(),
            Value::Tuple(parts) => base + parts.iter().map(value_cost).sum::<usize>(),
            _ => base,
        }
    }
    std::mem::size_of::<Row>() + row.iter().map(value_cost).sum::<usize>()
}

/// The open-loop serving event loop. See the module docs for the full
/// contract; the lifecycle is
/// [`offer`](ServeLoop::offer)* → [`drain`](ServeLoop::drain) →
/// inspect [`stats`](ServeLoop::stats) /
/// [`histogram`](ServeLoop::histogram) /
/// [`take_output`](ServeLoop::take_output).
pub struct ServeLoop<D: ServeDriver> {
    driver: D,
    routing: RoutingSpec,
    cfg: ServeConfig,
    queues: Vec<VecDeque<Ingress>>,
    timers: TimerWheel,
    controller: BatchController,
    /// Virtual clock (ns).
    now: u64,
    /// Virtual time the in-flight tick completes (the server is busy
    /// until then; ≤ `now` means idle).
    busy_until: u64,
    /// Monotone guard on offered timestamps.
    last_offer: u64,
    arrival_seq: u64,
    stats: ServeStats,
    hist: LatencyHistogram,
    collected: TickOutput,
    batch_log: Vec<Vec<(String, Row)>>,
    /// Pooled drain buffer, reused across ticks.
    drain_scratch: Vec<Ingress>,
}

impl<D: ServeDriver> ServeLoop<D> {
    /// Wrap `driver` with ingress queues sized by its shard count.
    /// `routing` must be the spec the driver itself routes by (use
    /// [`RoutingSpec::all_global`] for a single [`crate::interp::Transducer`]) —
    /// the loop uses it only to pick the ingress queue, so a mismatch
    /// costs batching fairness, never correctness.
    pub fn new(driver: D, routing: RoutingSpec, cfg: ServeConfig) -> Self {
        let shards = driver.shard_count().max(1);
        let controller = match cfg.batch {
            BatchPolicy::Fixed(n) => {
                let mut c = BatchController::new(n.max(1));
                c.budget = n.max(1);
                c
            }
            BatchPolicy::Adaptive { cap } => BatchController::new(cap),
        };
        ServeLoop {
            driver,
            routing,
            cfg,
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            timers: TimerWheel::default(),
            controller,
            now: 0,
            busy_until: 0,
            last_offer: 0,
            arrival_seq: 0,
            stats: ServeStats::default(),
            hist: LatencyHistogram::default(),
            collected: TickOutput::default(),
            batch_log: Vec::new(),
            drain_scratch: Vec::new(),
        }
    }

    /// Offer one request with arrival time `t` ns on the virtual clock.
    /// Timestamps must be non-decreasing (an earlier `t` is clamped to
    /// the last one — open-loop generators produce sorted arrivals).
    /// Queue-full rejection is immediate and counted; acceptance only
    /// means *queued* — processing happens as timers fire during later
    /// offers and [`drain`](ServeLoop::drain).
    pub fn offer(
        &mut self,
        t: u64,
        mailbox: &str,
        row: Row,
    ) -> Result<OfferOutcome, TransducerError> {
        let t = t.max(self.last_offer);
        self.last_offer = t;
        // Catch the event loop up to this arrival's time first: ticks
        // whose start time precedes `t` must not include this request.
        self.pump(t)?;
        let shard = self.routing.shard_of(mailbox, &row, self.queues.len());
        let q = &mut self.queues[shard];
        if q.len() >= self.cfg.queue_cap {
            self.stats.rejected_queue_full += 1;
            return Ok(OfferOutcome::Overloaded);
        }
        self.arrival_seq += 1;
        q.push_back(Ingress {
            arrived: t,
            seq: self.arrival_seq,
            mailbox: mailbox.to_string(),
            row,
        });
        self.stats.accepted += 1;
        let depth = q.len();
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(depth);
        // Wake-up policy: a queue at budget ticks as soon as the server
        // frees; below budget it waits at most the flush delay. Stale
        // timers are no-ops, so both can be scheduled optimistically.
        if depth >= self.controller.budget() {
            self.timers.schedule(t);
        } else {
            self.timers.schedule(t + self.cfg.flush_delay_ns);
        }
        Ok(OfferOutcome::Accepted)
    }

    /// Advance the virtual clock to `t`, firing any due timers (and the
    /// ticks they trigger). [`offer`](ServeLoop::offer) calls this
    /// implicitly; it is public for drivers that interleave their own
    /// time sources.
    pub fn advance_to(&mut self, t: u64) -> Result<(), TransducerError> {
        self.last_offer = self.last_offer.max(t);
        self.pump(t)
    }

    /// Process everything still queued (end-of-run flush: fires all
    /// remaining timers and keeps ticking until the queues are empty).
    pub fn drain(&mut self) -> Result<(), TransducerError> {
        self.pump(u64::MAX)?;
        // Belt and braces: pump fires every scheduled timer, and every
        // queued request had one scheduled, so this loop should find
        // nothing — but the loop must *never* strand accepted requests.
        while self.queues.iter().any(|q| !q.is_empty()) {
            let start = self.now.max(self.busy_until);
            self.try_tick(start)?;
        }
        Ok(())
    }

    /// Fire timers due at or before `until`. A due timer triggers a tick
    /// only when the server is free by `until` too — otherwise the timer
    /// stays armed, because arrivals between `until` and the server
    /// freeing belong in that batch.
    fn pump(&mut self, until: u64) -> Result<(), TransducerError> {
        while let Some(deadline) = self.timers.peek_deadline() {
            if deadline > until {
                break;
            }
            let start = deadline.max(self.busy_until);
            if start > until {
                break;
            }
            self.timers.pop();
            self.try_tick(start)?;
        }
        self.now = self.now.max(until.min(self.last_offer));
        Ok(())
    }

    /// Attempt one tick at virtual time `start`: drain eligible requests
    /// (arrived ≤ `start`) up to the per-shard message/byte budgets, run
    /// the driver, charge service time, record latencies. A no-op if
    /// nothing is eligible (stale timer).
    fn try_tick(&mut self, start: u64) -> Result<(), TransducerError> {
        let budget = self.controller.budget();
        let mut drained = std::mem::take(&mut self.drain_scratch);
        drained.clear();
        let mut largest_drain = 0usize;
        for q in &mut self.queues {
            let mut taken = 0usize;
            let mut bytes = 0usize;
            while taken < budget {
                let Some(front) = q.front() else { break };
                if front.arrived > start {
                    break;
                }
                let cost = row_cost(&front.row);
                if taken > 0 && bytes + cost > self.cfg.batch_bytes {
                    break;
                }
                bytes += cost;
                taken += 1;
                drained.push(q.pop_front().expect("front just peeked"));
            }
            largest_drain = largest_drain.max(taken);
        }
        if drained.is_empty() {
            self.drain_scratch = drained;
            return Ok(());
        }
        // Enqueue in global arrival order — the driver assigns message
        // ids sequentially, so ids correlate with arrival order exactly
        // as a serial reference fed the same batches would.
        drained.sort_unstable_by_key(|i| i.seq);
        self.now = self.now.max(start);
        if self.cfg.record_batches {
            self.batch_log.push(
                drained
                    .iter()
                    .map(|i| (i.mailbox.clone(), i.row.clone()))
                    .collect(),
            );
        }
        let wall = std::time::Instant::now();
        for ing in &drained {
            self.driver.enqueue(&ing.mailbox, ing.row.clone())?;
        }
        let out = self.driver.tick()?;
        let service = match self.cfg.service {
            ServiceModel::Measured => (wall.elapsed().as_nanos() as u64).max(1),
            ServiceModel::Fixed {
                tick_ns,
                per_msg_ns,
            } => tick_ns + per_msg_ns * drained.len() as u64,
        };
        self.busy_until = start + service;
        self.now = self.busy_until;
        for ing in &drained {
            self.hist.record(self.busy_until - ing.arrived);
        }
        self.stats.completed += drained.len() as u64;
        self.stats.ticks += 1;
        self.stats.max_batch = self.stats.max_batch.max(drained.len());
        self.collected.responses.extend(out.responses);
        self.collected.sends.extend(out.sends);
        self.collected.warnings.extend(out.warnings);
        self.collected.messages_processed += out.messages_processed;
        if let BatchPolicy::Adaptive { .. } = self.cfg.batch {
            let backlog = self.queues.iter().any(|q| !q.is_empty());
            self.controller.observe(
                largest_drain,
                backlog,
                service,
                self.cfg.latency_target_ns,
            );
        }
        self.stats.budget_peak = self.stats.budget_peak.max(self.controller.budget());
        // Leftover backlog: the server restarts the moment it frees.
        if self.queues.iter().any(|q| !q.is_empty()) {
            self.timers.schedule(self.busy_until);
        }
        drained.clear();
        self.drain_scratch = drained;
        Ok(())
    }

    /// Counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Current adaptive budget.
    pub fn budget(&self) -> usize {
        self.controller.budget()
    }

    /// The enqueue→reply latency histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Current virtual time (ns).
    pub fn virtual_now(&self) -> u64 {
        self.now
    }

    /// Take the accumulated outputs of every tick so far (responses,
    /// sends, warnings, in emission order).
    pub fn take_output(&mut self) -> TickOutput {
        std::mem::take(&mut self.collected)
    }

    /// Take the recorded batch boundaries
    /// ([`ServeConfig::record_batches`]): one `Vec<(mailbox, row)>` per
    /// tick, in the exact order the driver saw them.
    pub fn take_batch_log(&mut self) -> Vec<Vec<(String, Row)>> {
        std::mem::take(&mut self.batch_log)
    }

    /// Read access to the wrapped driver (between ticks).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Unwrap the driver (e.g. to re-wrap the same preloaded state under
    /// a different serving configuration).
    pub fn into_inner(self) -> D {
        self.driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone_and_floor_inverts() {
        let mut last = 0usize;
        for v in [0u64, 1, 5, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let b = LatencyHistogram::bucket_of(v);
            assert!(b >= last, "bucket order broke at {v}");
            last = b;
            let floor = LatencyHistogram::bucket_floor(b);
            assert!(floor <= v, "floor {floor} above value {v}");
            // Floor is inside the same bucket.
            assert_eq!(LatencyHistogram::bucket_of(floor), b, "floor left bucket at {v}");
        }
    }

    #[test]
    fn histogram_percentiles_bracket_known_data() {
        let mut h = LatencyHistogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs..1ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        // ~3% bucket resolution around the true quantiles.
        assert!((480_000..=500_000).contains(&p50), "p50={p50}");
        assert!((950_000..=990_000).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(1.0), 1_000_000);
        assert!(h.mean() > 480_000 && h.mean() < 520_000);
    }

    #[test]
    fn timer_wheel_pops_soonest_first_fifo_on_ties() {
        let mut w = TimerWheel::default();
        w.schedule(30);
        w.schedule(10);
        w.schedule(20);
        w.schedule(10);
        assert_eq!(w.pop(), Some(10));
        assert_eq!(w.pop(), Some(10));
        assert_eq!(w.pop(), Some(20));
        assert_eq!(w.pop(), Some(30));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn controller_grows_under_pressure_shrinks_over_target() {
        let mut c = BatchController::new(64);
        assert_eq!(c.budget(), 1);
        // Backlog + under target: doubles to the cap.
        for _ in 0..10 {
            c.observe(c.budget(), true, 100, 1000);
        }
        assert_eq!(c.budget(), 64);
        // Service blows the target: halves regardless of backlog.
        c.observe(64, true, 5000, 1000);
        assert_eq!(c.budget(), 32);
        // Light load (small drains, no backlog): decays back to 1.
        for _ in 0..10 {
            c.observe(1, false, 100, 1000);
        }
        assert_eq!(c.budget(), 1);
    }

    #[test]
    fn row_cost_counts_string_heap_bytes() {
        let small = row_cost(&vec![Value::Int(1)]);
        let big = row_cost(&vec![Value::Str("x".repeat(100))]);
        assert!(big >= small + 100);
    }
}
