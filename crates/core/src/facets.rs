//! The A, C and T facets: availability, consistency, targets (§6, §7, §9).
//!
//! These are *declarations*, deliberately separated from program semantics:
//! the compiler stages in `hydrolysis` and the deployment machinery in
//! `hydro-deploy` consume them to synthesize replication, coordination, and
//! placement — the developer states *what*, never *how*.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Failure domains across which availability is measured (§6: "VMs, data
/// centers, availability zones, etc."), ordered by containment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureDomain {
    /// A single virtual machine.
    Vm,
    /// A rack of machines.
    Rack,
    /// A data center.
    DataCenter,
    /// An availability zone.
    Az,
}

/// An availability requirement: survive `failures` independent failures
/// across the given domain kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailReq {
    /// Failure-domain granularity defining independence.
    pub domain: FailureDomain,
    /// Number of tolerated independent failures (`f`).
    pub failures: u32,
}

impl AvailReq {
    /// Minimum number of replicas needed: `f + 1`.
    pub fn replicas_needed(&self) -> u32 {
        self.failures + 1
    }
}

impl Default for AvailReq {
    fn default() -> Self {
        AvailReq {
            domain: FailureDomain::Az,
            failures: 0,
        }
    }
}

/// The availability facet: a default plus per-handler overrides (Fig. 3
/// lines 37–39).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AvailabilitySpec {
    /// Default requirement for all handlers.
    pub default: AvailReq,
    /// Per-handler overrides.
    pub per_handler: BTreeMap<String, AvailReq>,
}

impl AvailabilitySpec {
    /// The effective requirement for a handler.
    pub fn for_handler(&self, name: &str) -> AvailReq {
        self.per_handler.get(name).copied().unwrap_or(self.default)
    }
}

/// History-based consistency guarantees, ordered by strength (§7.1).
///
/// The order is the one used by the metaconsistency analysis: a path
/// through the program provides the *weakest* level among its hops, and an
/// endpoint's declared level is satisfied only if every path to it provides
/// at least that level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum ConsistencyLevel {
    /// Convergence only.
    #[default]
    Eventual,
    /// Reads respect causality.
    Causal,
    /// Operations see a consistent snapshot.
    Snapshot,
    /// Operations appear in some total order.
    Sequential,
    /// Transactions appear in a serial order (we group the strongest
    /// history guarantees — serializable/linearizable — at the top as the
    /// paper's `vaccinate` example does).
    Serializable,
}


/// Application-centric invariants (§7.1's second annotation type):
/// predicates on visible state the system must never expose a violation of.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Invariant {
    /// A scalar must remain `>= 0` (Fig. 3's `vaccine_count >= 0`).
    NonNegative(String),
    /// A referenced key must exist (`people.has_key(pid)`); referential
    /// integrity.
    HasKey {
        /// Table name.
        table: String,
        /// Handler parameter holding the key.
        key_param: String,
    },
}

/// A handler's consistency requirement: a history-based level plus
/// application invariants (Fig. 3 line 31).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsistencyReq {
    /// History-based guarantee.
    pub level: ConsistencyLevel,
    /// Application-centric invariants.
    pub invariants: Vec<Invariant>,
}

impl ConsistencyReq {
    /// Plain eventual consistency (the program default).
    pub fn eventual() -> Self {
        Self::default()
    }

    /// Serializable with invariants.
    pub fn serializable(invariants: Vec<Invariant>) -> Self {
        ConsistencyReq {
            level: ConsistencyLevel::Serializable,
            invariants,
        }
    }
}

/// Machine capabilities a handler can demand (Fig. 3's `processor=GPU`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Processor {
    /// General-purpose CPU machines.
    Cpu,
    /// GPU-equipped machines.
    Gpu,
}

/// Per-handler performance/cost targets (Fig. 3 lines 41–43). Money is in
/// integer milli-units so specs stay `Eq`/hashable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetReq {
    /// Latency bound in milliseconds.
    pub latency_ms: Option<u64>,
    /// Per-call cost bound in milli-units (0.01 units → 10).
    pub cost_milli: Option<u64>,
    /// Required processor class.
    pub processor: Option<Processor>,
}

/// The targets facet: default plus per-handler overrides.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Default targets.
    pub default: TargetReq,
    /// Per-handler overrides (absent fields fall back to the default).
    pub per_handler: BTreeMap<String, TargetReq>,
}

impl TargetSpec {
    /// The effective targets for a handler, with field-level fallback.
    pub fn for_handler(&self, name: &str) -> TargetReq {
        let d = self.default;
        match self.per_handler.get(name) {
            None => d,
            Some(o) => TargetReq {
                latency_ms: o.latency_ms.or(d.latency_ms),
                cost_milli: o.cost_milli.or(d.cost_milli),
                processor: o.processor.or(d.processor),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avail_replicas() {
        let r = AvailReq {
            domain: FailureDomain::Az,
            failures: 2,
        };
        assert_eq!(r.replicas_needed(), 3);
    }

    #[test]
    fn consistency_levels_are_ordered() {
        assert!(ConsistencyLevel::Eventual < ConsistencyLevel::Causal);
        assert!(ConsistencyLevel::Causal < ConsistencyLevel::Serializable);
    }

    #[test]
    fn target_field_fallback() {
        let mut spec = TargetSpec {
            default: TargetReq {
                latency_ms: Some(100),
                cost_milli: Some(10),
                processor: None,
            },
            ..TargetSpec::default()
        };
        spec.per_handler.insert(
            "likelihood".into(),
            TargetReq {
                latency_ms: None,
                cost_milli: Some(100),
                processor: Some(Processor::Gpu),
            },
        );
        let t = spec.for_handler("likelihood");
        assert_eq!(t.latency_ms, Some(100)); // fell back
        assert_eq!(t.cost_milli, Some(100)); // overridden
        assert_eq!(t.processor, Some(Processor::Gpu));
        assert_eq!(spec.for_handler("add_person").cost_milli, Some(10));
    }

    #[test]
    fn per_handler_availability_override() {
        let mut spec = AvailabilitySpec {
            default: AvailReq {
                domain: FailureDomain::Az,
                failures: 2,
            },
            ..AvailabilitySpec::default()
        };
        spec.per_handler.insert(
            "likelihood".into(),
            AvailReq {
                domain: FailureDomain::Az,
                failures: 1,
            },
        );
        assert_eq!(spec.for_handler("likelihood").failures, 1);
        assert_eq!(spec.for_handler("anything_else").failures, 2);
    }
}
