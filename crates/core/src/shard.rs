//! Key-partitioned scale-out: N shards of one [`ProgramCore`].
//!
//! The paper's compiler is meant to choose *distribution*, not just
//! evaluation order (§4–5): a Hydrologic program whose handlers only ever
//! touch state keyed by one of their parameters can be split across
//! machines, with the runtime hash-routing each message to the shard that
//! owns its key. [`ShardedTransducer`] is that runtime for one process:
//!
//! * every shard is a full [`Transducer`] instantiated from the **same
//!   shared [`ProgramCore`]** (compilation happens once — the
//!   core/instance split in [`crate::interp`] exists for exactly this);
//! * a [`RoutingSpec`] — produced by `hydro-analysis`'s key-partition
//!   analysis, or written by hand — maps each mailbox to a [`Route`]:
//!   hash-partitioned by one message parameter, or pinned to shard 0
//!   (the *global* shard, where non-partitionable state lives);
//! * [`ShardedTransducer::enqueue`] assigns globally sequential message
//!   ids (so responses correlate exactly as a single transducer's would)
//!   and routes by [`partition_hash`] of the routing parameter;
//! * [`ShardedTransducer::tick`] ticks every shard — untouched shards
//!   no-op in microseconds thanks to cross-tick incremental maintenance —
//!   and merges the per-shard [`TickOutput`]s deterministically: responses
//!   are interleaved per handler in message-id order and sends per handler
//!   in source-message-id order off their recorded provenance — both
//!   reconstruct the exact single-node emission order — while warnings
//!   concatenate in shard order;
//! * [`ShardedTransducer::run_to_quiescence`] rewrites cross-shard `send`
//!   effects into routed re-enqueues: a send whose destination mailbox is
//!   local to the program goes back through the router, landing on the
//!   shard that owns the destination key.
//!
//! Condition-triggered handlers run only on shard 0 (see
//! [`Transducer::set_run_condition_handlers`]): they read global state,
//! and firing them per-shard would duplicate their effects.
//!
//! **Delta exchange.** A routing spec may carry an [`ExchangeSpec`]
//! (lowered by the partition analysis): views the analysis classified
//! `NeedsExchange` — joins/aggregations over partitioned tables — execute
//! *partitioned* instead of demoting their source tables to the global
//! shard. Non-gather shards keep owning their table slices but **ship
//! each tick's net row deltas** ([`Transducer::exchange_delta`], a
//! sorted, final-value fold of the same first-touch effect journal the
//! recovery log uses) to the gather shard (shard 0) at the tick barrier;
//! shard 0 folds them into a foreign mirror
//! ([`Transducer::apply_exchange_delta`]) and evaluates the gather views
//! over local + foreign rows, while the other shards skip those view
//! heads entirely. Because single-node handlers read the *tick-start
//! snapshot* (= end of the previous tick), barrier-shipped foreign rows
//! are observationally indistinguishable from local ones for every
//! consumer the analysis admits — it only plans an exchange when all
//! global consumption of the affected relations is order-insensitive
//! (aggregates, membership, keyed lookups), never ordered row iteration,
//! keyed writes, serialized mid-tick reads, or UDF-bearing views (those
//! still demote; see `hydro_analysis::partition`'s module docs).
//!
//! **Soundness contract.** The driver is exactly as correct as its
//! routing spec. If every handler routed `ByParam(p)` touches only table
//! rows keyed by a pure function of parameter `p` (and no scalars, whole
//! relations, or UDFs), then table contents partition disjointly across
//! shards, per-shard execution observes exactly what single-node
//! execution would, and [`ShardedTransducer::merged_state`] equals the
//! single transducer's state — this is what the differential suite pins
//! for the analysis-produced specs, including the `shards = 1` case,
//! which must be (and is) bit-identical. An unsound hand-written spec
//! silently degrades to "eventually inconsistent sharding"; use the
//! analysis.
//!
//! **Two drivers, one semantics.** [`ShardedTransducer`] ticks its shards
//! sequentially on the calling thread — the minimal-moving-parts
//! reference, whose scale-out win (experiment E16) is *work isolation*: a
//! tick only pays recompute/journal costs on the shards its messages
//! touch. [`ParallelShardedTransducer`] runs the same shards as **one OS
//! worker thread each**, fed per-shard bounded inboxes by a router
//! thread, all sharing the one compiled `Arc<ProgramCore>`; a tick
//! broadcasts through the router, workers tick concurrently, and the
//! coordinator buckets results *by shard index* before running the same
//! deterministic merge — so thread completion order never reaches an
//! observable output, and the parallel driver is bit-identical to the
//! serial one (and hence to the single transducer) by construction. The
//! per-shard inbox FIFO carries ordering end-to-end: enqueues precede the
//! tick that consumes them, and exchange deltas forwarded after tick `T`
//! land on shard 0 before the tick `T+1` broadcast. Experiment E18
//! measures the added multicore scaling on the E16 workload.

use crate::eval::Row;
use crate::interp::{
    ExchangeDelta, ProgramCore, State, TickOutput, Transducer, TransducerError,
};
use crate::value::Value;
use crossbeam::channel;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How messages to one mailbox are distributed across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Hash-partition by the message parameter at this index: the message
    /// goes to shard `partition_hash(row[i]) % shards`.
    ByParam(usize),
    /// Pin to shard 0, the global shard (non-partitionable handlers,
    /// declared mailboxes, condition-handler state).
    Global,
}

/// The delta-exchange plan for one sharded deployment: which partitioned
/// tables ship their per-tick deltas to the gather shard, and which view
/// heads only the gather shard evaluates. Lowered by the partition
/// analysis (`hydro_analysis::partition`); an empty spec means no
/// exchange — PR 4's demote-to-global behavior.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExchangeSpec {
    /// Partitioned tables whose net row changes non-gather shards export
    /// at every tick barrier ([`Transducer::set_exchange_tables`]).
    pub ship_tables: BTreeSet<String>,
    /// View heads computed only on the gather shard, over local + shipped
    /// foreign rows; other shards skip them
    /// ([`Transducer::set_skip_view_heads`]).
    pub gather_views: BTreeSet<String>,
}

impl ExchangeSpec {
    /// Whether this spec plans no exchange at all.
    pub fn is_empty(&self) -> bool {
        self.ship_tables.is_empty()
    }
}

/// Mailbox → [`Route`] map for one program. Mailboxes absent from the map
/// route [`Route::Global`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingSpec {
    /// Per-mailbox routes.
    pub routes: BTreeMap<String, Route>,
    /// The delta-exchange plan (empty = none).
    pub exchange: ExchangeSpec,
}

impl RoutingSpec {
    /// The degenerate spec: everything on shard 0. Always sound.
    pub fn all_global() -> Self {
        RoutingSpec::default()
    }

    /// Builder-style route registration.
    pub fn with_route(mut self, mailbox: &str, route: Route) -> Self {
        self.routes.insert(mailbox.to_string(), route);
        self
    }

    /// The shard a message to `mailbox` with payload `row` belongs to.
    /// Routing parameters out of range (arity-mismatched messages) fall
    /// back to the global shard rather than erroring — the handler itself
    /// will surface the arity problem identically on any shard.
    pub fn shard_of(&self, mailbox: &str, row: &Row, shards: usize) -> usize {
        match self.routes.get(mailbox) {
            Some(Route::ByParam(p)) if *p < row.len() => {
                (partition_hash(&row[*p]) % shards as u64) as usize
            }
            _ => 0,
        }
    }
}

/// Deterministic partition hash of one routing value. Tuples hash as
/// their elements — matching how key expressions spread tuple values into
/// multi-column storage keys — so a tuple-valued routing parameter and
/// the key row it produces agree on a shard.
pub fn partition_hash(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = rustc_hash::FxHasher::default();
    match v {
        Value::Tuple(parts) => {
            for p in parts {
                p.hash(&mut h);
            }
        }
        other => other.hash(&mut h),
    }
    h.finish()
}

/// N key-partitioned shards of one program, driven in lockstep. See the
/// module docs for the routing/merging contract.
pub struct ShardedTransducer {
    core: Arc<ProgramCore>,
    routing: RoutingSpec,
    shards: Vec<Transducer>,
    next_msg_id: u64,
    merge_scratch: MergeScratch,
}

impl ShardedTransducer {
    /// Compile `program` once and instantiate `shards` partitions of it.
    /// `shards` must be at least 1; shard 0 is the global shard.
    pub fn new(
        program: crate::ast::Program,
        routing: RoutingSpec,
        shards: usize,
    ) -> Result<Self, TransducerError> {
        Ok(Self::from_core(ProgramCore::new(program)?, routing, shards))
    }

    /// Instantiate over an already-compiled core.
    pub fn from_core(core: Arc<ProgramCore>, routing: RoutingSpec, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded transducer needs at least one shard");
        let shards = (0..shards)
            .map(|i| configure_shard(&core, i, shards, &routing.exchange))
            .collect();
        ShardedTransducer {
            core,
            routing,
            shards,
            next_msg_id: 1,
            merge_scratch: MergeScratch::default(),
        }
    }

    /// Run `setup` once per shard — how UDF implementations are bound
    /// (each shard gets its own instance, mirroring per-replica
    /// registration in `hydro-deploy`).
    pub fn register_udfs(&mut self, setup: impl Fn(&mut Transducer)) {
        for s in &mut self.shards {
            setup(s);
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard (between ticks).
    pub fn shard(&self, i: usize) -> &Transducer {
        &self.shards[i]
    }

    /// The shared compiled core.
    pub fn core(&self) -> &Arc<ProgramCore> {
        &self.core
    }

    /// The routing spec in force.
    pub fn routing(&self) -> &RoutingSpec {
        &self.routing
    }

    /// Enqueue a message, hash-routing it to its owning shard; returns the
    /// globally sequential message id (identical to what a single
    /// transducer would have assigned).
    pub fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError> {
        if !self.core.has_mailbox(mailbox) {
            return Err(TransducerError::NoSuchMailbox(mailbox.to_string()));
        }
        let shard = self.routing.shard_of(mailbox, &row, self.shards.len());
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.shards[shard].enqueue_with_id(id, mailbox, row)?;
        Ok(id)
    }

    /// Enqueue, panicking on unknown mailbox — for tests and examples.
    pub fn enqueue_ok(&mut self, mailbox: &str, row: Row) -> u64 {
        self.enqueue(mailbox, row).expect("known mailbox")
    }

    /// Messages pending for a mailbox, summed across shards.
    pub fn pending(&self, mailbox: &str) -> usize {
        self.shards.iter().map(|s| s.pending(mailbox)).sum()
    }

    /// Total messages pending across all shards and mailboxes.
    pub fn pending_total(&self) -> usize {
        self.shards.iter().map(Transducer::pending_total).sum()
    }

    /// Execute one tick on every shard, ship exchange deltas to the
    /// gather shard, and merge the outputs. On an evaluation error the
    /// first failing shard's error is returned (shards before it have
    /// already ticked; like a single transducer after an error, the
    /// instance should be considered poisoned).
    pub fn tick(&mut self) -> Result<TickOutput, TransducerError> {
        let mut outs = Vec::with_capacity(self.shards.len());
        for s in &mut self.shards {
            outs.push(s.tick()?);
        }
        // Tick barrier: every shard has committed this tick; ship the net
        // deltas of exchange tables to the gather shard, in shard order
        // (shard partitions are key-disjoint, so the order is cosmetic —
        // it just keeps the journal deterministic). The exported fold
        // reads the effect journal *before* the next tick drains it.
        if !self.routing.exchange.is_empty() {
            for i in 1..self.shards.len() {
                let delta = self.shards[i].exchange_delta();
                if !delta.is_empty() {
                    self.shards[0].apply_exchange_delta(delta);
                }
            }
        }
        Ok(merge_tick_outputs(&self.core, outs, &mut self.merge_scratch))
    }

    /// The union of all shards' states: partitioned tables are disjoint
    /// across shards, global tables live only on shard 0, and scalars are
    /// written only on shard 0 (under a sound routing spec) — so the
    /// merge is shard 0's state plus every other shard's table rows.
    /// (Shard 0's exchange-received *foreign mirror* is deliberately not
    /// part of [`State`]: the owning shards' rows are the authority.)
    pub fn merged_state(&self) -> State {
        merge_states(self.shards.iter().map(|s| s.state().clone()).collect())
    }
}

/// Instantiate and configure one shard over the shared core: condition
/// handlers only on shard 0; exchange export + gather-view skip on every
/// non-gather shard of a multi-shard, exchange-planned deployment. Shared
/// by the serial driver (shards built inline) and the parallel driver
/// (each worker builds its shard on its own thread — [`Transducer`] is
/// deliberately not `Send`, its scan caches and UDF closures are
/// thread-local by design).
fn configure_shard(
    core: &Arc<ProgramCore>,
    index: usize,
    shards: usize,
    exchange: &ExchangeSpec,
) -> Transducer {
    let mut t = Transducer::from_core(Arc::clone(core));
    if index > 0 {
        t.set_run_condition_handlers(false);
        if shards > 1 && !exchange.is_empty() {
            t.set_exchange_tables(exchange.ship_tables.iter().cloned());
            t.set_skip_view_heads(exchange.gather_views.iter().cloned());
        }
    }
    t
}

/// Merge per-shard states, `states[0]` being the global/gather shard (see
/// [`ShardedTransducer::merged_state`]).
fn merge_states(mut states: Vec<State>) -> State {
    let mut state = states.remove(0);
    for s in states {
        for (table, rows) in s.tables {
            let slot = state.tables.entry(table).or_default();
            for (k, row) in rows {
                slot.insert(k, row);
            }
        }
    }
    state
}

/// Pooled scratch for [`merge_tick_outputs`]: the handler × shard bucket
/// vectors and the handler-name index, owned by each sharded driver and
/// reused across ticks. Buckets hold `u32` *indices* into the per-shard
/// outputs rather than borrows, so the scratch has no lifetime tie to any
/// one tick and a steady-state merge allocates nothing (the serving loop
/// merges once per micro-batch tick — this was the top per-tick
/// allocation hot spot at batch=1).
#[derive(Default)]
struct MergeScratch {
    /// handler → shard → indices into that shard's `responses`.
    resp: Vec<Vec<Vec<u32>>>,
    /// handler → shard → indices into that shard's `sends`.
    send: Vec<Vec<Vec<u32>>>,
    /// Handler name → program-order index, built on first use (the
    /// handler set is fixed per core).
    handler_idx: rustc_hash::FxHashMap<String, usize>,
}

impl MergeScratch {
    /// Size the buckets for this tick's shape and clear them in place
    /// (inner vectors keep their capacity).
    fn reset(&mut self, core: &ProgramCore, shards: usize) {
        let handlers = &core.program().handlers;
        if self.handler_idx.is_empty() {
            for (i, h) in handlers.iter().enumerate() {
                self.handler_idx.insert(h.name.clone(), i);
            }
        }
        for buckets in [&mut self.resp, &mut self.send] {
            buckets.resize_with(handlers.len(), Vec::new);
            for per_shard in buckets.iter_mut() {
                per_shard.resize_with(shards, Vec::new);
                for idxs in per_shard.iter_mut() {
                    idxs.clear();
                }
            }
        }
    }
}

/// Deterministically merge per-shard tick outputs, `outs` in shard order
/// (see the module docs). Shared by the serial and parallel drivers —
/// bit-identical merging is the whole determinism story, so there is
/// exactly one implementation.
fn merge_tick_outputs(
    core: &ProgramCore,
    outs: Vec<TickOutput>,
    scratch: &mut MergeScratch,
) -> TickOutput {
    let mut merged = TickOutput {
        messages_processed: outs.iter().map(|o| o.messages_processed).sum(),
        ..TickOutput::default()
    };
    scratch.reset(core, outs.len());
    // Responses: the single-node order is (handler in program order,
    // then message id). Each shard already emits that order over its
    // message subset, so bucketing every response by handler in one
    // pass and then merging each handler's per-shard runs by leading
    // message id reconstructs it exactly; responses of one message
    // stay contiguous (they come from a single shard).
    for (shard, out) in outs.iter().enumerate() {
        debug_assert!(out.responses.len() < u32::MAX as usize);
        for (i, r) in out.responses.iter().enumerate() {
            let hi = scratch.handler_idx[r.handler.as_str()];
            scratch.resp[hi][shard].push(i as u32);
        }
    }
    for per_shard in &scratch.resp {
        let mut runs: Vec<std::iter::Peekable<std::slice::Iter<'_, u32>>> =
            per_shard.iter().map(|idxs| idxs.iter().peekable()).collect();
        loop {
            let next = runs
                .iter_mut()
                .enumerate()
                .filter_map(|(i, it)| {
                    it.peek()
                        .map(|&&idx| (outs[i].responses[idx as usize].message_id, i))
                })
                .min();
            let Some((id, i)) = next else { break };
            while let Some(&&idx) = runs[i].peek() {
                let r = &outs[i].responses[idx as usize];
                if r.message_id != id {
                    break;
                }
                merged.responses.push(r.clone());
                runs[i].next();
            }
        }
    }
    // Sends: same reconstruction, keyed by the producing invocation's
    // provenance ([`crate::interp::SendOut::handler`] +
    // [`crate::interp::SendOut::source_msg`]). Each shard emits its
    // sends in (handler program order, message id, statement order);
    // bucketing by handler and merging each handler's per-shard runs
    // by source message id — keeping one invocation's sends contiguous
    // — is exactly the single-node emission order. Condition-handler
    // sends (source id 0) only ever come from shard 0, so they can't
    // collide across runs.
    for (shard, out) in outs.iter().enumerate() {
        debug_assert!(out.sends.len() < u32::MAX as usize);
        for (i, s) in out.sends.iter().enumerate() {
            let hi = scratch.handler_idx[s.handler.as_str()];
            scratch.send[hi][shard].push(i as u32);
        }
    }
    for per_shard in &scratch.send {
        let mut runs: Vec<std::iter::Peekable<std::slice::Iter<'_, u32>>> =
            per_shard.iter().map(|idxs| idxs.iter().peekable()).collect();
        loop {
            let next = runs
                .iter_mut()
                .enumerate()
                .filter_map(|(i, it)| {
                    it.peek()
                        .map(|&&idx| (outs[i].sends[idx as usize].source_msg, i))
                })
                .min();
            let Some((id, i)) = next else { break };
            while let Some(&&idx) = runs[i].peek() {
                let s = &outs[i].sends[idx as usize];
                if s.source_msg != id {
                    break;
                }
                merged.sends.push(s.clone());
                runs[i].next();
            }
        }
    }
    for out in outs {
        merged.warnings.extend(out.warnings);
    }
    merged
}

impl ShardedTransducer {
    /// Read a scalar (scalars are global: shard 0 owns them).
    pub fn scalar(&self, name: &str) -> Option<&Value> {
        self.shards[0].scalar(name)
    }

    /// Read a table row by key, wherever its shard is.
    pub fn row(&self, table: &str, key: &[Value]) -> Option<&Row> {
        self.shards.iter().find_map(|s| s.row(table, key))
    }

    /// Total rows of a table across shards.
    pub fn table_len(&self, table: &str) -> usize {
        self.shards.iter().map(|s| s.table_len(table)).sum()
    }

    /// Ticks executed so far (shards run in lockstep).
    pub fn tick_no(&self) -> u64 {
        self.shards[0].tick_no()
    }

    /// Convenience driver mirroring [`Transducer::run_to_quiescence`]:
    /// repeatedly tick, re-routing any sends whose mailbox exists locally
    /// through the partition router (the "cross-shard send → routed
    /// re-enqueue" rewrite). External sends accumulate in the returned
    /// output. Stops when quiescent or after `max_ticks`.
    ///
    /// Because [`Self::tick`] merges sends in exact single-node emission
    /// order (via [`crate::interp::SendOut`] provenance), the re-enqueues
    /// here assign the same message ids a single transducer's
    /// `run_to_quiescence` would — cross-shard message cascades replay the
    /// single-node interleaving exactly, not just as a multiset.
    pub fn run_to_quiescence(&mut self, max_ticks: usize) -> Result<TickOutput, TransducerError> {
        let mut all = TickOutput::default();
        for _ in 0..max_ticks {
            if self.pending_total() == 0 {
                break;
            }
            let out = self.tick()?;
            all.responses.extend(out.responses);
            all.warnings.extend(out.warnings);
            all.messages_processed += out.messages_processed;
            for send in out.sends {
                if self.core.has_mailbox(&send.mailbox) {
                    self.enqueue(&send.mailbox, send.row)?;
                } else {
                    all.sends.push(send);
                }
            }
        }
        Ok(all)
    }
}

// ---- the parallel driver -----------------------------------------------

/// How the coordinator's UDF registration closure travels to every worker
/// thread (each worker applies it to its own shard instance).
type UdfSetup = Arc<dyn Fn(&mut Transducer) + Send + Sync>;

/// One instruction to a shard worker. Everything a worker does arrives
/// through its inbox in FIFO order — that single queue *is* the ordering
/// contract: enqueues precede the tick that consumes them, exchange
/// deltas from tick `T` precede the tick `T+1` broadcast.
#[derive(Clone)]
enum WorkerCmd {
    /// A routed message under its coordinator-assigned global id.
    Enqueue { id: u64, mailbox: String, row: Row },
    /// Run one tick and report a [`WorkerDone`].
    Tick,
    /// Fold another shard's exchange delta (gather shard only).
    ApplyExchange(ExchangeDelta),
    /// Reply with `(shard index, state clone)` on the given channel.
    Snapshot(channel::Sender<(usize, State)>),
    /// Apply the UDF registration closure to this shard.
    Udfs(UdfSetup),
    /// Exit the worker loop.
    Shutdown,
}

/// One instruction to the router thread, which owns the [`RoutingSpec`]
/// and the per-shard inbox senders.
enum RouterCmd {
    /// Hash-route a message to its owning shard's inbox.
    Route { id: u64, mailbox: String, row: Row },
    /// Forward a command to one shard's inbox.
    ToShard { shard: usize, cmd: WorkerCmd },
    /// Clone a command into every shard's inbox.
    Broadcast(WorkerCmd),
}

/// A worker's report after one tick.
struct WorkerDone {
    shard: usize,
    result: Result<TickOutput, TransducerError>,
    /// Messages left pending on this shard after the tick.
    pending: usize,
    /// This shard's exchange export for the tick (empty off non-exchange
    /// configurations and on the gather shard).
    exchange: ExchangeDelta,
}

/// Per-shard inbox capacity. Bounded so a fast coordinator/router cannot
/// run unboundedly ahead of a slow worker — `send` blocks, applying
/// backpressure upstream.
const INBOX_CAP: usize = 4096;

/// [`ShardedTransducer`]'s semantics on worker threads: one OS thread per
/// shard plus a router thread, communicating over bounded channels. See
/// the module docs for the architecture and the determinism argument; the
/// differential suite pins bit-identity against the serial driver and the
/// single transducer, and `scripts/ci.sh` double-runs it as a race
/// tripwire.
///
/// The API mirrors the serial driver where it can. The one structural
/// difference: shards live on their worker threads ([`Transducer`] is not
/// `Send`), so there is no `shard(i)` accessor — state inspection goes
/// through [`ParallelShardedTransducer::merged_state`], which snapshots
/// every worker over a reply channel.
pub struct ParallelShardedTransducer {
    core: Arc<ProgramCore>,
    shards: usize,
    next_msg_id: u64,
    tick_no: u64,
    router_tx: Option<channel::Sender<RouterCmd>>,
    done_rx: channel::Receiver<WorkerDone>,
    router: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Pending-message count each shard reported after its last tick.
    last_pending: Vec<usize>,
    /// Messages routed since the last tick (they drain at the next one).
    enqueued_since: usize,
    merge_scratch: MergeScratch,
}

impl ParallelShardedTransducer {
    /// Compile `program` once and spawn `shards` worker threads plus the
    /// router. Shard 0 is the global/gather shard.
    pub fn new(
        program: crate::ast::Program,
        routing: RoutingSpec,
        shards: usize,
    ) -> Result<Self, TransducerError> {
        Ok(Self::from_core(ProgramCore::new(program)?, routing, shards))
    }

    /// Spawn over an already-compiled core. Each worker constructs its
    /// shard *on its own thread* (the instance never crosses threads) via
    /// the same [`configure_shard`] the serial driver uses.
    pub fn from_core(core: Arc<ProgramCore>, routing: RoutingSpec, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded transducer needs at least one shard");
        let (done_tx, done_rx) = channel::unbounded();
        let mut inboxes = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = channel::bounded(INBOX_CAP);
            inboxes.push(tx);
            let core = Arc::clone(&core);
            let done_tx = done_tx.clone();
            let exchange = routing.exchange.clone();
            let handle = std::thread::Builder::new()
                .name(format!("hydro-shard-{i}"))
                .spawn(move || worker_loop(core, i, shards, exchange, rx, done_tx))
                .expect("spawn shard worker thread");
            workers.push(handle);
        }
        let (router_tx, router_rx) = channel::bounded::<RouterCmd>(INBOX_CAP);
        let router = std::thread::Builder::new()
            .name("hydro-router".into())
            .spawn(move || router_loop(router_rx, inboxes, routing, shards))
            .expect("spawn shard router thread");
        ParallelShardedTransducer {
            core,
            shards,
            next_msg_id: 1,
            tick_no: 0,
            router_tx: Some(router_tx),
            done_rx,
            router: Some(router),
            workers,
            last_pending: vec![0; shards],
            enqueued_since: 0,
            merge_scratch: MergeScratch::default(),
        }
    }

    /// Broadcast the UDF registration closure; every worker applies it to
    /// its own shard instance (mirroring the serial driver's
    /// [`ShardedTransducer::register_udfs`], with the `Send + Sync`
    /// bounds crossing threads requires).
    pub fn register_udfs(&mut self, setup: impl Fn(&mut Transducer) + Send + Sync + 'static) {
        self.send_router(RouterCmd::Broadcast(WorkerCmd::Udfs(Arc::new(setup))));
    }

    /// Number of shards (= worker threads).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shared compiled core.
    pub fn core(&self) -> &Arc<ProgramCore> {
        &self.core
    }

    /// Enqueue a message: assign the globally sequential id here (ids are
    /// the merge key, the coordinator must own them) and hand the routing
    /// decision to the router thread.
    pub fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError> {
        if !self.core.has_mailbox(mailbox) {
            return Err(TransducerError::NoSuchMailbox(mailbox.to_string()));
        }
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.enqueued_since += 1;
        self.send_router(RouterCmd::Route {
            id,
            mailbox: mailbox.to_string(),
            row,
        });
        Ok(id)
    }

    /// Enqueue, panicking on unknown mailbox — for tests and examples.
    pub fn enqueue_ok(&mut self, mailbox: &str, row: Row) -> u64 {
        self.enqueue(mailbox, row).expect("known mailbox")
    }

    /// Total messages pending across all shards: what the workers
    /// reported after their last tick, plus everything routed since
    /// (inbox FIFO guarantees those are consumed by the next tick).
    pub fn pending_total(&self) -> usize {
        self.last_pending.iter().sum::<usize>() + self.enqueued_since
    }

    /// Ticks executed so far (shards run in lockstep).
    pub fn tick_no(&self) -> u64 {
        self.tick_no
    }

    /// Execute one tick on every shard *concurrently* and merge the
    /// outputs deterministically: broadcast `Tick`, collect one
    /// [`WorkerDone`] per shard in whatever order threads finish, bucket
    /// by shard index, then run the same merge as the serial driver —
    /// completion order never reaches an observable output. Exchange
    /// deltas are forwarded to the gather shard after all workers report
    /// (the tick barrier); per-inbox FIFO applies them before the next
    /// tick. On evaluation errors the lowest-numbered failing shard's
    /// error is returned, matching the serial driver's first-error
    /// semantics.
    pub fn tick(&mut self) -> Result<TickOutput, TransducerError> {
        self.tick_no += 1;
        self.enqueued_since = 0;
        self.send_router(RouterCmd::Broadcast(WorkerCmd::Tick));
        let mut outs: Vec<Option<TickOutput>> = (0..self.shards).map(|_| None).collect();
        let mut exchanges: Vec<ExchangeDelta> = vec![ExchangeDelta::new(); self.shards];
        let mut first_err: Option<(usize, TransducerError)> = None;
        for _ in 0..self.shards {
            let done = self
                .done_rx
                .recv()
                .unwrap_or_else(|_| panic!("shard worker disconnected mid-tick"));
            self.last_pending[done.shard] = done.pending;
            exchanges[done.shard] = done.exchange;
            match done.result {
                Ok(out) => outs[done.shard] = Some(out),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(s, _)| done.shard < *s) {
                        first_err = Some((done.shard, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        for delta in exchanges.into_iter().skip(1) {
            if !delta.is_empty() {
                self.send_router(RouterCmd::ToShard {
                    shard: 0,
                    cmd: WorkerCmd::ApplyExchange(delta),
                });
            }
        }
        let outs: Vec<TickOutput> = outs
            .into_iter()
            .map(|o| o.expect("every shard reported exactly once"))
            .collect();
        Ok(merge_tick_outputs(&self.core, outs, &mut self.merge_scratch))
    }

    /// Snapshot and merge every shard's state (see
    /// [`ShardedTransducer::merged_state`] for the merge rule). Workers
    /// reply with clones over a bounded channel; per-inbox FIFO means the
    /// snapshot reflects everything sent before this call.
    pub fn merged_state(&self) -> State {
        let (tx, rx) = channel::bounded::<(usize, State)>(self.shards);
        self.send_router(RouterCmd::Broadcast(WorkerCmd::Snapshot(tx)));
        let mut states: Vec<Option<State>> = (0..self.shards).map(|_| None).collect();
        for _ in 0..self.shards {
            let (i, s) = rx.recv().expect("shard worker disconnected mid-snapshot");
            states[i] = Some(s);
        }
        merge_states(
            states
                .into_iter()
                .map(|s| s.expect("every shard replied"))
                .collect(),
        )
    }

    /// Read a scalar through a snapshot (scalars are global: shard 0 owns
    /// them). For between-tick inspection; costs a state clone.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        let (tx, rx) = channel::bounded::<(usize, State)>(1);
        self.send_router(RouterCmd::ToShard {
            shard: 0,
            cmd: WorkerCmd::Snapshot(tx),
        });
        let (_, s) = rx.recv().expect("shard worker disconnected mid-snapshot");
        s.scalars.get(name).cloned()
    }

    /// Convenience driver mirroring
    /// [`ShardedTransducer::run_to_quiescence`]: repeatedly tick,
    /// re-routing sends whose mailbox exists locally; external sends
    /// accumulate in the returned output.
    pub fn run_to_quiescence(&mut self, max_ticks: usize) -> Result<TickOutput, TransducerError> {
        let mut all = TickOutput::default();
        for _ in 0..max_ticks {
            if self.pending_total() == 0 {
                break;
            }
            let out = self.tick()?;
            all.responses.extend(out.responses);
            all.warnings.extend(out.warnings);
            all.messages_processed += out.messages_processed;
            for send in out.sends {
                if self.core.has_mailbox(&send.mailbox) {
                    self.enqueue(&send.mailbox, send.row)?;
                } else {
                    all.sends.push(send);
                }
            }
        }
        Ok(all)
    }

    fn send_router(&self, cmd: RouterCmd) {
        let tx = self.router_tx.as_ref().expect("router alive until drop");
        if tx.send(cmd).is_err() {
            panic!("shard router disconnected");
        }
    }
}

impl Drop for ParallelShardedTransducer {
    /// Orderly teardown: ask every worker to exit, close the router
    /// channel, join all threads. Workers also exit if their inbox
    /// disconnects, so a panicking coordinator still unwinds cleanly.
    fn drop(&mut self) {
        if let Some(tx) = self.router_tx.take() {
            let _ = tx.send(RouterCmd::Broadcast(WorkerCmd::Shutdown));
            drop(tx);
        }
        if let Some(r) = self.router.take() {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The router thread: owns the routing spec and every shard's inbox
/// sender. Sequential, so commands fan out to inboxes in exactly the
/// order the coordinator issued them — the FIFO ordering contract rests
/// here. Exits when the coordinator drops its sender; dropping the
/// inboxes then releases the workers.
fn router_loop(
    rx: channel::Receiver<RouterCmd>,
    inboxes: Vec<channel::Sender<WorkerCmd>>,
    routing: RoutingSpec,
    shards: usize,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            RouterCmd::Route { id, mailbox, row } => {
                let shard = routing.shard_of(&mailbox, &row, shards);
                let _ = inboxes[shard].send(WorkerCmd::Enqueue { id, mailbox, row });
            }
            RouterCmd::ToShard { shard, cmd } => {
                let _ = inboxes[shard].send(cmd);
            }
            RouterCmd::Broadcast(cmd) => {
                for tx in &inboxes {
                    let _ = tx.send(cmd.clone());
                }
            }
        }
    }
}

/// One shard's worker thread: build the shard here (it never crosses
/// threads), then serve inbox commands until shutdown or disconnect.
fn worker_loop(
    core: Arc<ProgramCore>,
    shard: usize,
    shards: usize,
    exchange: ExchangeSpec,
    rx: channel::Receiver<WorkerCmd>,
    done_tx: channel::Sender<WorkerDone>,
) {
    let mut t = configure_shard(&core, shard, shards, &exchange);
    while let Ok(cmd) = rx.recv() {
        match cmd {
            WorkerCmd::Enqueue { id, mailbox, row } => {
                // The coordinator validated the mailbox against the core.
                let _ = t.enqueue_with_id(id, &mailbox, row);
            }
            WorkerCmd::Tick => {
                let result = t.tick();
                let exchange = if shard > 0 {
                    t.exchange_delta()
                } else {
                    ExchangeDelta::new()
                };
                let done = WorkerDone {
                    shard,
                    result,
                    pending: t.pending_total(),
                    exchange,
                };
                if done_tx.send(done).is_err() {
                    break; // coordinator gone
                }
            }
            WorkerCmd::ApplyExchange(delta) => t.apply_exchange_delta(delta),
            WorkerCmd::Snapshot(reply) => {
                let _ = reply.send((shard, t.state().clone()));
            }
            WorkerCmd::Udfs(setup) => setup(&mut t),
            WorkerCmd::Shutdown => break,
        }
    }
}
