//! Key-partitioned scale-out: N shards of one [`ProgramCore`].
//!
//! The paper's compiler is meant to choose *distribution*, not just
//! evaluation order (§4–5): a Hydrologic program whose handlers only ever
//! touch state keyed by one of their parameters can be split across
//! machines, with the runtime hash-routing each message to the shard that
//! owns its key. [`ShardedTransducer`] is that runtime for one process:
//!
//! * every shard is a full [`Transducer`] instantiated from the **same
//!   shared [`ProgramCore`]** (compilation happens once — the
//!   core/instance split in [`crate::interp`] exists for exactly this);
//! * a [`RoutingSpec`] — produced by `hydro-analysis`'s key-partition
//!   analysis, or written by hand — maps each mailbox to a [`Route`]:
//!   hash-partitioned by one message parameter, or pinned to shard 0
//!   (the *global* shard, where non-partitionable state lives);
//! * [`ShardedTransducer::enqueue`] assigns globally sequential message
//!   ids (so responses correlate exactly as a single transducer's would)
//!   and routes by [`partition_hash`] of the routing parameter;
//! * [`ShardedTransducer::tick`] ticks every shard — untouched shards
//!   no-op in microseconds thanks to cross-tick incremental maintenance —
//!   and merges the per-shard [`TickOutput`]s deterministically: responses
//!   are interleaved per handler in message-id order and sends per handler
//!   in source-message-id order off their recorded provenance — both
//!   reconstruct the exact single-node emission order — while warnings
//!   concatenate in shard order;
//! * [`ShardedTransducer::run_to_quiescence`] rewrites cross-shard `send`
//!   effects into routed re-enqueues: a send whose destination mailbox is
//!   local to the program goes back through the router, landing on the
//!   shard that owns the destination key.
//!
//! Condition-triggered handlers run only on shard 0 (see
//! [`Transducer::set_run_condition_handlers`]): they read global state,
//! and firing them per-shard would duplicate their effects.
//!
//! **Soundness contract.** The driver is exactly as correct as its
//! routing spec. If every handler routed `ByParam(p)` touches only table
//! rows keyed by a pure function of parameter `p` (and no scalars, whole
//! relations, or UDFs), then table contents partition disjointly across
//! shards, per-shard execution observes exactly what single-node
//! execution would, and [`ShardedTransducer::merged_state`] equals the
//! single transducer's state — this is what the differential suite pins
//! for the analysis-produced specs, including the `shards = 1` case,
//! which must be (and is) bit-identical. An unsound hand-written spec
//! silently degrades to "eventually inconsistent sharding"; use the
//! analysis.
//!
//! Shards tick sequentially in this driver (the container the benchmarks
//! run on has one core); nothing mutable is shared between shards, so a
//! parallel driver is a mechanical follow-up where cores exist. The
//! scale-out win measured by experiment E16 is *work isolation*: a tick
//! only pays recompute/journal costs on the shards its messages touch,
//! so workloads with key locality see near-linear per-tick speedups even
//! single-threaded.

use crate::eval::Row;
use crate::interp::{ProgramCore, State, TickOutput, Transducer, TransducerError};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How messages to one mailbox are distributed across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Hash-partition by the message parameter at this index: the message
    /// goes to shard `partition_hash(row[i]) % shards`.
    ByParam(usize),
    /// Pin to shard 0, the global shard (non-partitionable handlers,
    /// declared mailboxes, condition-handler state).
    Global,
}

/// Mailbox → [`Route`] map for one program. Mailboxes absent from the map
/// route [`Route::Global`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingSpec {
    /// Per-mailbox routes.
    pub routes: BTreeMap<String, Route>,
}

impl RoutingSpec {
    /// The degenerate spec: everything on shard 0. Always sound.
    pub fn all_global() -> Self {
        RoutingSpec::default()
    }

    /// Builder-style route registration.
    pub fn with_route(mut self, mailbox: &str, route: Route) -> Self {
        self.routes.insert(mailbox.to_string(), route);
        self
    }

    /// The shard a message to `mailbox` with payload `row` belongs to.
    /// Routing parameters out of range (arity-mismatched messages) fall
    /// back to the global shard rather than erroring — the handler itself
    /// will surface the arity problem identically on any shard.
    pub fn shard_of(&self, mailbox: &str, row: &Row, shards: usize) -> usize {
        match self.routes.get(mailbox) {
            Some(Route::ByParam(p)) if *p < row.len() => {
                (partition_hash(&row[*p]) % shards as u64) as usize
            }
            _ => 0,
        }
    }
}

/// Deterministic partition hash of one routing value. Tuples hash as
/// their elements — matching how key expressions spread tuple values into
/// multi-column storage keys — so a tuple-valued routing parameter and
/// the key row it produces agree on a shard.
pub fn partition_hash(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = rustc_hash::FxHasher::default();
    match v {
        Value::Tuple(parts) => {
            for p in parts {
                p.hash(&mut h);
            }
        }
        other => other.hash(&mut h),
    }
    h.finish()
}

/// N key-partitioned shards of one program, driven in lockstep. See the
/// module docs for the routing/merging contract.
pub struct ShardedTransducer {
    core: Arc<ProgramCore>,
    routing: RoutingSpec,
    shards: Vec<Transducer>,
    next_msg_id: u64,
}

impl ShardedTransducer {
    /// Compile `program` once and instantiate `shards` partitions of it.
    /// `shards` must be at least 1; shard 0 is the global shard.
    pub fn new(
        program: crate::ast::Program,
        routing: RoutingSpec,
        shards: usize,
    ) -> Result<Self, TransducerError> {
        Ok(Self::from_core(ProgramCore::new(program)?, routing, shards))
    }

    /// Instantiate over an already-compiled core.
    pub fn from_core(core: Arc<ProgramCore>, routing: RoutingSpec, shards: usize) -> Self {
        assert!(shards >= 1, "a sharded transducer needs at least one shard");
        let shards = (0..shards)
            .map(|i| {
                let mut t = Transducer::from_core(Arc::clone(&core));
                if i > 0 {
                    t.set_run_condition_handlers(false);
                }
                t
            })
            .collect();
        ShardedTransducer {
            core,
            routing,
            shards,
            next_msg_id: 1,
        }
    }

    /// Run `setup` once per shard — how UDF implementations are bound
    /// (each shard gets its own instance, mirroring per-replica
    /// registration in `hydro-deploy`).
    pub fn register_udfs(&mut self, setup: impl Fn(&mut Transducer)) {
        for s in &mut self.shards {
            setup(s);
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard (between ticks).
    pub fn shard(&self, i: usize) -> &Transducer {
        &self.shards[i]
    }

    /// The shared compiled core.
    pub fn core(&self) -> &Arc<ProgramCore> {
        &self.core
    }

    /// The routing spec in force.
    pub fn routing(&self) -> &RoutingSpec {
        &self.routing
    }

    /// Enqueue a message, hash-routing it to its owning shard; returns the
    /// globally sequential message id (identical to what a single
    /// transducer would have assigned).
    pub fn enqueue(&mut self, mailbox: &str, row: Row) -> Result<u64, TransducerError> {
        if !self.core.has_mailbox(mailbox) {
            return Err(TransducerError::NoSuchMailbox(mailbox.to_string()));
        }
        let shard = self.routing.shard_of(mailbox, &row, self.shards.len());
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.shards[shard].enqueue_with_id(id, mailbox, row)?;
        Ok(id)
    }

    /// Enqueue, panicking on unknown mailbox — for tests and examples.
    pub fn enqueue_ok(&mut self, mailbox: &str, row: Row) -> u64 {
        self.enqueue(mailbox, row).expect("known mailbox")
    }

    /// Messages pending for a mailbox, summed across shards.
    pub fn pending(&self, mailbox: &str) -> usize {
        self.shards.iter().map(|s| s.pending(mailbox)).sum()
    }

    /// Total messages pending across all shards and mailboxes.
    pub fn pending_total(&self) -> usize {
        self.shards.iter().map(Transducer::pending_total).sum()
    }

    /// Execute one tick on every shard and merge the outputs. On an
    /// evaluation error the first failing shard's error is returned
    /// (shards before it have already ticked; like a single transducer
    /// after an error, the instance should be considered poisoned).
    pub fn tick(&mut self) -> Result<TickOutput, TransducerError> {
        let mut outs = Vec::with_capacity(self.shards.len());
        for s in &mut self.shards {
            outs.push(s.tick()?);
        }
        Ok(self.merge_outputs(outs))
    }

    /// Deterministically merge per-shard tick outputs (see module docs).
    fn merge_outputs(&self, outs: Vec<TickOutput>) -> TickOutput {
        let mut merged = TickOutput {
            messages_processed: outs.iter().map(|o| o.messages_processed).sum(),
            ..TickOutput::default()
        };
        // Responses: the single-node order is (handler in program order,
        // then message id). Each shard already emits that order over its
        // message subset, so bucketing every response by handler in one
        // pass and then merging each handler's per-shard runs by leading
        // message id reconstructs it exactly; responses of one message
        // stay contiguous (they come from a single shard).
        let handlers = &self.core.program().handlers;
        let handler_idx: std::collections::BTreeMap<&str, usize> = handlers
            .iter()
            .enumerate()
            .map(|(i, h)| (h.name.as_str(), i))
            .collect();
        let mut buckets: Vec<Vec<Vec<&crate::interp::Response>>> =
            vec![vec![Vec::new(); outs.len()]; handlers.len()];
        for (shard, out) in outs.iter().enumerate() {
            for r in &out.responses {
                let hi = handler_idx[r.handler.as_str()];
                buckets[hi][shard].push(r);
            }
        }
        for per_shard in &buckets {
            let mut runs: Vec<std::iter::Peekable<_>> = per_shard
                .iter()
                .map(|rs| rs.iter().peekable())
                .collect();
            loop {
                let next = runs
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(i, it)| it.peek().map(|r| (r.message_id, i)))
                    .min();
                let Some((id, i)) = next else { break };
                while let Some(r) = runs[i].peek() {
                    if r.message_id != id {
                        break;
                    }
                    merged.responses.push((**r).clone());
                    runs[i].next();
                }
            }
        }
        // Sends: same reconstruction, keyed by the producing invocation's
        // provenance ([`crate::interp::SendOut::handler`] +
        // [`crate::interp::SendOut::source_msg`]). Each shard emits its
        // sends in (handler program order, message id, statement order);
        // bucketing by handler and merging each handler's per-shard runs
        // by source message id — keeping one invocation's sends contiguous
        // — is exactly the single-node emission order. Condition-handler
        // sends (source id 0) only ever come from shard 0, so they can't
        // collide across runs.
        let mut send_buckets: Vec<Vec<Vec<&crate::interp::SendOut>>> =
            vec![vec![Vec::new(); outs.len()]; handlers.len()];
        for (shard, out) in outs.iter().enumerate() {
            for s in &out.sends {
                let hi = handler_idx[s.handler.as_str()];
                send_buckets[hi][shard].push(s);
            }
        }
        for per_shard in &send_buckets {
            let mut runs: Vec<std::iter::Peekable<_>> = per_shard
                .iter()
                .map(|ss| ss.iter().peekable())
                .collect();
            loop {
                let next = runs
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(i, it)| it.peek().map(|s| (s.source_msg, i)))
                    .min();
                let Some((id, i)) = next else { break };
                while let Some(s) = runs[i].peek() {
                    if s.source_msg != id {
                        break;
                    }
                    merged.sends.push((**s).clone());
                    runs[i].next();
                }
            }
        }
        for out in outs {
            merged.warnings.extend(out.warnings);
        }
        merged
    }

    /// The union of all shards' states: partitioned tables are disjoint
    /// across shards, global tables live only on shard 0, and scalars are
    /// written only on shard 0 (under a sound routing spec) — so the
    /// merge is shard 0's state plus every other shard's table rows.
    pub fn merged_state(&self) -> State {
        let mut state = self.shards[0].state().clone();
        for s in &self.shards[1..] {
            for (table, rows) in &s.state().tables {
                let slot = state.tables.entry(table.clone()).or_default();
                for (k, row) in rows {
                    slot.insert(k.clone(), row.clone());
                }
            }
        }
        state
    }

    /// Read a scalar (scalars are global: shard 0 owns them).
    pub fn scalar(&self, name: &str) -> Option<&Value> {
        self.shards[0].scalar(name)
    }

    /// Read a table row by key, wherever its shard is.
    pub fn row(&self, table: &str, key: &[Value]) -> Option<&Row> {
        self.shards.iter().find_map(|s| s.row(table, key))
    }

    /// Total rows of a table across shards.
    pub fn table_len(&self, table: &str) -> usize {
        self.shards.iter().map(|s| s.table_len(table)).sum()
    }

    /// Ticks executed so far (shards run in lockstep).
    pub fn tick_no(&self) -> u64 {
        self.shards[0].tick_no()
    }

    /// Convenience driver mirroring [`Transducer::run_to_quiescence`]:
    /// repeatedly tick, re-routing any sends whose mailbox exists locally
    /// through the partition router (the "cross-shard send → routed
    /// re-enqueue" rewrite). External sends accumulate in the returned
    /// output. Stops when quiescent or after `max_ticks`.
    ///
    /// Because [`Self::tick`] merges sends in exact single-node emission
    /// order (via [`crate::interp::SendOut`] provenance), the re-enqueues
    /// here assign the same message ids a single transducer's
    /// `run_to_quiescence` would — cross-shard message cascades replay the
    /// single-node interleaving exactly, not just as a multiset.
    pub fn run_to_quiescence(&mut self, max_ticks: usize) -> Result<TickOutput, TransducerError> {
        let mut all = TickOutput::default();
        for _ in 0..max_ticks {
            if self.pending_total() == 0 {
                break;
            }
            let out = self.tick()?;
            all.responses.extend(out.responses);
            all.warnings.extend(out.warnings);
            all.messages_processed += out.messages_processed;
            for send in out.sends {
                if self.core.has_mailbox(&send.mailbox) {
                    self.enqueue(&send.mailbox, send.row)?;
                } else {
                    all.sends.push(send);
                }
            }
        }
        Ok(all)
    }
}
