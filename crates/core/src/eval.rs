//! Within-tick query evaluation: stratified, recursive, to fixpoint (§3.1).
//!
//! Each tick, every declared view is computed from the snapshot database
//! (tables + mailbox relations). Rules are stratified — negation and
//! aggregation may not be entered recursively — and each stratum is run to
//! fixpoint, so "the results of a tick are independent of the order in which
//! statements appear in the program".
//!
//! # Semi-naive evaluation
//!
//! [`evaluate_views`] runs each stratum's recursive rules **semi-naively**
//! (the same algorithm the Hydroflow lowering in `hydrolysis` compiles to):
//!
//! * Round 0 evaluates every rule once over the snapshot; rows actually
//!   *new* to their head relation form the initial per-relation **delta**.
//! * Every later round evaluates, for each rule and each body atom that
//!   scans a same-stratum head, a *delta variant* of the rule: that atom
//!   ranges over the previous round's delta while every other atom ranges
//!   over the full (already-updated) relations. The union of newly
//!   inserted rows becomes the next delta; the stratum is done when a
//!   round inserts nothing.
//!
//! The delta invariant: at the start of round *k*, `full` holds every row
//! derivable in at most *k* rounds and `delta` exactly the rows first
//! derived in round *k − 1*. Any row first derivable in round *k* has a
//! derivation using at least one round-(*k − 1*) row, so constraining one
//! recursive atom to the delta loses nothing; joining the delta against
//! updated-full relations double-derives some rows, which deduplication
//! absorbs. Negation and aggregation read strictly lower strata
//! (stratification guarantees it), so their inputs are stable during the
//! fixpoint.
//!
//! Joins are **hash-indexed**: each scan probes a lazily built, composite
//! `(relation, bound columns) → row indexes` index (see [`ScanCache`]),
//! maintained incrementally as derived rows land. Bodies always evaluate
//! in source order — a delta variant *constrains* an atom, it never
//! reorders one, because reordering changes which errors are reachable
//! and how often stateful UDFs run (see [`BodyPlan`]). [`evaluate_views_naive`]
//! retains the original naive nested-loop evaluator as a
//! differential-testing reference; experiment E8 compares the two against
//! the compiled path.

use crate::ast::{AggFun, AggRule, BodyAtom, ArithOp, CmpOp, Expr, Program, Rule, Select, Term};
use crate::value::Value;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

/// A tuple of values.
pub type Row = Vec<Value>;

/// A deduplicated relation preserving insertion order (for deterministic
/// iteration).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    rows: Vec<Row>,
    index: FxHashSet<Row>,
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from rows, deduplicating.
    pub fn from_rows(rows: impl IntoIterator<Item = Row>) -> Self {
        let mut r = Relation::new();
        for row in rows {
            r.insert(row);
        }
        r
    }

    /// Insert a row; returns `true` if new. Probes before cloning so the
    /// duplicate case — the hottest path of a fixpoint's dedup — allocates
    /// nothing.
    pub fn insert(&mut self, row: Row) -> bool {
        if self.index.contains(&row) {
            return false;
        }
        self.index.insert(row.clone());
        self.rows.push(row);
        true
    }

    /// Membership test.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.index.contains(row)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Row at insertion position `i` (for index-driven access paths).
    pub fn row(&self, i: usize) -> &Row {
        &self.rows[i]
    }

    /// Rows as a sorted set (for order-insensitive comparisons in tests).
    pub fn to_set(&self) -> BTreeSet<Row> {
        self.rows.iter().cloned().collect()
    }
}

/// A named collection of relations.
pub type Database = FxHashMap<String, Relation>;

/// Errors surfaced during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Referenced an unbound variable.
    UnboundVar(String),
    /// Referenced an unknown relation.
    UnknownRelation(String),
    /// Referenced an unknown scalar.
    UnknownScalar(String),
    /// Referenced an unknown table.
    UnknownTable(String),
    /// Referenced an unknown column.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Called an unregistered UDF.
    UnknownUdf(String),
    /// A scan pattern's arity disagrees with the relation.
    ArityMismatch {
        /// Relation name.
        rel: String,
        /// Arity expected by the pattern.
        expected: usize,
        /// Actual relation arity.
        actual: usize,
    },
    /// A value had the wrong type for an operation.
    Type {
        /// What the operation needed.
        expected: &'static str,
        /// Rendering of what it got.
        got: String,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// The rule set cannot be stratified (negation/aggregation in a cycle).
    NotStratifiable(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVar(v) => write!(f, "unbound variable {v:?}"),
            EvalError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            EvalError::UnknownScalar(s) => write!(f, "unknown scalar {s:?}"),
            EvalError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            EvalError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} of table {table:?}")
            }
            EvalError::UnknownUdf(u) => write!(f, "unknown UDF {u:?}"),
            EvalError::ArityMismatch {
                rel,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch scanning {rel:?}: pattern has {expected}, relation has {actual}"
            ),
            EvalError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            EvalError::DivByZero => write!(f, "division by zero"),
            EvalError::NotStratifiable(head) => {
                write!(f, "rules for {head:?} use negation/aggregation recursively")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Host for user-defined functions: black boxes, possibly stateful,
/// memoized once per distinct input per tick (§3.1).
#[derive(Default)]
pub struct UdfHost {
    fns: FxHashMap<String, Box<dyn FnMut(&[Value]) -> Value>>,
    memo: FxHashMap<(String, Vec<Value>), Value>,
    /// Count of actual (non-memoized) invocations, per UDF.
    invocations: FxHashMap<String, u64>,
}

impl UdfHost {
    /// Empty host.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a UDF under a name.
    pub fn register(&mut self, name: impl Into<String>, f: impl FnMut(&[Value]) -> Value + 'static) {
        self.fns.insert(name.into(), Box::new(f));
    }

    /// Whether a UDF is registered.
    pub fn has(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Invoke (memoized within the current tick).
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        let key = (name.to_string(), args.to_vec());
        if let Some(v) = self.memo.get(&key) {
            return Ok(v.clone());
        }
        let f = self
            .fns
            .get_mut(name)
            .ok_or_else(|| EvalError::UnknownUdf(name.to_string()))?;
        let v = f(args);
        *self.invocations.entry(name.to_string()).or_default() += 1;
        self.memo.insert(key, v.clone());
        Ok(v)
    }

    /// Clear per-tick memoization (called by the transducer at tick start).
    pub fn start_tick(&mut self) {
        self.memo.clear();
    }

    /// Non-memoized invocation count for a UDF.
    pub fn invocation_count(&self, name: &str) -> u64 {
        self.invocations.get(name).copied().unwrap_or(0)
    }
}

/// Variable bindings during body evaluation.
pub type Bindings = FxHashMap<String, Value>;

/// Lazily-built composite equality indexes over relations, keyed by
/// `(relation, bound column set)`: `FxHashMap<JoinKey, Vec<RowIdx>>` per
/// join key, built on the first probe of that key shape.
///
/// A cache stays valid across fixpoint rounds as long as every row
/// appended to an indexed relation is reported via [`ScanCache::note_insert`]
/// (relations only ever *grow* during a tick, so appends are the only
/// mutation to track). [`evaluate_views`] does exactly that; everything
/// else uses a context whose lifetime is bounded by an immutable borrow of
/// the database, under which the cache trivially cannot go stale.
#[derive(Default)]
pub struct ScanCache {
    /// relation → sorted bound-column set → join key → row positions.
    /// Posting lists sit behind `Rc` so a probe shares the list instead
    /// of copying it; `note_insert` runs between evaluation rounds, when
    /// no probe handle is alive, so `Rc::make_mut` appends in place.
    indexes: FxHashMap<String, FxHashMap<Vec<usize>, FxHashMap<Vec<Value>, std::rc::Rc<Vec<usize>>>>>,
}

impl ScanCache {
    /// Row positions of `relation` whose `cols` equal `key`, building the
    /// `(rel, cols)` index on first use. Positions are in insertion
    /// order, so index-driven scans enumerate rows exactly like full scans.
    fn probe(
        &mut self,
        rel: &str,
        cols: &[usize],
        key: &[Value],
        relation: &Relation,
    ) -> Option<std::rc::Rc<Vec<usize>>> {
        // Steady state first: no key allocation on the fixpoint hot path.
        if let Some(index) = self.indexes.get(rel).and_then(|m| m.get(cols)) {
            return index.get(key).map(std::rc::Rc::clone);
        }
        let mut index: FxHashMap<Vec<Value>, std::rc::Rc<Vec<usize>>> = FxHashMap::default();
        for (i, row) in relation.iter().enumerate() {
            let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            std::rc::Rc::make_mut(index.entry(k).or_default()).push(i);
        }
        let hits = index.get(key).map(std::rc::Rc::clone);
        self.indexes
            .entry(rel.to_string())
            .or_default()
            .insert(cols.to_vec(), index);
        hits
    }

    /// Report that `row` was appended to `rel` at position `idx`, keeping
    /// every existing index over `rel` current.
    pub fn note_insert(&mut self, rel: &str, row: &Row, idx: usize) {
        if let Some(by_cols) = self.indexes.get_mut(rel) {
            for (cols, index) in by_cols.iter_mut() {
                let k: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
                std::rc::Rc::make_mut(index.entry(k).or_default()).push(idx);
            }
        }
    }
}

/// Evaluation context: the snapshot database (tables, mailboxes, and
/// already-computed views), table key indexes, scalars, and the UDF host.
pub struct EvalCtx<'a> {
    /// The program (for table metadata).
    pub program: &'a Program,
    /// Snapshot relations.
    pub db: &'a Database,
    /// Snapshot scalar values.
    pub scalars: &'a FxHashMap<String, Value>,
    /// Key → row indexes for tables, built once per tick.
    pub key_index: &'a FxHashMap<String, FxHashMap<Row, Row>>,
    /// UDF host (mutable: stateful, memoized).
    pub udfs: &'a mut UdfHost,
    /// Lazily-built scan indexes over the snapshot (see [`ScanCache`]).
    pub scan_cache: ScanCache,
}

impl<'a> EvalCtx<'a> {
    fn lookup_row(&self, table: &str, key: &Value) -> Result<Option<&Row>, EvalError> {
        let idx = self
            .key_index
            .get(table)
            .ok_or_else(|| EvalError::UnknownTable(table.to_string()))?;
        let key_row: Row = match key {
            Value::Tuple(parts) => parts.clone(),
            single => vec![single.clone()],
        };
        Ok(idx.get(&key_row))
    }
}

/// Build the per-tick key indexes for all tables.
pub fn build_key_indexes(program: &Program, db: &Database) -> FxHashMap<String, FxHashMap<Row, Row>> {
    let mut out = FxHashMap::default();
    for t in &program.tables {
        let mut idx = FxHashMap::default();
        if let Some(rel) = db.get(&t.name) {
            for row in rel.iter() {
                idx.insert(t.key_of(row), row.clone());
            }
        }
        out.insert(t.name.clone(), idx);
    }
    out
}

/// Evaluate an expression under bindings.
pub fn eval_expr(expr: &Expr, b: &Bindings, ctx: &mut EvalCtx<'_>) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => b
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVar(name.clone())),
        Expr::Scalar(name) => ctx
            .scalars
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnknownScalar(name.clone())),
        Expr::Cmp(op, l, r) => {
            let l = eval_expr(l, b, ctx)?;
            let r = eval_expr(r, b, ctx)?;
            let res = match op {
                CmpOp::Eq => l == r,
                CmpOp::Ne => l != r,
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
            };
            Ok(Value::Bool(res))
        }
        Expr::Arith(op, l, r) => {
            let l = int_of(eval_expr(l, b, ctx)?)?;
            let r = int_of(eval_expr(r, b, ctx)?)?;
            let v = match op {
                ArithOp::Add => l.wrapping_add(r),
                ArithOp::Sub => l.wrapping_sub(r),
                ArithOp::Mul => l.wrapping_mul(r),
                ArithOp::Div => {
                    if r == 0 {
                        return Err(EvalError::DivByZero);
                    }
                    l.wrapping_div(r)
                }
                ArithOp::Mod => {
                    if r == 0 {
                        return Err(EvalError::DivByZero);
                    }
                    l.wrapping_rem(r)
                }
            };
            Ok(Value::Int(v))
        }
        Expr::Not(e) => Ok(Value::Bool(!bool_of(eval_expr(e, b, ctx)?)?)),
        Expr::And(l, r) => {
            if bool_of(eval_expr(l, b, ctx)?)? {
                eval_expr(r, b, ctx)
            } else {
                Ok(Value::Bool(false))
            }
        }
        Expr::Or(l, r) => {
            if bool_of(eval_expr(l, b, ctx)?)? {
                Ok(Value::Bool(true))
            } else {
                eval_expr(r, b, ctx)
            }
        }
        Expr::Tuple(items) => Ok(Value::Tuple(
            items
                .iter()
                .map(|e| eval_expr(e, b, ctx))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Index(e, i) => {
            let v = eval_expr(e, b, ctx)?;
            let t = v.as_tuple().ok_or_else(|| EvalError::Type {
                expected: "tuple",
                got: format!("{v:?}"),
            })?;
            t.get(*i).cloned().ok_or(EvalError::Type {
                expected: "tuple index in range",
                got: format!("index {i} of arity {}", t.len()),
            })
        }
        Expr::SetBuild(items) => Ok(Value::Set(
            items
                .iter()
                .map(|e| eval_expr(e, b, ctx))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Contains(set, item) => {
            let s = eval_expr(set, b, ctx)?;
            let item = eval_expr(item, b, ctx)?;
            let set = s.as_set().ok_or_else(|| EvalError::Type {
                expected: "set",
                got: format!("{s:?}"),
            })?;
            Ok(Value::Bool(set.contains(&item)))
        }
        Expr::Len(e) => {
            let v = eval_expr(e, b, ctx)?;
            match &v {
                Value::Set(s) => Ok(Value::Int(s.len() as i64)),
                Value::Tuple(t) => Ok(Value::Int(t.len() as i64)),
                other => Err(EvalError::Type {
                    expected: "set or tuple",
                    got: format!("{other:?}"),
                }),
            }
        }
        Expr::FieldOf { table, key, field } => {
            let k = eval_expr(key, b, ctx)?;
            let t = ctx
                .program
                .table(table)
                .ok_or_else(|| EvalError::UnknownTable(table.clone()))?;
            let col = t.column_index(field).ok_or_else(|| EvalError::UnknownColumn {
                table: table.clone(),
                column: field.clone(),
            })?;
            Ok(match ctx.lookup_row(table, &k)? {
                Some(row) => row[col].clone(),
                None => Value::Null,
            })
        }
        Expr::RowOf { table, key } => {
            let k = eval_expr(key, b, ctx)?;
            Ok(match ctx.lookup_row(table, &k)? {
                Some(row) => Value::Tuple(row.clone()),
                None => Value::Null,
            })
        }
        Expr::HasKey { table, key } => {
            let k = eval_expr(key, b, ctx)?;
            Ok(Value::Bool(ctx.lookup_row(table, &k)?.is_some()))
        }
        Expr::Call(name, args) => {
            let args: Vec<Value> = args
                .iter()
                .map(|e| eval_expr(e, b, ctx))
                .collect::<Result<_, _>>()?;
            ctx.udfs.call(name, &args)
        }
        Expr::CollectSet(select) => {
            let rows = eval_select(select, b, ctx)?;
            Ok(Value::Set(
                rows.into_iter()
                    .map(|mut r| {
                        if r.len() == 1 {
                            r.pop().expect("len checked")
                        } else {
                            Value::Tuple(r)
                        }
                    })
                    .collect(),
            ))
        }
    }
}

fn int_of(v: Value) -> Result<i64, EvalError> {
    v.as_int().ok_or_else(|| EvalError::Type {
        expected: "int",
        got: format!("{v:?}"),
    })
}

fn bool_of(v: Value) -> Result<bool, EvalError> {
    v.as_bool().ok_or_else(|| EvalError::Type {
        expected: "bool",
        got: format!("{v:?}"),
    })
}

/// How a body is to be evaluated. Atoms always run in source order — the
/// evaluators promise *exact* agreement with source-order evaluation,
/// including which errors are reachable (an `ArityMismatch` behind an
/// empty scan must stay unreachable) and how often stateful UDFs run, so
/// no reordering (not even hoisting a semi-naive delta atom past an
/// earlier scan) is safe. A delta variant instead *constrains* one atom
/// to the delta relation, which is where the semi-naive win lives.
struct BodyPlan<'p> {
    /// The body's atoms, evaluated in source order.
    body: &'p [BodyAtom],
    /// `(atom position, delta relation)`: that scan ranges over the delta
    /// instead of the full relation.
    delta: Option<(usize, &'p Relation)>,
    /// Probe hash indexes for bound scan columns (`false` = pure nested
    /// loops, retained for the naive reference evaluator).
    use_indexes: bool,
}

impl<'p> BodyPlan<'p> {
    /// Index-backed, no delta: the default for ad-hoc selects.
    fn full(body: &'p [BodyAtom]) -> Self {
        BodyPlan {
            body,
            delta: None,
            use_indexes: true,
        }
    }
}

/// Evaluate a comprehension to its projected rows (duplicates preserved;
/// callers dedup as needed).
pub fn eval_select(
    select: &Select,
    base: &Bindings,
    ctx: &mut EvalCtx<'_>,
) -> Result<Vec<Row>, EvalError> {
    eval_select_with_plan(&BodyPlan::full(&select.body), &select.projection, base, ctx)
}

fn eval_select_with_plan(
    plan: &BodyPlan<'_>,
    projection: &[Expr],
    base: &Bindings,
    ctx: &mut EvalCtx<'_>,
) -> Result<Vec<Row>, EvalError> {
    let mut out = Vec::new();
    let mut bindings = base.clone();
    eval_body(plan, 0, &mut bindings, ctx, &mut |b, ctx| {
        let row = projection
            .iter()
            .map(|e| eval_expr(e, b, ctx))
            .collect::<Result<Row, _>>()?;
        out.push(row);
        Ok(())
    })?;
    Ok(out)
}

/// Recursive source-order body evaluation with binding propagation.
fn eval_body(
    plan: &BodyPlan<'_>,
    step: usize,
    bindings: &mut Bindings,
    ctx: &mut EvalCtx<'_>,
    emit: &mut dyn FnMut(&Bindings, &mut EvalCtx<'_>) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    let pos = step;
    if pos >= plan.body.len() {
        return emit(bindings, ctx);
    }
    match &plan.body[pos] {
        BodyAtom::Scan { rel, terms } => {
            // Copy the shared database reference out of `ctx` so the row
            // borrows below do not pin `ctx`, which the recursion needs
            // mutably.
            let db: &Database = ctx.db;
            let relation = match plan.delta {
                Some((delta_pos, delta)) if delta_pos == pos => delta,
                _ => db
                    .get(rel)
                    .ok_or_else(|| EvalError::UnknownRelation(rel.clone()))?,
            };
            if let Some(first) = relation.iter().next() {
                if first.len() != terms.len() {
                    return Err(EvalError::ArityMismatch {
                        rel: rel.clone(),
                        expected: terms.len(),
                        actual: first.len(),
                    });
                }
            }
            // Access-path selection: probe a composite hash index over
            // *every* bound term (constants, and variables bound by
            // earlier atoms) instead of scanning the relation. Index
            // probes enumerate matches in insertion order, so a scan's
            // row order is identical on both paths. Deltas are small and
            // short-lived; they are always scanned directly.
            let is_delta = matches!(plan.delta, Some((p, _)) if p == pos);
            let mut cols: Vec<usize> = Vec::new();
            let mut key: Vec<Value> = Vec::new();
            if plan.use_indexes && !is_delta {
                for (i, t) in terms.iter().enumerate() {
                    match t {
                        Term::Const(c) => {
                            cols.push(i);
                            key.push(c.clone());
                        }
                        Term::Var(name) => {
                            if let Some(v) = bindings.get(name) {
                                cols.push(i);
                                key.push(v.clone());
                            }
                        }
                        Term::Wildcard => {}
                    }
                }
            }
            if cols.is_empty() {
                for row in relation.iter() {
                    scan_row(plan, step, terms, row, bindings, ctx, emit)?;
                }
            } else if let Some(ids) = ctx.scan_cache.probe(rel, &cols, &key, relation) {
                for &i in ids.iter() {
                    scan_row(plan, step, terms, relation.row(i), bindings, ctx, emit)?;
                }
            }
            Ok(())
        }
        BodyAtom::Neg { rel, args } => {
            let tuple: Row = args
                .iter()
                .map(|e| eval_expr(e, bindings, ctx))
                .collect::<Result<_, _>>()?;
            let relation = ctx
                .db
                .get(rel)
                .ok_or_else(|| EvalError::UnknownRelation(rel.clone()))?;
            if relation.contains(&tuple) {
                Ok(())
            } else {
                eval_body(plan, step + 1, bindings, ctx, emit)
            }
        }
        BodyAtom::Guard(expr) => {
            if bool_of(eval_expr(expr, bindings, ctx)?)? {
                eval_body(plan, step + 1, bindings, ctx, emit)
            } else {
                Ok(())
            }
        }
        BodyAtom::Let { var, expr } => {
            let v = eval_expr(expr, bindings, ctx)?;
            let prior = bindings.insert(var.clone(), v);
            eval_body(plan, step + 1, bindings, ctx, emit)?;
            match prior {
                Some(p) => {
                    bindings.insert(var.clone(), p);
                }
                None => {
                    bindings.remove(var);
                }
            }
            Ok(())
        }
        BodyAtom::Flatten { var, set } => {
            let v = eval_expr(set, bindings, ctx)?;
            // Flattening Null (e.g. a missing row's field) yields nothing,
            // which makes queries over optional structure total.
            let items: Vec<Value> = match &v {
                Value::Set(s) => s.iter().cloned().collect(),
                Value::Null => Vec::new(),
                other => {
                    return Err(EvalError::Type {
                        expected: "set",
                        got: format!("{other:?}"),
                    })
                }
            };
            let prior = bindings.remove(var);
            for item in items {
                bindings.insert(var.clone(), item);
                eval_body(plan, step + 1, bindings, ctx, emit)?;
            }
            match prior {
                Some(p) => {
                    bindings.insert(var.clone(), p);
                }
                None => {
                    bindings.remove(var);
                }
            }
            Ok(())
        }
    }
}

/// Match one scanned row against a scan's terms, extending `bindings`; on a
/// full match, continue body evaluation at `pos + 1`. All bindings this row
/// introduced are removed again before returning — including on a mismatch
/// part-way through the terms (a constant mismatch after a fresh variable
/// binding must not leak that binding into the next candidate row).
fn scan_row(
    plan: &BodyPlan<'_>,
    step: usize,
    terms: &[Term],
    row: &Row,
    bindings: &mut Bindings,
    ctx: &mut EvalCtx<'_>,
    emit: &mut dyn FnMut(&Bindings, &mut EvalCtx<'_>) -> Result<(), EvalError>,
) -> Result<(), EvalError> {
    let mut newly_bound: Vec<&str> = Vec::new();
    for (term, v) in terms.iter().zip(row.iter()) {
        let matched = match term {
            Term::Wildcard => true,
            Term::Const(c) => c == v,
            Term::Var(name) => match bindings.get(name) {
                Some(bound) => bound == v,
                None => {
                    bindings.insert(name.clone(), v.clone());
                    newly_bound.push(name);
                    true
                }
            },
        };
        if !matched {
            for n in newly_bound {
                bindings.remove(n);
            }
            return Ok(());
        }
    }
    eval_body(plan, step + 1, bindings, ctx, emit)?;
    for n in newly_bound {
        bindings.remove(n);
    }
    Ok(())
}

/// Collect the view names a set of body atoms depends on, tagging negative
/// (stratum-raising) dependencies.
fn body_deps(body: &[BodyAtom], views: &FxHashSet<String>, deps: &mut Vec<(String, bool)>) {
    for atom in body {
        match atom {
            BodyAtom::Scan { rel, .. } => {
                if views.contains(rel) {
                    deps.push((rel.clone(), false));
                }
            }
            BodyAtom::Neg { rel, args } => {
                if views.contains(rel) {
                    deps.push((rel.clone(), true));
                }
                for e in args {
                    expr_deps(e, views, deps);
                }
            }
            BodyAtom::Guard(e) => expr_deps(e, views, deps),
            BodyAtom::Let { expr, .. } => expr_deps(expr, views, deps),
            BodyAtom::Flatten { set, .. } => expr_deps(set, views, deps),
        }
    }
}

fn expr_deps(expr: &Expr, views: &FxHashSet<String>, deps: &mut Vec<(String, bool)>) {
    match expr {
        Expr::CollectSet(select) => {
            // A nested comprehension reads its relations "all at once", so
            // treat its view dependencies as negative (stratum-raising).
            let mut inner = Vec::new();
            body_deps(&select.body, views, &mut inner);
            for e in &select.projection {
                expr_deps(e, views, &mut inner);
            }
            deps.extend(inner.into_iter().map(|(r, _)| (r, true)));
        }
        Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
            expr_deps(l, views, deps);
            expr_deps(r, views, deps);
        }
        Expr::Contains(l, r) => {
            expr_deps(l, views, deps);
            expr_deps(r, views, deps);
        }
        Expr::Not(e) | Expr::Len(e) | Expr::Index(e, _) => expr_deps(e, views, deps),
        Expr::Tuple(items) | Expr::SetBuild(items) | Expr::Call(_, items) => {
            for e in items {
                expr_deps(e, views, deps);
            }
        }
        Expr::FieldOf { key, .. } | Expr::RowOf { key, .. } | Expr::HasKey { key, .. } => {
            expr_deps(key, views, deps)
        }
        Expr::Const(_) | Expr::Var(_) | Expr::Scalar(_) => {}
    }
}

/// Assign a stratum to every view. Aggregation heads depend on their body
/// views negatively (they read them "all at once"). Errors if negation or
/// aggregation occurs in a recursive cycle.
pub fn stratify(program: &Program) -> Result<FxHashMap<String, usize>, EvalError> {
    let views: FxHashSet<String> = program
        .rules
        .iter()
        .map(|r| r.head.clone())
        .chain(program.agg_rules.iter().map(|r| r.head.clone()))
        .collect();

    // edges: head -> (dep, negative). The sentinel `__base__` stands for
    // all base relations at stratum 0, so that negation/aggregation over a
    // base relation still raises the head's stratum (the flow lowering
    // needs the antijoin/fold strictly above its blocking inputs).
    const BASE: &str = "__base__";
    let mut edges: Vec<(String, String, bool)> = Vec::new();
    for rule in &program.rules {
        let mut deps = Vec::new();
        body_deps(&rule.body, &views, &mut deps);
        for e in &rule.head_exprs {
            expr_deps(e, &views, &mut deps);
        }
        for (dep, neg) in deps {
            edges.push((rule.head.clone(), dep, neg));
        }
        if rule
            .body
            .iter()
            .any(|a| matches!(a, BodyAtom::Neg { rel, .. } if !views.contains(rel)))
        {
            edges.push((rule.head.clone(), BASE.to_string(), true));
        }
    }
    for rule in &program.agg_rules {
        let mut deps = Vec::new();
        body_deps(&rule.body, &views, &mut deps);
        expr_deps(&rule.over, &views, &mut deps);
        for e in &rule.group_exprs {
            expr_deps(e, &views, &mut deps);
        }
        // Aggregation is stratum-raising over all its dependencies, and
        // always sits at least one stratum above the base relations it
        // folds over.
        for (dep, _) in deps {
            edges.push((rule.head.clone(), dep, true));
        }
        edges.push((rule.head.clone(), BASE.to_string(), true));
    }

    let mut stratum: FxHashMap<String, usize> = views.iter().map(|v| (v.clone(), 0)).collect();
    stratum.insert(BASE.to_string(), 0);
    let n = views.len().max(1);
    // Bellman-Ford-style relaxation; a stratum exceeding the view count
    // implies a negative cycle, i.e. unstratifiable rules.
    for _round in 0..=n {
        let mut changed = false;
        for (head, dep, neg) in &edges {
            let need = stratum[dep] + usize::from(*neg);
            if stratum[head] < need {
                stratum.insert(head.clone(), need);
                changed = true;
            }
        }
        if !changed {
            stratum.remove(BASE);
            return Ok(stratum);
        }
        if _round == n {
            break;
        }
    }
    // Find a culprit for the error message.
    let culprit = edges
        .iter()
        .find(|(h, d, neg)| *neg && stratum[h] > n.min(stratum[d]))
        .map(|(h, _, _)| h.clone())
        .unwrap_or_else(|| "<unknown>".to_string());
    Err(EvalError::NotStratifiable(culprit))
}

/// Run one stratum's aggregation rules (they read completed lower strata
/// only, so a single pass each) and land their rows, keeping `cache`
/// current. Shared by both evaluators; the naive one passes a throwaway
/// cache.
#[allow(clippy::too_many_arguments)]
fn run_stratum_aggs(
    program: &Program,
    strata: &FxHashMap<String, usize>,
    s: usize,
    db: &mut Database,
    scalars: &FxHashMap<String, Value>,
    key_index: &FxHashMap<String, FxHashMap<Row, Row>>,
    udfs: &mut UdfHost,
    mut cache: ScanCache,
) -> Result<ScanCache, EvalError> {
    let agg_rules: Vec<&AggRule> = program
        .agg_rules
        .iter()
        .filter(|r| strata[&r.head] == s)
        .collect();
    for rule in agg_rules {
        let rows = {
            let mut ctx = EvalCtx {
                program,
                db,
                scalars,
                key_index,
                udfs,
                scan_cache: cache,
            };
            let rows = eval_agg_rule(rule, &mut ctx)?;
            cache = ctx.scan_cache;
            rows
        };
        let rel = db.entry(rule.head.clone()).or_default();
        for row in rows {
            if rel.insert(row.clone()) {
                cache.note_insert(&rule.head, &row, rel.len() - 1);
            }
        }
    }
    Ok(cache)
}

/// Seed the view relations (they must exist, possibly empty) and clone
/// the base database both evaluators start from.
fn seed_views(program: &Program, base: &Database) -> Database {
    let mut db: Database = base.clone();
    for r in &program.rules {
        db.entry(r.head.clone()).or_default();
    }
    for r in &program.agg_rules {
        db.entry(r.head.clone()).or_default();
    }
    db
}

/// Compute all views over the base database, stratum by stratum, each
/// stratum to fixpoint **semi-naively** (see the module docs for the
/// algorithm and its delta invariant). Returns the database extended with
/// every view.
pub fn evaluate_views(
    program: &Program,
    base: &Database,
    scalars: &FxHashMap<String, Value>,
    udfs: &mut UdfHost,
) -> Result<Database, EvalError> {
    let strata = stratify(program)?;
    let max_stratum = strata.values().copied().max().unwrap_or(0);

    let mut db = seed_views(program, base);
    let key_index = build_key_indexes(program, base);
    // One index cache for the whole evaluation: relations only grow, and
    // the insertion loops below report every append via `note_insert`.
    let mut cache = ScanCache::default();

    for s in 0..=max_stratum {
        // Aggregations of this stratum run once, over completed lower strata.
        cache = run_stratum_aggs(program, &strata, s, &mut db, scalars, &key_index, udfs, cache)?;

        // Plain rules of this stratum run to fixpoint (handles recursion).
        let rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| strata[&r.head] == s)
            .collect();
        if rules.is_empty() {
            continue;
        }
        let heads: FxHashSet<String> = rules.iter().map(|r| r.head.clone()).collect();
        // Per rule: the positions of body atoms scanning a same-stratum
        // head — the delta-variant candidates for rounds ≥ 1.
        let delta_variants: Vec<Vec<(usize, String)>> = rules
            .iter()
            .map(|rule| {
                rule.body
                    .iter()
                    .enumerate()
                    .filter_map(|(i, a)| match a {
                        BodyAtom::Scan { rel, .. } if heads.contains(rel) => {
                            Some((i, rel.clone()))
                        }
                        _ => None,
                    })
                    .collect()
            })
            .collect();

        // Round 0: every rule once, over the full snapshot. Recursive
        // heads start empty, so this also covers all non-recursive rules
        // exactly once.
        let mut derived: Vec<(usize, Row)> = Vec::new();
        {
            let mut ctx = EvalCtx {
                program,
                db: &db,
                scalars,
                key_index: &key_index,
                udfs,
                scan_cache: cache,
            };
            for (r, rule) in rules.iter().enumerate() {
                let plan = BodyPlan::full(&rule.body);
                for row in
                    eval_select_with_plan(&plan, &rule.head_exprs, &Bindings::default(), &mut ctx)?
                {
                    derived.push((r, row));
                }
            }
            cache = ctx.scan_cache;
        }

        // Apply a round's derivations; rows new to their head feed the
        // next round's deltas.
        let apply = |derived: Vec<(usize, Row)>,
                     db: &mut Database,
                     cache: &mut ScanCache|
         -> FxHashMap<String, Relation> {
            let mut next: FxHashMap<String, Relation> = FxHashMap::default();
            for (r, row) in derived {
                let head = &rules[r].head;
                let rel = db.entry(head.clone()).or_default();
                if rel.insert(row.clone()) {
                    cache.note_insert(head, &row, rel.len() - 1);
                    next.entry(head.clone()).or_default().insert(row);
                }
            }
            next
        };
        let mut delta = apply(derived, &mut db, &mut cache);

        // Rounds ≥ 1: only delta variants of recursive rules.
        while !delta.is_empty() {
            let mut derived: Vec<(usize, Row)> = Vec::new();
            {
                let mut ctx = EvalCtx {
                    program,
                    db: &db,
                    scalars,
                    key_index: &key_index,
                    udfs,
                    scan_cache: cache,
                };
                for (r, rule) in rules.iter().enumerate() {
                    for (pos, rel) in &delta_variants[r] {
                        let Some(d) = delta.get(rel) else { continue };
                        if d.is_empty() {
                            continue;
                        }
                        let plan = BodyPlan {
                            body: &rule.body,
                            delta: Some((*pos, d)),
                            use_indexes: true,
                        };
                        for row in eval_select_with_plan(
                            &plan,
                            &rule.head_exprs,
                            &Bindings::default(),
                            &mut ctx,
                        )? {
                            derived.push((r, row));
                        }
                    }
                }
                cache = ctx.scan_cache;
            }
            delta = apply(derived, &mut db, &mut cache);
        }
    }
    Ok(db)
}

/// The original naive evaluator: full re-derivation of every rule from the
/// complete database each round, pure nested-loop scans in source order,
/// no indexes. Retained as the independent reference for differential
/// tests (`evaluate_views` must agree with it on every program) and for
/// before/after benchmarking in E1/E8.
pub fn evaluate_views_naive(
    program: &Program,
    base: &Database,
    scalars: &FxHashMap<String, Value>,
    udfs: &mut UdfHost,
) -> Result<Database, EvalError> {
    let strata = stratify(program)?;
    let max_stratum = strata.values().copied().max().unwrap_or(0);

    let mut db = seed_views(program, base);
    let key_index = build_key_indexes(program, base);

    for s in 0..=max_stratum {
        // Aggregations behave identically in both evaluators (they never
        // participate in a fixpoint); only the fixpoint below is an
        // independent naive implementation. The throwaway cache only sees
        // agg-side index use.
        run_stratum_aggs(
            program,
            &strata,
            s,
            &mut db,
            scalars,
            &key_index,
            udfs,
            ScanCache::default(),
        )?;

        let rules: Vec<&Rule> = program
            .rules
            .iter()
            .filter(|r| strata[&r.head] == s)
            .collect();
        if rules.is_empty() {
            continue;
        }
        loop {
            let mut derived: Vec<(String, Row)> = Vec::new();
            {
                let mut ctx = EvalCtx {
                    program,
                    db: &db,
                    scalars,
                    key_index: &key_index,
                    udfs,
                    scan_cache: Default::default(),
                };
                for rule in &rules {
                    let mut plan = BodyPlan::full(&rule.body);
                    plan.use_indexes = false;
                    for row in eval_select_with_plan(
                        &plan,
                        &rule.head_exprs,
                        &Bindings::default(),
                        &mut ctx,
                    )? {
                        derived.push((rule.head.clone(), row));
                    }
                }
            }
            let mut changed = false;
            for (head, row) in derived {
                changed |= db.entry(head).or_default().insert(row);
            }
            if !changed {
                break;
            }
        }
    }
    Ok(db)
}

fn eval_agg_rule(rule: &AggRule, ctx: &mut EvalCtx<'_>) -> Result<Vec<Row>, EvalError> {
    // Gather (group_key, over_value) pairs.
    let select = Select {
        body: rule.body.clone(),
        projection: rule
            .group_exprs
            .iter()
            .cloned()
            .chain(std::iter::once(rule.over.clone()))
            .collect(),
    };
    let matches = eval_select(&select, &Bindings::default(), ctx)?;
    let mut groups: FxHashMap<Row, Vec<Value>> = FxHashMap::default();
    for mut row in matches {
        let over = row.pop().expect("projection includes `over`");
        groups.entry(row).or_default().push(over);
    }
    let mut out = Vec::new();
    let mut keys: Vec<Row> = groups.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let values = &groups[&key];
        let agg = match rule.agg {
            AggFun::Count => Value::Int(values.len() as i64),
            AggFun::Sum => {
                let mut total = 0i64;
                for v in values {
                    total = total.wrapping_add(int_of(v.clone())?);
                }
                Value::Int(total)
            }
            AggFun::Min => values.iter().min().cloned().unwrap_or(Value::Null),
            AggFun::Max => values.iter().max().cloned().unwrap_or(Value::Null),
            AggFun::CollectSet => Value::Set(values.iter().cloned().collect()),
        };
        let mut row = key;
        row.push(agg);
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dsl::{scan, scan_terms, select, v};
    use crate::builder::ProgramBuilder;

    fn int_rows(rows: &[&[i64]]) -> Relation {
        Relation::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|x| Value::Int(*x)).collect::<Row>()),
        )
    }

    fn run_select(sel: &Select, db: &Database) -> Vec<Row> {
        let program = ProgramBuilder::new().build();
        let mut udfs = UdfHost::new();
        let mut ctx = EvalCtx {
            program: &program,
            db,
            scalars: &Default::default(),
            key_index: &Default::default(),
            udfs: &mut udfs,
            scan_cache: Default::default(),
        };
        eval_select(sel, &Bindings::default(), &mut ctx).unwrap()
    }

    /// Regression: a constant mismatch *after* a variable binding in the
    /// same scan pattern must undo that binding. The original evaluator
    /// leaked it, silently filtering later candidate rows.
    #[test]
    fn const_mismatch_after_var_does_not_leak_binding() {
        let mut db = Database::default();
        db.insert("r".into(), int_rows(&[&[1, 5], &[2, 6], &[3, 5]]));
        let sel = select(
            vec![scan_terms(
                "r",
                vec![Term::Var("x".into()), Term::Const(Value::Int(5))],
            )],
            vec![v("x")],
        );
        let got = run_select(&sel, &db);
        assert_eq!(got, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    /// The indexed probe path must produce the same matches, in the same
    /// order, as the full-scan path. The first atom leaves `b` bound, so
    /// the second scan takes the index path.
    #[test]
    fn indexed_probe_matches_full_scan_semantics() {
        let mut db = Database::default();
        db.insert("edge".into(), int_rows(&[&[1, 2], &[2, 3], &[2, 4], &[3, 4]]));
        let sel = select(
            vec![scan("edge", &["a", "b"]), scan("edge", &["b", "c"])],
            vec![v("a"), v("c")],
        );
        let got = run_select(&sel, &db);
        let expect: Vec<Row> = [[1, 3], [1, 4], [2, 4]]
            .iter()
            .map(|r| r.iter().map(|x| Value::Int(*x)).collect())
            .collect();
        assert_eq!(got, expect);
    }

    /// Probing a key absent from the index yields no matches (and no error).
    #[test]
    fn indexed_probe_on_absent_key_is_empty() {
        let mut db = Database::default();
        db.insert("r".into(), int_rows(&[&[1, 10]]));
        let sel = select(
            vec![scan_terms(
                "r",
                vec![Term::Const(Value::Int(99)), Term::Var("y".into())],
            )],
            vec![v("y")],
        );
        assert!(run_select(&sel, &db).is_empty());
    }

    /// Repeated variables within one pattern still enforce equality on the
    /// indexed path (`r(x, x)` only matches the diagonal).
    #[test]
    fn repeated_variable_enforces_equality() {
        let mut db = Database::default();
        db.insert("r".into(), int_rows(&[&[1, 1], &[1, 2], &[3, 3]]));
        // Bind x first via a scan of `s`, forcing the probe path on `r`.
        db.insert("s".into(), int_rows(&[&[1], &[3]]));
        let sel = select(
            vec![scan("s", &["x"]), scan("r", &["x", "x"])],
            vec![v("x")],
        );
        let got = run_select(&sel, &db);
        assert_eq!(got, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }

    /// One relation may be indexed on several columns within one context.
    #[test]
    fn scan_cache_indexes_multiple_columns() {
        let mut db = Database::default();
        db.insert("r".into(), int_rows(&[&[1, 20], &[2, 10], &[1, 10]]));
        // Probe column 0 then column 1 in a single select: both index paths.
        let sel = select(
            vec![
                scan_terms(
                    "r",
                    vec![Term::Const(Value::Int(1)), Term::Var("y".into())],
                ),
                scan_terms(
                    "r",
                    vec![Term::Var("z".into()), Term::Const(Value::Int(10))],
                ),
            ],
            vec![v("y"), v("z")],
        );
        let got = run_select(&sel, &db);
        // y ∈ {20, 10} (insertion order), z ∈ {2, 1} (insertion order).
        let expect: Vec<Row> = [[20, 2], [20, 1], [10, 2], [10, 1]]
            .iter()
            .map(|r| r.iter().map(|x| Value::Int(*x)).collect())
            .collect();
        assert_eq!(got, expect);
    }
}
